"""Reusable component-conformance checks.

A *conformant* component works with every engine service the
declarative API auto-wires: it builds from a config graph (ports
validated), runs to completion, survives a mid-run engine snapshot and
restore with bit-identical final statistics, and describes itself.
:func:`run_conformance` packages that contract as one call so a model
library can pin it parametrically over its whole catalogue::

    def test_cache_conformance(tmp_path):
        run_conformance(make_cache_graph, tmp_path)

The checks mirror how the engine's own suites pin behaviour
(``tests/unit/test_ckpt.py``, ``test_determinism.py``); this module
just makes the recipe importable by component authors.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Tuple

from .config import ConfigGraph, build
from .core.describe import describe_component

__all__ = ["ConformanceError", "run_conformance"]


class ConformanceError(AssertionError):
    """A component failed the conformance contract."""


def _cold_run(make_graph: Callable[[], ConfigGraph], seed: int,
              max_time) -> Tuple[Dict[str, float], object, object]:
    sim = build(make_graph(), seed=seed, validate_events=True)
    result = sim.run(max_time=max_time)
    return sim.stat_values(), result, sim


def run_conformance(make_graph: Callable[[], ConfigGraph],
                    tmp_path: Path, *, seed: int = 7,
                    max_time=None) -> Dict[str, float]:
    """Construct → wire → run → snapshot → restore → compare statistics.

    ``make_graph`` must return a fresh :class:`ConfigGraph` on every
    call (the check builds it three times).  ``max_time`` bounds runs
    for graphs that never exit on their own.  Returns the cold run's
    statistics for any further assertions.

    Checks, in order:

    1. the graph builds with event validation on and runs to
       completion;
    2. every component class describes itself
       (:func:`~repro.core.describe.describe_component`) and samples
       finite telemetry gauges; every required declared slot is filled
       by a live :class:`~repro.core.component.SubComponent` whose
       declared statistics registered into the parent's group;
    3. a second build snapshotted at half the cold end time and
       restored finishes with bit-identical statistics and end time.
    """
    from .ckpt import restore, snapshot
    from .core.component import SubComponent

    cold_stats, cold, sim = _cold_run(make_graph, seed, max_time)
    if cold.reason not in ("exit", "max_time"):
        raise ConformanceError(
            f"cold run ended abnormally: {cold.reason!r}")

    for comp in sim._components.values():
        info = describe_component(type(comp))
        if not info["class"]:
            raise ConformanceError(f"{comp.name}: indescribable class")
        for attr, value in comp.telemetry_gauges().items():
            if not isinstance(value, float):
                raise ConformanceError(
                    f"{comp.name}.{attr}: gauge sampled {value!r}, "
                    f"expected float")
        for attr, spec in getattr(type(comp), "_slot_specs", {}).items():
            sub = comp.__dict__.get(attr)
            if sub is None:
                if spec.required:
                    raise ConformanceError(
                        f"{comp.name}: required slot {attr!r} is unfilled")
                continue
            if not isinstance(sub, SubComponent):
                raise ConformanceError(
                    f"{comp.name}.{attr}: slot holds {type(sub).__name__}, "
                    f"not a SubComponent")
            registered = comp.stats.all()
            for sattr, sspec in type(sub)._stat_specs.items():
                key = f"{attr}.{sspec.name}"
                if registered.get(key) is not getattr(sub, sattr):
                    raise ConformanceError(
                        f"{comp.name}.{attr}: subcomponent statistic "
                        f"{sspec.name!r} is not registered as {key!r} on "
                        f"the parent")

    mid = cold.end_time // 2
    if mid <= 0:
        raise ConformanceError(
            f"cold run too short to snapshot mid-flight "
            f"(end_time={cold.end_time} ps); grow the workload")
    warm = build(make_graph(), seed=seed)
    warm.run(max_time=mid, finalize=False)
    path = snapshot(warm, tmp_path / "conformance-snap")
    resumed = restore(path)
    result = resumed.run(max_time=max_time)
    if resumed.stat_values() != cold_stats:
        diff = {
            key: (cold_stats.get(key), resumed.stat_values().get(key))
            for key in set(cold_stats) | set(resumed.stat_values())
            if cold_stats.get(key) != resumed.stat_values().get(key)
        }
        raise ConformanceError(
            f"restored run diverged from the cold run: {diff}")
    if result.end_time != cold.end_time:
        raise ConformanceError(
            f"restored run ended at {result.end_time} ps, cold run at "
            f"{cold.end_time} ps")
    return cold_stats
