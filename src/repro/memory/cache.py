"""Set-associative cache models.

Two layers, matching the two ways PySST drives memory systems:

* :class:`CacheArray` / :class:`CacheHierarchy` — *functional* models: a
  plain set-associative LRU array advanced one access at a time, with no
  event machinery.  The trace-driven processor models use these inline
  (a pure-Python DES cannot afford one event per L1 access; see the
  repro scoping notes in DESIGN.md), and the cache-hit-rate experiments
  (Fig. 4) read their counters directly.
* :class:`Cache` — a *component* wrapper speaking
  :class:`~repro.memory.events.MemRequest`/``MemResponse`` over ``cpu``
  (upstream) and ``mem`` (downstream) ports, with MSHR-style outstanding
  -miss tracking.  Example machines and integration tests use this.

Both layers share the same replacement logic, so the component is the
functional array plus latency/queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime
from .events import MemRequest, MemResponse


def _check_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


@dataclass
class CacheStats:
    """Counters of one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheArray:
    """A functional set-associative, write-back/write-allocate LRU cache.

    ``access`` returns ``(hit, writeback_addr)`` where ``writeback_addr``
    is the block address of a dirty victim when the access caused an
    eviction of modified data (None otherwise).
    """

    def __init__(self, size_bytes: int, line_size: int = 64, ways: int = 8,
                 name: str = "cache"):
        _check_power_of_two(line_size, "line_size")
        _check_power_of_two(ways, "ways")
        if size_bytes < line_size * ways:
            raise ValueError(
                f"{name}: size {size_bytes} too small for "
                f"{ways} ways of {line_size}B lines"
            )
        n_lines = size_bytes // line_size
        if n_lines % ways:
            raise ValueError(f"{name}: size/line_size not divisible by ways")
        self.name = name
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.ways = ways
        self.n_sets = n_lines // ways
        _check_power_of_two(self.n_sets, "number of sets")
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = self.n_sets - 1
        # tag == -1 means invalid.
        self._tags = np.full((self.n_sets, ways), -1, dtype=np.int64)
        self._dirty = np.zeros((self.n_sets, ways), dtype=bool)
        # Higher stamp = more recently used.
        self._stamps = np.zeros((self.n_sets, ways), dtype=np.int64)
        self._prefetched = np.zeros((self.n_sets, ways), dtype=bool)
        self._tick = 0
        self.stats = CacheStats()

    def _locate(self, addr: int) -> Tuple[int, int]:
        block = addr >> self._line_shift
        return block & self._set_mask, block >> (self.n_sets.bit_length() - 1)

    def block_addr(self, addr: int) -> int:
        return (addr >> self._line_shift) << self._line_shift

    def access(self, addr: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """One reference.  Allocates on miss; returns (hit, writeback_addr)."""
        set_idx, tag = self._locate(addr)
        self._tick += 1
        self.stats.accesses += 1
        row_tags = self._tags[set_idx]
        hits = np.nonzero(row_tags == tag)[0]
        if hits.size:
            way = int(hits[0])
            self._stamps[set_idx, way] = self._tick
            if is_write:
                self._dirty[set_idx, way] = True
            self.stats.hits += 1
            return True, None
        # Miss: pick the LRU way (invalid lines have stamp 0 and lose ties
        # deterministically by lowest way index).
        self.stats.misses += 1
        way = int(np.argmin(self._stamps[set_idx]))
        writeback = None
        victim_tag = int(row_tags[way])
        if victim_tag != -1 and self._dirty[set_idx, way]:
            victim_block = (victim_tag << (self.n_sets.bit_length() - 1)) | set_idx
            writeback = victim_block << self._line_shift
            self.stats.writebacks += 1
        self._tags[set_idx, way] = tag
        self._dirty[set_idx, way] = is_write
        self._stamps[set_idx, way] = self._tick
        self._prefetched[set_idx, way] = False
        return False, writeback

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no stats, no LRU update)."""
        set_idx, tag = self._locate(addr)
        return bool((self._tags[set_idx] == tag).any())

    def install(self, addr: int, prefetched: bool = True) -> Optional[int]:
        """Fill a line without demand-access accounting (prefetch fill).

        Returns a dirty victim's block address when the fill evicted
        modified data.  No-op if the line is already present.
        """
        set_idx, tag = self._locate(addr)
        if (self._tags[set_idx] == tag).any():
            return None
        self._tick += 1
        way = int(np.argmin(self._stamps[set_idx]))
        writeback = None
        victim_tag = int(self._tags[set_idx, way])
        if victim_tag != -1 and self._dirty[set_idx, way]:
            victim_block = (victim_tag << (self.n_sets.bit_length() - 1)) | set_idx
            writeback = victim_block << self._line_shift
            self.stats.writebacks += 1
        self._tags[set_idx, way] = tag
        self._dirty[set_idx, way] = False
        self._stamps[set_idx, way] = self._tick
        self._prefetched[set_idx, way] = prefetched
        return writeback

    def take_prefetched(self, addr: int) -> bool:
        """True (and clears the flag) if the line was brought in by a
        prefetch and this is its first demand touch."""
        set_idx, tag = self._locate(addr)
        hits = np.nonzero(self._tags[set_idx] == tag)[0]
        if not hits.size:
            return False
        way = int(hits[0])
        if self._prefetched[set_idx, way]:
            self._prefetched[set_idx, way] = False
            return True
        return False

    def invalidate(self, addr: int) -> bool:
        """Drop a block if present; returns whether it was present."""
        set_idx, tag = self._locate(addr)
        hits = np.nonzero(self._tags[set_idx] == tag)[0]
        if not hits.size:
            return False
        way = int(hits[0])
        self._tags[set_idx, way] = -1
        self._dirty[set_idx, way] = False
        self._stamps[set_idx, way] = 0
        self._prefetched[set_idx, way] = False
        return True

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = int(self._dirty.sum())
        self._tags.fill(-1)
        self._dirty.fill(False)
        self._stamps.fill(0)
        self._prefetched.fill(False)
        return dirty

    def reset_stats(self) -> None:
        self.stats = CacheStats()


@dataclass
class LevelSpec:
    """Parameters of one level in a :class:`CacheHierarchy`."""

    name: str
    size_bytes: int
    ways: int
    latency_ps: SimTime  #: hit latency of this level
    line_size: int = 64


class CacheHierarchy:
    """A functional multi-level hierarchy with per-level latency accounting.

    ``access`` walks L1 -> L2 -> ... -> memory; on a miss at level *i* it
    allocates into that level on the way back (inclusive-ish fill: every
    missed level is filled).  Returns ``(latency_ps, level_hit)`` where
    ``level_hit`` is the index of the level that hit (``len(levels)``
    means main memory).

    ``memory_latency_ps`` stands in for the downstream memory; pass a
    callable for a live DRAM model.
    """

    def __init__(self, levels: List[LevelSpec], memory_latency_ps: SimTime = 60_000):
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = [
            CacheArray(spec.size_bytes, spec.line_size, spec.ways, name=spec.name)
            for spec in levels
        ]
        self.specs = list(levels)
        self.memory_latency_ps = memory_latency_ps
        self.memory_accesses = 0
        self.writeback_traffic_bytes = 0

    def access(self, addr: int, is_write: bool = False) -> Tuple[SimTime, int]:
        latency: SimTime = 0
        for i, (cache, spec) in enumerate(zip(self.levels, self.specs)):
            latency += spec.latency_ps
            hit, writeback = cache.access(addr, is_write if i == 0 else False)
            if writeback is not None:
                self.writeback_traffic_bytes += spec.line_size
            if hit:
                return latency, i
        self.memory_accesses += 1
        latency += self.memory_latency_ps
        return latency, len(self.levels)

    def hit_rates(self) -> Dict[str, float]:
        return {c.name: c.stats.hit_rate for c in self.levels}

    def level(self, name: str) -> CacheArray:
        for cache in self.levels:
            if cache.name == name:
                return cache
        raise KeyError(f"no cache level named {name!r}")

    def reset_stats(self) -> None:
        for cache in self.levels:
            cache.reset_stats()
        self.memory_accesses = 0
        self.writeback_traffic_bytes = 0


@register("memory.Cache")
class Cache(Component):
    """Event-driven cache component.

    Ports: ``cpu`` (upstream requests in / responses out) and ``mem``
    (downstream).  Parameters: ``size`` (e.g. "64KB"), ``ways``,
    ``line_size``, ``hit_latency`` (e.g. "2ns"), ``level`` (label),
    ``mshrs`` (max outstanding misses; further misses queue).
    """

    cpu = port("upstream: receives MemRequest, returns MemResponse",
               event=MemRequest, handler="on_request")
    mem = port("downstream: emits MemRequest, receives MemResponse",
               event=MemResponse, handler="on_response")

    array = state(doc="functional set-associative array (tags/dirty/LRU)")
    _outstanding = state(dict, gauge=True, doc="in-flight misses by req id")
    _blocked = state(list, gauge=True, doc="requests stalled on MSHRs")
    _prefetch_ids = state(set, doc="req ids of in-flight prefetch fills")

    s_hits = stat.counter(doc="demand hits")
    s_misses = stat.counter(doc="demand misses")
    s_writebacks = stat.counter(doc="dirty evictions sent downstream")
    s_queued = stat.counter("mshr_stalls", doc="misses queued behind MSHRs")
    s_prefetches = stat.counter(doc="prefetch fetches issued")
    s_prefetch_hits = stat.counter(doc="first demand touch of a prefetched line")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.level_name = p.find_str("level", "L1")
        self.hit_latency = p.find_time("hit_latency", "2ns")
        self.array = CacheArray(
            p.find_size_bytes("size", "32KB"),
            p.find_int("line_size", 64),
            p.find_int("ways", 8),
            name=self.level_name,
        )
        self.max_mshrs = p.find_int("mshrs", 16)
        #: next-N-line stream prefetcher depth (0 = off): every demand
        #: miss also fetches the following N sequential lines.
        self.prefetch_depth = p.find_int("prefetch", 0)

    def on_request(self, event) -> None:
        assert isinstance(event, MemRequest)
        hit, writeback = self.array.access(event.addr, event.is_write)
        if hit:
            self.s_hits.add()
            if self.array.take_prefetched(event.addr):
                self.s_prefetch_hits.add()
            self.send("cpu", MemResponse(event, level=self.level_name),
                      extra_delay=self.hit_latency)
            return
        self.s_misses.add()
        if writeback is not None:
            self.s_writebacks.add()
            self.send("mem", MemRequest(writeback, self.array.line_size,
                                        is_write=True),
                      extra_delay=self.hit_latency)
        if len(self._outstanding) >= self.max_mshrs:
            self.s_queued.add()
            self._blocked.append(event)
            return
        self._issue_miss(event)
        self._issue_prefetches(event.addr)

    def _issue_miss(self, event: MemRequest) -> None:
        fetch = MemRequest(self.array.block_addr(event.addr),
                           self.array.line_size, is_write=False,
                           req_id=event.req_id)
        self._outstanding[event.req_id] = event
        self.send("mem", fetch, extra_delay=self.hit_latency)

    def _issue_prefetches(self, miss_addr: int) -> None:
        """Next-N-line stream prefetch after a demand miss."""
        if not self.prefetch_depth:
            return
        base = self.array.block_addr(miss_addr)
        for k in range(1, self.prefetch_depth + 1):
            target = base + k * self.array.line_size
            if self.array.probe(target):
                continue
            fetch = MemRequest(target, self.array.line_size, is_write=False)
            self._prefetch_ids.add(fetch.req_id)
            self.s_prefetches.add()
            self.send("mem", fetch, extra_delay=self.hit_latency)

    def on_response(self, event) -> None:
        assert isinstance(event, MemResponse)
        if event.is_write:
            return  # writeback ack; nothing waits on it
        if event.req_id in self._prefetch_ids:
            self._prefetch_ids.discard(event.req_id)
            writeback = self.array.install(event.addr, prefetched=True)
            if writeback is not None:
                self.s_writebacks.add()
                self.send("mem", MemRequest(writeback, self.array.line_size,
                                            is_write=True))
            return
        original = self._outstanding.pop(event.req_id, None)
        if original is None:
            return  # e.g. response to an evicted writeback fetch
        self.send("cpu", MemResponse(original, level=event.level))
        if self._blocked:
            self._issue_miss(self._blocked.pop(0))
