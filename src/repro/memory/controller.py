"""Memory-controller scheduling policies.

The controller sits between the last cache level and DRAM and decides
the order requests are presented to the banks.  Two classic policies are
modelled (an ablation target called out in DESIGN.md):

* **FCFS** — strictly arrival order.
* **FR-FCFS** (first-ready, first-come-first-served) — within a bounded
  reorder window, requests that hit an already-open row go first; ties
  and non-hits fall back to arrival order.  This is the policy DRAMSim2
  defaults to and is what gives streaming workloads their row-locality
  advantage.

:class:`SchedulingDRAM` is a functional wrapper (DRAMModel + queue) used
by the node models; :class:`MemController` is the event-driven component
form.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime
from .dram import DRAMModel
from .events import MemRequest, MemResponse

POLICIES = ("fcfs", "frfcfs")


class SchedulingDRAM:
    """A DRAMModel fronted by a scheduling queue.

    ``submit`` enqueues a request; ``drain_until(now)`` schedules every
    request that can start by ``now`` and returns completions as
    ``(completion_time, payload)`` pairs.  This functional form lets the
    trace-driven processor models account controller policy without
    per-request events.
    """

    def __init__(self, technology: str = "DDR3-1333", channels: int = 1,
                 policy: str = "frfcfs", window: int = 8):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; options: {POLICIES}")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.model = DRAMModel(technology, channels)
        self.policy = policy
        self.window = window
        self._queue: Deque[Tuple[SimTime, int, int, bool, object]] = deque()
        self.reordered = 0

    def submit(self, arrival_ps: SimTime, addr: int, size: int = 64,
               is_write: bool = False, payload: object = None) -> None:
        self._queue.append((arrival_ps, addr, size, is_write, payload))

    def _pick_index(self, now_ps: SimTime) -> int:
        """Index of the next request to schedule under the active policy."""
        if self.policy == "fcfs" or len(self._queue) == 1:
            return 0
        # FR-FCFS: among the first `window` arrived requests, prefer the
        # oldest row-buffer hit.
        scan = min(self.window, len(self._queue))
        for i in range(scan):
            arrival, addr, _size, _w, _p = self._queue[i]
            if arrival > now_ps:
                break
            _channel, bank, row = self.model._map(addr)
            if self.model._open_row[bank] == row:
                if i != 0:
                    self.reordered += 1
                return i
        return 0

    def drain_until(self, now_ps: SimTime) -> List[Tuple[SimTime, object]]:
        """Schedule all requests with arrival <= now; return completions."""
        done: List[Tuple[SimTime, object]] = []
        while self._queue and self._queue[0][0] <= now_ps:
            index = self._pick_index(now_ps)
            arrival, addr, size, is_write, payload = self._queue[index]
            if arrival > now_ps:
                index = 0
                arrival, addr, size, is_write, payload = self._queue[0]
            del self._queue[index]
            completion = self.model.request(max(arrival, 0), addr, size, is_write)
            done.append((completion, payload))
        return done

    def drain_all(self) -> List[Tuple[SimTime, object]]:
        """Schedule everything queued regardless of arrival time."""
        last = self._queue[-1][0] if self._queue else 0
        return self.drain_until(last)

    @property
    def pending(self) -> int:
        return len(self._queue)


@register("memory.MemController")
class MemController(Component):
    """Event-driven controller + DRAM endpoint.

    Port ``cpu``: requests in / responses out.  Parameters:
    ``technology``, ``channels``, ``policy`` ("fcfs"|"frfcfs"),
    ``window``, ``frontend_latency``.
    """

    cpu = port("memory requests in / responses out",
               event=MemRequest, handler="on_request")

    sched = state(doc="SchedulingDRAM queue + DRAM timing state")

    s_requests = stat.counter(doc="requests accepted")
    s_latency = stat.accumulator("latency_ps", doc="request latency")
    s_reordered = stat.counter(doc="FR-FCFS promotions (mirrored at finish)")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.sched = SchedulingDRAM(
            p.find_str("technology", "DDR3-1333"),
            channels=p.find_int("channels", 1),
            policy=p.find_str("policy", "frfcfs"),
            window=p.find_int("window", 8),
        )
        self.frontend_latency = p.find_time("frontend_latency", "10ns")

    def on_request(self, event) -> None:
        assert isinstance(event, MemRequest)
        self.s_requests.add()
        arrival = self.now + self.frontend_latency
        self.sched.submit(arrival, event.addr, event.size, event.is_write,
                          payload=event)
        for completion, payload in self.sched.drain_until(arrival):
            assert isinstance(payload, MemRequest)
            self.s_latency.add(completion - self.now)
            self.send("cpu", MemResponse(payload, level="dram"),
                      extra_delay=max(0, completion - self.now))

    def on_finish(self) -> None:
        self.s_reordered.add(self.sched.reordered - self.s_reordered.count)
