"""Shared-bandwidth on-node resources.

The cores-per-node studies (Fig. 2) hinge on one mechanism: all cores on
a socket share finite memory bandwidth, so per-core efficiency falls as
cores are added.  Two forms:

* :class:`BandwidthShare` — functional: given per-core demand and a
  shared peak, returns the slowdown each core experiences.  The
  miniapp phase models use this directly.
* :class:`SharedBus` — an event-driven bus component with N upstream
  ports and one downstream port; requests serialise over the bus's
  bandwidth in both directions and responses are steered back to the
  requesting port.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime, bytes_time
from .events import MemRequest, MemResponse


class BandwidthShare:
    """Analytic bandwidth-contention model.

    ``n`` identical clients each demanding ``demand`` bytes/s from a
    shared resource with ``peak`` bytes/s capacity get effective
    bandwidth ``min(demand, peak/n)``; the slowdown of a
    bandwidth-bound phase is ``demand / effective``.
    """

    def __init__(self, peak_bytes_per_s: float):
        if peak_bytes_per_s <= 0:
            raise ValueError("peak bandwidth must be positive")
        self.peak = peak_bytes_per_s

    def effective_bandwidth(self, n_clients: int, demand_bytes_per_s: float) -> float:
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        return min(demand_bytes_per_s, self.peak / n_clients)

    def slowdown(self, n_clients: int, demand_bytes_per_s: float) -> float:
        """Runtime multiplier for a fully bandwidth-bound phase."""
        eff = self.effective_bandwidth(n_clients, demand_bytes_per_s)
        return demand_bytes_per_s / eff

    def phase_time(self, base_time_s: float, bandwidth_fraction: float,
                   n_clients: int, demand_bytes_per_s: float) -> float:
        """Runtime of a phase that is only partially bandwidth-bound.

        ``bandwidth_fraction`` of ``base_time_s`` scales with contention;
        the rest (compute) is unaffected — a simple Amdahl split that
        reproduces the FEA-vs-solver contrast of Figs. 2-3.
        """
        if not 0.0 <= bandwidth_fraction <= 1.0:
            raise ValueError("bandwidth_fraction must be in [0,1]")
        s = self.slowdown(n_clients, demand_bytes_per_s)
        return base_time_s * ((1.0 - bandwidth_fraction) + bandwidth_fraction * s)


@register("memory.SharedBus")
class SharedBus(Component):
    """Bandwidth-limited bus joining N upstream clients to one memory.

    Ports: ``cpu0`` .. ``cpu{n_ports-1}`` upstream, ``mem`` downstream.
    Parameters: ``n_ports``, ``bandwidth`` (e.g. "10.67GB/s"),
    ``arbitration_latency``.

    Requests queue for the bus; each occupies it for
    ``size / bandwidth``.  Responses traverse the bus the same way and
    are steered back to the port the request arrived on (recorded in
    ``src_port``).
    """

    cpu = port("upstream client ports", name="cpu<i>", event=MemRequest)
    mem = port("downstream memory", event=MemResponse, handler="on_response")

    _bus_free = state(0, doc="time the bus next becomes free")
    _route = state(dict, doc="req id -> upstream port index")

    s_transfers = stat.counter(doc="bus occupancies (both directions)")
    s_bus_wait = stat.accumulator("bus_wait_ps", doc="arbitration wait")
    s_bytes = stat.counter(doc="bytes moved over the bus")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.n_ports = p.find_int("n_ports", 2)
        self.bandwidth = p.find_bandwidth("bandwidth", "10.67GB/s")
        self.arb_latency = p.find_time("arbitration_latency", "1ns")
        for i in range(self.n_ports):
            self.set_handler(f"cpu{i}", self._make_upstream_handler(i))

    def _occupy(self, size: int) -> SimTime:
        """Reserve the bus for ``size`` bytes; returns the finish delay."""
        transfer = bytes_time(size, self.bandwidth)
        start = max(self.now + self.arb_latency, self._bus_free)
        self.s_bus_wait.add(start - self.now)
        self._bus_free = start + transfer
        self.s_transfers.add()
        self.s_bytes.add(size)
        return self._bus_free - self.now

    def _make_upstream_handler(self, port_index: int):
        def handler(event):
            assert isinstance(event, MemRequest)
            self._route[event.req_id] = port_index
            event.src_port = port_index
            delay = self._occupy(event.size)
            self.send("mem", event, extra_delay=delay)

        return handler

    def on_response(self, event) -> None:
        assert isinstance(event, MemResponse)
        port_index = self._route.pop(event.req_id, event.src_port)
        if port_index is None:
            raise RuntimeError(
                f"{self.name}: response id={event.req_id} has no return route"
            )
        delay = self._occupy(64)  # response carries one line
        self.send(f"cpu{port_index}", event, extra_delay=delay)
