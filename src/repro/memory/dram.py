"""DRAM timing/energy models (the DRAMSim2 substitute).

A :class:`DRAMModel` advances bank/row-buffer/channel state one request
at a time and returns completion timestamps; technology parameter sets
are provided for the memory types the paper's SST study sweeps (§5.2.1:
DDR2, DDR3, GDDR5) and the memory-speed study (Fig. 3: 800/1066/1333
MHz DDR3).

Timing model per request:

* row-buffer hit:   CAS latency
* row-buffer miss:  precharge + activate (tRP + tRCD) + CAS
* data transfer:    size / peak bandwidth, serialised per channel
* bank recovery:    the bank is busy until the transfer completes

Energy model (device-level, DRAMSim-style aggregation):

* activate energy per row miss
* read/write energy per bit transferred
* background (static + refresh) power integrated over the run

Numbers are representative datasheet-scale values; the experiments in
benchmarks/ depend on their *relative* magnitudes (GDDR5 ~6-8x the
bandwidth of DDR3 at ~7x the background power and ~2x the $/GB), which
reproduce the orderings and crossovers in Figs. 10-12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime, bytes_time, parse_time
from .events import MemRequest, MemResponse


@dataclass(frozen=True)
class DRAMTech:
    """One memory technology's timing, energy and cost parameters."""

    name: str
    peak_bw_bytes_per_s: float  #: per channel
    t_cas_ps: SimTime
    t_rcd_ps: SimTime
    t_rp_ps: SimTime
    n_banks: int
    row_bytes: int
    activate_energy_pj: float  #: per row activation
    access_energy_pj_per_bit: float  #: dynamic, per bit moved
    background_power_w: float  #: static + refresh, per channel
    cost_per_gb: float  #: $/GB (spot-price-index style)

    @property
    def row_miss_latency_ps(self) -> SimTime:
        return self.t_rp_ps + self.t_rcd_ps + self.t_cas_ps


def _ns(x: float) -> SimTime:
    return int(round(x * 1000))


#: Technology table.  DDR2 = cheap/low-power/antiquated, DDR3 = balanced,
#: GDDR5 = very high bandwidth / high power / expensive (paper §5.2.1).
TECHNOLOGIES: Dict[str, DRAMTech] = {
    "DDR2-800": DRAMTech(
        name="DDR2-800", peak_bw_bytes_per_s=6.4e9,
        t_cas_ps=_ns(15.0), t_rcd_ps=_ns(15.0), t_rp_ps=_ns(15.0),
        n_banks=8, row_bytes=4096,
        activate_energy_pj=3500.0, access_energy_pj_per_bit=42.0,
        background_power_w=0.45, cost_per_gb=8.0,
    ),
    "DDR3-800": DRAMTech(
        name="DDR3-800", peak_bw_bytes_per_s=6.4e9,
        t_cas_ps=_ns(15.0), t_rcd_ps=_ns(15.0), t_rp_ps=_ns(15.0),
        n_banks=8, row_bytes=4096,
        activate_energy_pj=2800.0, access_energy_pj_per_bit=34.0,
        background_power_w=0.50, cost_per_gb=6.0,
    ),
    "DDR3-1066": DRAMTech(
        name="DDR3-1066", peak_bw_bytes_per_s=8.53e9,
        t_cas_ps=_ns(13.1), t_rcd_ps=_ns(13.1), t_rp_ps=_ns(13.1),
        n_banks=8, row_bytes=4096,
        activate_energy_pj=2800.0, access_energy_pj_per_bit=33.0,
        background_power_w=0.55, cost_per_gb=6.0,
    ),
    "DDR3-1333": DRAMTech(
        name="DDR3-1333", peak_bw_bytes_per_s=10.67e9,
        t_cas_ps=_ns(13.5), t_rcd_ps=_ns(13.5), t_rp_ps=_ns(13.5),
        n_banks=8, row_bytes=4096,
        activate_energy_pj=2900.0, access_energy_pj_per_bit=32.0,
        background_power_w=0.60, cost_per_gb=6.0,
    ),
    "DDR3-1600": DRAMTech(
        name="DDR3-1600", peak_bw_bytes_per_s=12.8e9,
        t_cas_ps=_ns(12.5), t_rcd_ps=_ns(12.5), t_rp_ps=_ns(12.5),
        n_banks=8, row_bytes=4096,
        activate_energy_pj=3000.0, access_energy_pj_per_bit=31.0,
        background_power_w=0.65, cost_per_gb=6.5,
    ),
    "GDDR5": DRAMTech(
        name="GDDR5", peak_bw_bytes_per_s=80.0e9,
        t_cas_ps=_ns(12.0), t_rcd_ps=_ns(12.0), t_rp_ps=_ns(12.0),
        n_banks=16, row_bytes=2048,
        activate_energy_pj=2600.0, access_energy_pj_per_bit=28.0,
        background_power_w=4.5, cost_per_gb=12.0,
    ),
}


def tech(name: str) -> DRAMTech:
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown memory technology {name!r}; options: {sorted(TECHNOLOGIES)}"
        ) from None


@dataclass
class DRAMStats:
    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bytes_moved: int = 0
    busy_time_ps: SimTime = 0
    dynamic_energy_pj: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0


class DRAMModel:
    """Functional bank/row-buffer/channel timing model for one channel group.

    Requests are presented in non-decreasing arrival time (the usual DES
    discipline); ``request`` returns the completion timestamp.
    """

    def __init__(self, technology: str = "DDR3-1333", channels: int = 1):
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.tech = tech(technology)
        self.channels = channels
        t = self.tech
        total_banks = t.n_banks * channels
        self._open_row = [-1] * total_banks
        self._bank_ready: list = [0] * total_banks
        self._channel_free: list = [0] * channels
        self.stats = DRAMStats()

    @property
    def peak_bandwidth(self) -> float:
        return self.tech.peak_bw_bytes_per_s * self.channels

    def _map(self, addr: int) -> Tuple[int, int, int]:
        """addr -> (channel, global bank index, row)."""
        t = self.tech
        row_global = addr // t.row_bytes
        channel = row_global % self.channels
        bank_local = (row_global // self.channels) % t.n_banks
        row = row_global // (self.channels * t.n_banks)
        return channel, channel * t.n_banks + bank_local, row

    def request(self, now_ps: SimTime, addr: int, size: int = 64,
                is_write: bool = False) -> SimTime:
        """Issue one transaction at ``now_ps``; returns completion time."""
        t = self.tech
        channel, bank, row = self._map(addr)
        # Command issue: the bank accepts a new column command once the
        # previous one's command slot has passed.
        issue = max(now_ps, self._bank_ready[bank])
        transfer = bytes_time(size, t.peak_bw_bytes_per_s)
        if self._open_row[bank] == row:
            self.stats.row_hits += 1
            access = t.t_cas_ps
            # Column commands pipeline at tCCD ~= the burst time; CAS is
            # pure latency, not occupancy.  This is what lets open-row
            # streams run at the channel's peak bandwidth.
            self._bank_ready[bank] = issue + transfer
        else:
            self.stats.row_misses += 1
            access = t.row_miss_latency_ps
            self._open_row[bank] = row
            self.stats.dynamic_energy_pj += t.activate_energy_pj
            # No new column command to this bank until precharge+activate
            # complete.
            self._bank_ready[bank] = issue + t.t_rp_ps + t.t_rcd_ps
        # Data must also win the channel (bandwidth serialisation).
        data_start = max(issue + access, self._channel_free[channel])
        done = data_start + transfer
        self._channel_free[channel] = done
        self.stats.requests += 1
        self.stats.bytes_moved += size
        self.stats.busy_time_ps += done - issue
        self.stats.dynamic_energy_pj += size * 8 * t.access_energy_pj_per_bit
        return done

    def energy_joules(self, elapsed_ps: SimTime) -> float:
        """Total energy over ``elapsed_ps``: dynamic + background."""
        background = self.tech.background_power_w * self.channels * (
            elapsed_ps / 1e12
        )
        return self.stats.dynamic_energy_pj * 1e-12 + background

    def average_power_w(self, elapsed_ps: SimTime) -> float:
        if elapsed_ps <= 0:
            return 0.0
        return self.energy_joules(elapsed_ps) / (elapsed_ps / 1e12)

    def cost_dollars(self, capacity_gb: float) -> float:
        return self.tech.cost_per_gb * capacity_gb

    def achieved_bandwidth(self, elapsed_ps: SimTime) -> float:
        if elapsed_ps <= 0:
            return 0.0
        return self.stats.bytes_moved / (elapsed_ps / 1e12)


@register("memory.MainMemory")
class MainMemory(Component):
    """Event-driven memory endpoint wrapping a :class:`DRAMModel`.

    Port ``cpu``: receives :class:`MemRequest`, responds with
    :class:`MemResponse` at the DRAM-model completion time.

    Parameters: ``technology`` (key of :data:`TECHNOLOGIES`),
    ``channels``, ``capacity`` (for cost accounting, e.g. "16GB"),
    ``controller_latency`` (fixed front-end latency, default "10ns").
    """

    cpu = port("memory requests in / responses out",
               event=MemRequest, handler="on_request")

    model = state(doc="DRAMModel bank/row/channel timing state")

    s_reads = stat.counter(doc="read transactions")
    s_writes = stat.counter(doc="write transactions")
    s_latency = stat.accumulator("latency_ps", doc="request latency")
    s_row_hits = stat.counter(doc="row-buffer hits (mirrored at finish)")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.model = DRAMModel(p.find_str("technology", "DDR3-1333"),
                               channels=p.find_int("channels", 1))
        self.capacity_gb = p.find_size_bytes("capacity", "4GB") / 1024**3
        self.controller_latency = p.find_time("controller_latency", "10ns")

    def on_request(self, event) -> None:
        assert isinstance(event, MemRequest)
        arrival = self.now + self.controller_latency
        done = self.model.request(arrival, event.addr, event.size,
                                  event.is_write)
        (self.s_writes if event.is_write else self.s_reads).add()
        self.s_latency.add(done - self.now)
        self.send("cpu", MemResponse(event, level="dram"),
                  extra_delay=max(0, done - self.now))

    def on_finish(self) -> None:
        self.s_row_hits.add(self.model.stats.row_hits - self.s_row_hits.count)


@register("memory.SimpleMemory")
class SimpleMemory(Component):
    """Fixed-latency memory endpoint (for tests and minimal examples)."""

    cpu = port("memory requests in / responses out",
               event=MemRequest, handler="on_request")

    s_requests = stat.counter(doc="requests served")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.latency = self.params.find_time("latency", "60ns")

    def on_request(self, event) -> None:
        assert isinstance(event, MemRequest)
        self.s_requests.add()
        self.send("cpu", MemResponse(event, level="memory"),
                  extra_delay=self.latency)
