"""Node-level bulk memory endpoint.

:class:`NodeMemory` is the memory side of the block-stepped abstract
processor model (``processor.MixCore``): cores hand it the *aggregate*
DRAM traffic of an instruction block as a
:class:`~repro.processor.core.BulkMemRequest`, and the transfer is
serialised through the DRAM channel state.  When several cores stream
simultaneously they therefore split the technology's peak bandwidth —
the mechanism behind the memory-technology study (Fig. 10) and the
cores-per-node study (Fig. 2).

Lives in :mod:`repro.memory` (not the processor package) so the
component registry's lazy library loading finds ``memory.NodeMemory``.
The event classes are duck-typed (``nbytes``/``accesses`` attributes)
to avoid a circular import with the processor package.
"""

from __future__ import annotations

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime
from .dram import DRAMModel


@register("memory.NodeMemory")
class NodeMemory(Component):
    """Bulk-traffic memory endpoint shared by the cores of one node.

    Ports ``core0`` .. ``core{n_ports-1}`` receive bulk requests (events
    with ``nbytes``, ``accesses`` and ``req_id`` attributes) and return
    bulk responses when the transfer completes.

    Parameters: ``technology`` (key in
    :data:`repro.memory.dram.TECHNOLOGIES`), ``channels``, ``n_ports``,
    ``row_locality`` (fraction of a bulk transfer that row-hits, for
    energy accounting).
    """

    core = port("bulk requests in / responses out", name="core<i>")

    dram = state(doc="DRAMModel channel/energy bookkeeping")
    _channel_free = state(0, doc="time the bulk channel next frees up")

    s_bytes = stat.counter(doc="bulk bytes transferred")
    s_requests = stat.counter(doc="bulk transfers served")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.dram = DRAMModel(p.find_str("technology", "DDR3-1333"),
                              channels=p.find_int("channels", 1))
        self.n_ports = p.find_int("n_ports", 1)
        self.row_locality = p.find_float("row_locality", 0.6)
        for i in range(self.n_ports):
            self.set_handler(f"core{i}", self._make_handler(i))

    def on_setup(self) -> None:
        # Advertise the DRAM technology to every attached core that wants
        # it (MixCore uses this to match its DRAM-latency model to the
        # memory it talks to).  Duck-typed to avoid importing processor.
        for i in range(self.n_ports):
            port = self._ports.get(f"core{i}")
            if port is None or port.endpoint is None or port.endpoint.peer_port is None:
                continue
            peer = port.endpoint.peer_port.component
            advertise = getattr(peer, "advertise_tech", None)
            if callable(advertise):
                advertise(self.dram.tech)

    def _make_handler(self, port_index: int):
        from ..processor.core import BulkMemRequest, BulkMemResponse

        def handler(event):
            assert isinstance(event, BulkMemRequest)
            done = self.bulk_completion(self.now, event.nbytes, event.accesses)
            self.s_bytes.add(event.nbytes)
            self.s_requests.add()
            self.send(f"core{port_index}", BulkMemResponse(event.req_id),
                      extra_delay=max(0, done - self.now))

        return handler

    def bulk_completion(self, now_ps: SimTime, nbytes: int,
                        accesses: int) -> SimTime:
        """Serialise a bulk transfer through the channel; returns done time."""
        tech = self.dram.tech
        bw = self.dram.peak_bandwidth
        transfer_ps = int(round(nbytes / bw * 1e12)) if nbytes else 0
        start = max(now_ps, self._channel_free)
        done = start + transfer_ps
        self._channel_free = done
        # Account energy/stats through the underlying model's bookkeeping.
        stats = self.dram.stats
        stats.requests += max(1, accesses)
        row_misses = int(round(max(1, accesses) * (1.0 - self.row_locality)))
        stats.row_misses += row_misses
        stats.row_hits += max(1, accesses) - row_misses
        stats.bytes_moved += nbytes
        stats.busy_time_ps += done - start
        stats.dynamic_energy_pj += (
            row_misses * tech.activate_energy_pj
            + nbytes * 8 * tech.access_energy_pj_per_bit
        )
        return done
