"""MSI snooping cache coherence.

Multi-core node models need coherent private caches; this module adds
the classic MSI snooping protocol over an atomic broadcast bus:

* :class:`SnoopBus` — the functional protocol core: per-cache MSI state
  machines advanced one bus transaction at a time, with the standard
  transitions (BusRd on read miss, BusRdX on write miss, BusUpgr on
  write-to-Shared), owner flushes, and cache-to-cache transfers.
  Correctness invariants (single writer; no S while M; readers always
  observe the last write) are enforced by assertions and tested with
  property-based access sequences.
* :class:`CoherentCache` / :class:`CoherentBusComponent` — event-driven
  wrappers: cores issue :class:`~repro.memory.events.MemRequest`s to a
  private coherent cache; misses and upgrades arbitrate for the bus
  component, which resolves the protocol atomically and charges
  realistic latencies (bus occupancy + either a cache-to-cache transfer
  or a memory fetch).

Timing fidelity note: the protocol itself is resolved atomically at the
bus (SST's memHierarchy makes the same simplification at its lowest
fidelity level); what the DES adds is arbitration/queueing and the
latency difference between cache-to-cache and memory supplies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime
from .events import MemRequest, MemResponse


class State(enum.Enum):
    """MSI line states."""

    I = "I"  # noqa: E741  (the canonical name)
    S = "S"
    M = "M"


@dataclass
class CoherenceStats:
    bus_transactions: int = 0
    invalidations: int = 0
    writebacks: int = 0  #: M lines flushed to memory on eviction/downgrade
    cache_to_cache: int = 0
    memory_fetches: int = 0
    upgrades: int = 0


@dataclass
class _Line:
    state: State = State.I
    #: version of the data this copy holds (global write counter)
    version: int = 0


class _CacheState:
    """One cache's line states with capacity-based LRU eviction."""

    def __init__(self, capacity_lines: int):
        if capacity_lines < 1:
            raise ValueError("capacity must be >= 1 line")
        self.capacity = capacity_lines
        self.lines: Dict[int, _Line] = {}
        self._lru: List[int] = []  # most recent last

    def get(self, block: int) -> _Line:
        return self.lines.get(block, _Line())

    def touch(self, block: int) -> None:
        if block in self._lru:
            self._lru.remove(block)
        self._lru.append(block)

    def set(self, block: int, state: State, version: int) -> Optional[int]:
        """Install/update a line; returns an evicted block (if any)."""
        evicted = None
        if state is State.I:
            self.lines.pop(block, None)
            if block in self._lru:
                self._lru.remove(block)
            return None
        if block not in self.lines and len(self.lines) >= self.capacity:
            evicted = self._lru.pop(0)
            self.lines.pop(evicted, None)
        self.lines[block] = _Line(state, version)
        self.touch(block)
        return evicted


class SnoopBus:
    """The functional MSI protocol core over an atomic snooping bus.

    ``n_caches`` private caches of ``capacity_lines`` each share one
    bus; ``line_size`` fixes block granularity.  ``read``/``write``
    perform one processor access and return a :class:`AccessOutcome`
    describing what the bus had to do (for the timing layer).
    """

    def __init__(self, n_caches: int, capacity_lines: int = 64,
                 line_size: int = 64):
        if n_caches < 1:
            raise ValueError("need at least one cache")
        self.n_caches = n_caches
        self.line_size = line_size
        self._caches = [_CacheState(capacity_lines) for _ in range(n_caches)]
        #: authoritative data version per block (memory's copy)
        self._memory_version: Dict[int, int] = {}
        #: the latest version ever written per block (ground truth)
        self._latest_version: Dict[int, int] = {}
        self._write_counter = 0
        self.stats = CoherenceStats()

    def _block(self, addr: int) -> int:
        return addr // self.line_size

    # -- invariants ----------------------------------------------------
    def check_invariants(self, block: Optional[int] = None) -> None:
        blocks = ([block] if block is not None else
                  {b for c in self._caches for b in c.lines})
        for blk in blocks:
            states = [c.get(blk).state for c in self._caches]
            modified = states.count(State.M)
            shared = states.count(State.S)
            assert modified <= 1, f"block {blk}: {modified} M copies"
            assert not (modified and shared), \
                f"block {blk}: M coexists with S"

    def _owner(self, block: int) -> Optional[int]:
        for i, cache in enumerate(self._caches):
            if cache.get(block).state is State.M:
                return i
        return None

    def _evict(self, cache_id: int, block: int) -> None:
        """Handle a capacity eviction: M lines write back."""
        line = self._caches[cache_id].get(block)
        if line.state is State.M:
            self._memory_version[block] = line.version
            self.stats.writebacks += 1

    # -- processor-side operations ------------------------------------
    def read(self, cache_id: int, addr: int) -> "AccessOutcome":
        block = self._block(addr)
        cache = self._caches[cache_id]
        line = cache.get(block)
        if line.state in (State.S, State.M):
            cache.touch(block)
            outcome = AccessOutcome(hit=True)
        else:
            # BusRd.
            self.stats.bus_transactions += 1
            owner = self._owner(block)
            if owner is not None:
                # Owner flushes; both end Shared at the owner's version.
                owner_line = self._caches[owner].get(block)
                self._memory_version[block] = owner_line.version
                self._set_with_writeback(owner, block, State.S,
                                         owner_line.version)
                self.stats.cache_to_cache += 1
                version = owner_line.version
                supplied = "cache"
            else:
                self.stats.memory_fetches += 1
                version = self._memory_version.get(block, 0)
                supplied = "memory"
            self._set_with_writeback(cache_id, block, State.S, version)
            outcome = AccessOutcome(hit=False, supplied_by=supplied)
        observed = cache.get(block).version
        expected = self._latest_version.get(block, 0)
        assert observed == expected, \
            f"stale read: block {block} v{observed} != latest v{expected}"
        self.check_invariants(block)
        return outcome

    def write(self, cache_id: int, addr: int) -> "AccessOutcome":
        block = self._block(addr)
        cache = self._caches[cache_id]
        line = cache.get(block)
        self._write_counter += 1
        new_version = self._write_counter
        if line.state is State.M:
            cache.touch(block)
            cache.lines[block].version = new_version
            outcome = AccessOutcome(hit=True)
        elif line.state is State.S:
            # BusUpgr: invalidate every other copy.
            self.stats.bus_transactions += 1
            self.stats.upgrades += 1
            self._invalidate_others(cache_id, block)
            cache.lines[block].state = State.M
            cache.lines[block].version = new_version
            cache.touch(block)
            outcome = AccessOutcome(hit=True, upgraded=True)
        else:
            # BusRdX: fetch exclusive, invalidating everyone.
            self.stats.bus_transactions += 1
            owner = self._owner(block)
            if owner is not None:
                owner_line = self._caches[owner].get(block)
                self._memory_version[block] = owner_line.version
                self.stats.cache_to_cache += 1
                supplied = "cache"
            else:
                self.stats.memory_fetches += 1
                supplied = "memory"
            self._invalidate_others(cache_id, block)
            self._set_with_writeback(cache_id, block, State.M, new_version)
            outcome = AccessOutcome(hit=False, supplied_by=supplied)
        self._latest_version[block] = new_version
        self.check_invariants(block)
        return outcome

    # -- internals ----------------------------------------------------
    def _invalidate_others(self, cache_id: int, block: int) -> None:
        for i, cache in enumerate(self._caches):
            if i == cache_id:
                continue
            if cache.get(block).state is not State.I:
                cache.set(block, State.I, 0)
                self.stats.invalidations += 1

    def _set_with_writeback(self, cache_id: int, block: int, state: State,
                            version: int) -> None:
        """Install a line, writing back any dirty victim it displaces."""
        cache = self._caches[cache_id]
        if state is not State.I and block not in cache.lines \
                and len(cache.lines) >= cache.capacity:
            victim = cache._lru[0]
            victim_line = cache.get(victim)
            if victim_line.state is State.M:
                self._memory_version[victim] = victim_line.version
                self.stats.writebacks += 1
        cache.set(block, state, version)

    # -- introspection ----------------------------------------------------
    def state_of(self, cache_id: int, addr: int) -> State:
        return self._caches[cache_id].get(self._block(addr)).state

    def sharers(self, addr: int) -> List[int]:
        block = self._block(addr)
        return [i for i, c in enumerate(self._caches)
                if c.get(block).state is not State.I]


@dataclass
class AccessOutcome:
    """What one processor access required of the bus."""

    hit: bool
    upgraded: bool = False
    supplied_by: str = ""  #: "cache" | "memory" | "" for hits

    @property
    def used_bus(self) -> bool:
        return (not self.hit) or self.upgraded


# ----------------------------------------------------------------------
# event-driven wrappers
# ----------------------------------------------------------------------

@register("memory.CoherentBus")
class CoherentBusComponent(Component):
    """Snooping bus + memory backend as one component.

    Ports ``cache0`` .. ``cache{n_caches-1}``.  Each attached
    :class:`CoherentCache` forwards its misses/upgrades here; the
    protocol resolves atomically and the response is delayed by bus
    occupancy plus the supply latency (cache-to-cache vs memory).

    Parameters: ``n_caches``, ``capacity_lines`` (per cache),
    ``line_size``, ``bus_time`` (occupancy per transaction),
    ``c2c_latency``, ``memory_latency``.
    """

    cache = port("coherent cache transaction ports", name="cache<i>",
                 event=MemRequest)

    protocol = state(doc="SnoopBus MSI protocol state (all caches)")
    _bus_free = state(0, doc="time the bus next becomes free")

    s_transactions = stat.counter(doc="bus transactions served")
    s_c2c = stat.counter("cache_to_cache",
                         doc="cache-to-cache supplies (mirrored at finish)")
    s_invalidations = stat.counter(doc="invalidations (mirrored at finish)")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.n_caches = p.find_int("n_caches", 2)
        self.protocol = SnoopBus(
            self.n_caches,
            capacity_lines=p.find_int("capacity_lines", 64),
            line_size=p.find_int("line_size", 64),
        )
        self.bus_time = p.find_time("bus_time", "4ns")
        self.c2c_latency = p.find_time("c2c_latency", "15ns")
        self.memory_latency = p.find_time("memory_latency", "60ns")
        for i in range(self.n_caches):
            self.set_handler(f"cache{i}", self._make_handler(i))

    def _make_handler(self, cache_id: int):
        def handler(event):
            assert isinstance(event, MemRequest)
            if event.is_write:
                outcome = self.protocol.write(cache_id, event.addr)
            else:
                outcome = self.protocol.read(cache_id, event.addr)
            start = max(self.now, self._bus_free)
            self._bus_free = start + self.bus_time
            delay = (start - self.now) + self.bus_time
            if not outcome.hit:
                delay += (self.c2c_latency if outcome.supplied_by == "cache"
                          else self.memory_latency)
            self.s_transactions.add()
            self.send(f"cache{cache_id}", MemResponse(event, level="bus"),
                      extra_delay=delay)

        return handler

    def on_finish(self) -> None:
        self.s_c2c.add(self.protocol.stats.cache_to_cache
                       - self.s_c2c.count)
        self.s_invalidations.add(self.protocol.stats.invalidations
                                 - self.s_invalidations.count)


@register("memory.CoherentCache")
class CoherentCache(Component):
    """A core's private coherent cache front-end.

    Ports: ``cpu`` (requests from the core) and ``bus`` (to the
    :class:`CoherentBusComponent` port with the matching index).
    Parameters: ``cache_id``, ``hit_latency``.

    The MSI state itself lives in the shared :class:`SnoopBus` (atomic
    protocol resolution); this front-end decides hit-vs-bus by probing
    the protocol state and charges the hit latency locally, so hits
    never occupy the bus.
    """

    cpu = port("core requests", event=MemRequest, handler="on_request")
    bus = port("bus transactions", event=MemResponse,
               handler="on_bus_response")

    _bus_component = state(None, doc="peer CoherentBusComponent "
                                     "(re-resolved by setup)")

    s_hits = stat.counter(doc="local hits (no bus occupancy)")
    s_misses = stat.counter(doc="misses/upgrades sent to the bus")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.cache_id = p.find_int("cache_id")
        self.hit_latency = p.find_time("hit_latency", "2ns")

    def on_setup(self) -> None:
        bus_port = self._ports.get("bus")
        if bus_port is None or bus_port.endpoint is None \
                or bus_port.endpoint.peer_port is None:
            raise RuntimeError(f"{self.name}: 'bus' port must be connected")
        peer = bus_port.endpoint.peer_port.component
        if not isinstance(peer, CoherentBusComponent):
            raise RuntimeError(
                f"{self.name}: 'bus' must connect to a memory.CoherentBus"
            )
        self._bus_component = peer

    def on_request(self, event) -> None:
        assert isinstance(event, MemRequest)
        protocol = self._bus_component.protocol
        state = protocol.state_of(self.cache_id, event.addr)
        local_hit = (state is State.M) or \
                    (state is State.S and not event.is_write)
        if local_hit:
            # Still goes through the protocol to keep LRU/versions exact,
            # but resolves without bus occupancy.
            if event.is_write:
                protocol.write(self.cache_id, event.addr)
            else:
                protocol.read(self.cache_id, event.addr)
            self.s_hits.add()
            self.send("cpu", MemResponse(event, level="L1"),
                      extra_delay=self.hit_latency)
        else:
            self.s_misses.add()
            self.send("bus", event, extra_delay=self.hit_latency)

    def on_bus_response(self, event) -> None:
        assert isinstance(event, MemResponse)
        self.send("cpu", event)
