"""Memory transaction events shared by caches, buses, controllers and DRAM."""

from __future__ import annotations

from typing import Optional

from ..core.event import Event, IdSource

# Checkpointable global id stream (repro.ckpt snapshots/restores it, so
# ids drawn after a restore continue where the captured run left off).
_req_ids = IdSource("memory.req_id")


class MemRequest(Event):
    """A read or write of ``size`` bytes at ``addr``.

    ``req_id`` is globally unique; responses echo it so requesters can
    match outstanding transactions.  ``src_port`` is a free-form routing
    tag appended by intermediaries (e.g. a bus remembers which upstream
    port a request entered by so the response can be steered back).
    """

    __slots__ = ("addr", "size", "is_write", "req_id", "src_port", "phase")

    def __init__(self, addr: int, size: int = 8, is_write: bool = False,
                 req_id: Optional[int] = None, src_port: Optional[int] = None,
                 phase: str = ""):
        self.addr = addr
        self.size = size
        self.is_write = is_write
        self.req_id = req_id if req_id is not None else next(_req_ids)
        self.src_port = src_port
        self.phase = phase

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "W" if self.is_write else "R"
        return f"MemRequest({kind} 0x{self.addr:x} x{self.size} id={self.req_id})"


class MemResponse(Event):
    """Completion of a :class:`MemRequest`."""

    __slots__ = ("req_id", "addr", "is_write", "src_port", "level")

    def __init__(self, request: MemRequest, level: str = ""):
        self.req_id = request.req_id
        self.addr = request.addr
        self.is_write = request.is_write
        self.src_port = request.src_port
        #: which level of the hierarchy satisfied the request ("L1", "dram"...)
        self.level = level

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemResponse(id={self.req_id} from {self.level or '?'})"
