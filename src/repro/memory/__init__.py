"""PySST memory-system model library.

Functional and event-driven models of the on-node memory system:
set-associative caches (:mod:`~repro.memory.cache`), DRAM technologies
with bank/row-buffer timing (:mod:`~repro.memory.dram`), controller
scheduling policies (:mod:`~repro.memory.controller`) and shared-
bandwidth buses (:mod:`~repro.memory.bus`).

Component types registered: ``memory.Cache``, ``memory.MainMemory``,
``memory.SimpleMemory``, ``memory.MemController``, ``memory.SharedBus``.
"""

from .bus import BandwidthShare, SharedBus
from .cache import (Cache, CacheArray, CacheHierarchy, CacheStats, LevelSpec)
from .coherence import (CoherenceStats, CoherentBusComponent, CoherentCache,
                        SnoopBus, State)
from .controller import POLICIES, MemController, SchedulingDRAM
from .dram import (TECHNOLOGIES, DRAMModel, DRAMStats, DRAMTech, MainMemory,
                   SimpleMemory, tech)
from .events import MemRequest, MemResponse
from .node import NodeMemory

__all__ = [
    "BandwidthShare",
    "Cache",
    "CacheArray",
    "CacheHierarchy",
    "CacheStats",
    "CoherenceStats",
    "CoherentBusComponent",
    "CoherentCache",
    "DRAMModel",
    "DRAMStats",
    "DRAMTech",
    "LevelSpec",
    "MainMemory",
    "MemController",
    "MemRequest",
    "MemResponse",
    "NodeMemory",
    "POLICIES",
    "SchedulingDRAM",
    "SharedBus",
    "SimpleMemory",
    "SnoopBus",
    "State",
    "TECHNOLOGIES",
    "tech",
]
