"""Abstract processor-core models.

The GeM5 substitute (see the substitution catalogue in DESIGN.md): an
in-order, multi-issue core whose timing is computed per *block* of
instructions from a statistical workload description, rather than per
instruction.  Per-block stepping keeps event counts tractable for a
pure-Python DES while retaining the effects the paper's SST studies
measure:

* issue-width scaling saturating at the workload's ILP;
* cache-miss latency stalls, overlapped up to the core's MLP;
* DRAM bandwidth as a roofline — a core (or several cores sharing a
  memory) cannot retire bandwidth-bound blocks faster than the memory
  system moves their data.  Contention between cores emerges naturally
  because each block's DRAM traffic serialises through the shared
  :class:`~repro.memory.dram.DRAMModel` channel state.

Two components are registered:

* ``processor.MixCore`` — the block-stepped abstract core, driven by a
  named workload from :mod:`repro.processor.mix`.
* ``processor.TrafficGenerator`` — a simple request-level load/store
  issuer with a bounded outstanding window, for driving event-driven
  cache/bus/memory chains in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.component import Component, port, stat, state
from ..core.event import Event, IdSource
from ..core.registry import register
from ..core.units import SimTime
from ..memory.dram import DRAMModel, DRAMTech
from ..memory.events import MemRequest, MemResponse
from .mix import WorkloadSpec, workload as lookup_workload


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of the abstract core."""

    issue_width: int = 2
    freq_hz: float = 2.0e9
    #: memory-level parallelism: how many outstanding long-latency misses
    #: the core overlaps (MSHRs + OoO window effect).
    mlp: float = 4.0
    l1_latency_ps: SimTime = 1_500   # ~3 cycles at 2GHz
    l2_latency_ps: SimTime = 6_000   # ~12 cycles
    l3_latency_ps: SimTime = 18_000  # ~36 cycles

    def __post_init__(self):
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.freq_hz <= 0:
            raise ValueError("freq_hz must be positive")
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")


@dataclass
class BlockTiming:
    """Latency decomposition of one instruction block."""

    n_instructions: int
    compute_ps: SimTime        #: issue-limited time (no memory stalls)
    cache_stall_ps: SimTime    #: L2/L3 hit latency exposure
    dram_latency_ps: SimTime   #: DRAM latency exposure (MLP-divided)
    dram_bytes: int            #: demand traffic handed to the memory system
    dram_accesses: int

    @property
    def latency_bound_ps(self) -> SimTime:
        return self.compute_ps + self.cache_stall_ps + self.dram_latency_ps


class CoreTimingModel:
    """Computes per-block timing for (core config x workload) pairs."""

    def __init__(self, config: CoreConfig, spec: WorkloadSpec):
        self.config = config
        self.spec = spec

    def effective_issue(self) -> float:
        """Sustained instructions/cycle: harmonic blend of width and ILP.

        ``1/(1/W + 1/ILP)`` models the dependency stalls that keep wide
        cores from reaching their nominal width — the source of the
        sub-linear width scaling in Fig. 12 (8-wide only ~78% faster
        than 1-wide).
        """
        w = float(self.config.issue_width)
        ilp = self.spec.mix.ilp
        return 1.0 / (1.0 / w + 1.0 / ilp)

    def block(self, n_instructions: int,
              dram_tech: Optional[DRAMTech] = None,
              dram_row_hit_rate: float = 0.6) -> BlockTiming:
        """Timing decomposition for ``n_instructions`` of this workload."""
        cfg = self.config
        mix = self.spec.mix
        prof = self.spec.memory
        cycle_ps = 1e12 / cfg.freq_hz

        compute_cycles = n_instructions / self.effective_issue()
        compute_ps = int(round(compute_cycles * cycle_ps))

        misses = prof.miss_per_instr(mix.memory_fraction)
        levels = list(misses.keys())
        # An L1 miss pays the L2 latency, an L2 miss the L3 latency...
        next_latency = {
            "L1": cfg.l2_latency_ps,
            "L2": cfg.l3_latency_ps,
        }
        cache_stall = 0.0
        for level in levels:
            lat = next_latency.get(level)
            if lat is not None:
                cache_stall += misses[level] * n_instructions * lat
        cache_stall_ps = int(round(cache_stall / cfg.mlp))

        dram_accesses = int(round(
            prof.dram_accesses_per_instr(mix.memory_fraction) * n_instructions
        ))
        dram_bytes = int(round(prof.dram_bytes_per_instr * n_instructions))
        dram_latency_ps = 0
        if dram_tech is not None and dram_accesses:
            avg = (dram_row_hit_rate * dram_tech.t_cas_ps
                   + (1.0 - dram_row_hit_rate) * dram_tech.row_miss_latency_ps)
            dram_latency_ps = int(round(dram_accesses * avg / cfg.mlp))

        return BlockTiming(
            n_instructions=n_instructions,
            compute_ps=compute_ps,
            cache_stall_ps=cache_stall_ps,
            dram_latency_ps=dram_latency_ps,
            dram_bytes=dram_bytes,
            dram_accesses=dram_accesses,
        )

    def standalone_runtime_ps(self, n_instructions: int, dram: DRAMModel,
                              n_sharers: int = 1,
                              overlap_penalty: float = 0.3) -> SimTime:
        """Runtime estimate without a DES (used by quick sweeps).

        Partial-overlap roofline, matching :class:`MixCore`'s block
        completion rule: ``max(C, M) + k*min(C, M)`` where C is the
        latency-bound (compute + cache stall) time, M the DRAM transfer
        time at this core's bandwidth share, and k the fraction of the
        shorter component that the core fails to hide behind the longer
        (k=0 is a hard roofline, k=1 fully serial).
        """
        timing = self.block(n_instructions, dram.tech)
        bw = dram.peak_bandwidth / n_sharers
        bw_ps = int(round(timing.dram_bytes / bw * 1e12)) if timing.dram_bytes else 0
        c = timing.latency_bound_ps
        return max(c, bw_ps) + int(round(overlap_penalty * min(c, bw_ps)))


class BulkMemRequest(Event):
    """Aggregate DRAM traffic of one instruction block."""

    __slots__ = ("nbytes", "accesses", "req_id")

    # Checkpointable global id stream (repro.ckpt snapshots/restores it).
    _ids = IdSource("processor.bulk_req_id")

    def __init__(self, nbytes: int, accesses: int):
        self.nbytes = nbytes
        self.accesses = accesses
        self.req_id = next(BulkMemRequest._ids)


class BulkMemResponse(Event):
    __slots__ = ("req_id",)

    def __init__(self, req_id: int):
        self.req_id = req_id


@register("processor.MixCore")
class MixCore(Component):
    """Block-stepped abstract core running a statistical workload.

    Ports: ``mem`` — optional link to a bulk-capable memory
    (``memory.NodeMemory``); without it, DRAM traffic is assumed
    unconstrained (latency-only model).

    Parameters: ``workload`` (name in :data:`repro.processor.mix.WORKLOADS`),
    ``instructions`` (total to retire), ``block`` (instructions per DES
    block, default 100k), ``issue_width``, ``clock`` (e.g. "2GHz"),
    ``mlp``.

    Statistics: ``instructions``, ``blocks``, ``compute_ps``,
    ``stall_ps``, ``runtime_ps``.
    """

    mem = port("bulk DRAM traffic to the node memory (optional)",
               required=False, event=BulkMemResponse,
               handler="on_mem_response")

    _retired = state(0, gauge=True, doc="instructions retired so far")
    _block_started = state(0, doc="start time of the in-flight block")
    _pending_compute_done = state(0, doc="latency-bound finish time of "
                                         "the in-flight block")
    _current_block = state(None, doc="BlockTiming of the in-flight block")
    _advertised_tech = state(None, doc="DRAMTech advertised by the "
                                       "attached node memory at setup")

    s_instructions = stat.counter(doc="instructions retired")
    s_blocks = stat.counter(doc="blocks completed")
    s_compute = stat.counter("compute_ps", doc="issue-limited time")
    s_stall = stat.counter("stall_ps", doc="memory stall exposure")
    s_runtime = stat.counter("runtime_ps", doc="time to retire everything")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        spec_name = p.find_str("workload", "hpccg")
        self.spec = lookup_workload(spec_name)
        self.total_instructions = p.find_int("instructions",
                                             self.spec.instructions_per_iteration)
        self.block_size = p.find_int("block", 100_000)
        self.config = CoreConfig(
            issue_width=p.find_int("issue_width", 2),
            freq_hz=p.find_freq_hz("clock", "2GHz"),
            mlp=p.find_float("mlp", 4.0),
        )
        #: fraction of the shorter of (compute, memory) that is NOT hidden
        #: behind the longer — 0 would be a perfect roofline overlap.
        self.overlap_penalty = p.find_float("overlap_penalty", 0.3)
        self.model = CoreTimingModel(self.config, self.spec)
        self.register_as_primary()

    def on_setup(self) -> None:
        self._start_block()

    # -- block state machine ------------------------------------------------
    def _start_block(self) -> None:
        remaining = self.total_instructions - self._retired
        if remaining <= 0:
            self.s_runtime.add(self.now - self.s_runtime.count)
            self.primary_ok_to_end()
            return
        n = min(self.block_size, remaining)
        # DRAM latency exposure is computed by the memory side; locally we
        # account compute + cache stalls.
        timing = self.model.block(n, dram_tech=self._dram_tech())
        self._block_started = self.now
        self._current_block = timing
        compute_done_delay = timing.latency_bound_ps
        self._pending_compute_done = self.now + compute_done_delay
        if timing.dram_bytes and self.port_connected("mem"):
            self.send("mem", BulkMemRequest(timing.dram_bytes,
                                            timing.dram_accesses))
        else:
            self.schedule(compute_done_delay, self._finish_block, None)

    def _dram_tech(self) -> Optional[DRAMTech]:
        # The attached node memory advertises its technology during wiring
        # (see NodeMemory.on_setup); fall back to latency-free if absent.
        return self._advertised_tech

    def advertise_tech(self, tech: DRAMTech) -> None:
        self._advertised_tech = tech

    def on_mem_response(self, event) -> None:
        assert isinstance(event, BulkMemResponse)
        # Partial overlap: the block ends after the longer of compute and
        # memory, plus a penalty fraction of the shorter one (imperfect
        # compute/memory overlap in an in-order core).
        compute_elapsed = self._pending_compute_done - self._block_started
        memory_elapsed = self.now - self._block_started
        total = max(compute_elapsed, memory_elapsed) + int(round(
            self.overlap_penalty * min(compute_elapsed, memory_elapsed)
        ))
        finish_at = self._block_started + total
        self.schedule(max(0, finish_at - self.now), self._finish_block, None)

    def _finish_block(self, _payload) -> None:
        timing = self._current_block
        self._retired += timing.n_instructions
        self.s_instructions.add(timing.n_instructions)
        self.s_blocks.add()
        self.s_compute.add(timing.compute_ps)
        stall = (self.now - self._block_started) - timing.compute_ps
        self.s_stall.add(max(0, stall))
        self._start_block()

    @property
    def retired(self) -> int:
        return self._retired

    def runtime_ps(self) -> SimTime:
        return self.s_runtime.count


@register("processor.TrafficGenerator")
class TrafficGenerator(Component):
    """Request-level load/store issuer with a bounded outstanding window.

    Drives event-driven memory chains (Cache -> Bus -> MainMemory).
    Ports: ``mem``.  Parameters: ``requests`` (count), ``outstanding``
    (window), ``pattern`` ("stream" | "random"), ``footprint``
    (random-pattern address range, e.g. "16MB"), ``stride`` (stream
    pattern), ``write_fraction``, ``size`` (bytes per request), and
    ``base`` (address-space offset, so several generators can work
    disjoint regions).

    Statistics: ``issued``, ``completed``, ``latency_ps`` accumulator,
    ``runtime_ps``.
    """

    mem = port("MemRequest out / MemResponse in",
               event=MemResponse, handler="on_response")

    _issued = state(0, gauge=True, doc="requests issued so far")
    _inflight = state(dict, gauge=True, doc="req id -> issue time")

    s_issued = stat.counter(doc="requests issued")
    s_completed = stat.counter(doc="responses received")
    s_latency = stat.accumulator("latency_ps", doc="request round trip")
    s_runtime = stat.counter("runtime_ps", doc="time to drain everything")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.n_requests = p.find_int("requests", 1000)
        self.window = p.find_int("outstanding", 8)
        self.pattern = p.find_str("pattern", "stream")
        if self.pattern not in ("stream", "random"):
            raise ValueError(f"{name}: unknown pattern {self.pattern!r}")
        self.footprint = p.find_size_bytes("footprint", "16MB")
        self.base = p.find_size_bytes("base", 0)
        self.stride = p.find_int("stride", 64)
        self.write_fraction = p.find_float("write_fraction", 0.0)
        self.req_size = p.find_int("size", 64)
        self.register_as_primary()

    def on_setup(self) -> None:
        for _ in range(min(self.window, self.n_requests)):
            self._issue()

    def _next_addr(self) -> int:
        if self.pattern == "stream":
            return self.base + (self._issued * self.stride) % self.footprint
        return self.base + int(
            self.rng.integers(0, max(self.footprint // 8, 1))) * 8

    def _issue(self) -> None:
        addr = self._next_addr()
        is_write = bool(self.rng.random() < self.write_fraction)
        request = MemRequest(addr, self.req_size, is_write)
        self._inflight[request.req_id] = self.now
        self._issued += 1
        self.s_issued.add()
        self.send("mem", request)

    def on_response(self, event) -> None:
        assert isinstance(event, MemResponse)
        started = self._inflight.pop(event.req_id, None)
        if started is None:
            return
        self.s_completed.add()
        self.s_latency.add(self.now - started)
        if self._issued < self.n_requests:
            self._issue()
        elif not self._inflight:
            self.s_runtime.add(self.now - self.s_runtime.count)
            self.primary_ok_to_end()
