"""Synthetic memory-reference trace generation.

The cache experiments (Fig. 4) need address streams whose locality can
be dialled to match a workload phase.  We synthesise streams with a
two-knob model that maps directly onto cache behaviour:

* a set of *working sets* (resident regions) with geometric reuse — a
  reference goes to working set *i* with probability ``p_i``; a stream
  whose hot set fits in L1 yields high L1 hit rates, a hot set sized
  between L2 and L3 yields the L2-resident pattern, etc.;
* a *streaming* component: sequential one-touch traversal of a large
  region (never reused), which produces compulsory misses all the way
  to DRAM — the signature of sparse solvers.

``TraceSpec.for_workload`` derives a spec whose measured hit rates on a
standard hierarchy approximate a :class:`~repro.processor.mix.MemoryProfile`,
so the same workload library drives both the analytic and trace paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .mix import WorkloadSpec


@dataclass(frozen=True)
class Region:
    """A resident working-set region: ``size`` bytes touched with prob ``p``."""

    size_bytes: int
    probability: float
    base: int = 0  # assigned by TraceSpec


@dataclass
class TraceSpec:
    """Parameters of a synthetic reference stream."""

    regions: List[Region]
    #: probability a reference is part of the streaming (one-touch) component
    stream_probability: float = 0.0
    stream_stride: int = 64
    write_fraction: float = 0.25
    seed: int = 12345

    def __post_init__(self):
        total = sum(r.probability for r in self.regions) + self.stream_probability
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"region+stream probabilities sum to {total}, not 1")
        # Lay regions out disjointly, then the stream above them.
        base = 1 << 20
        placed = []
        for region in self.regions:
            placed.append(Region(region.size_bytes, region.probability, base))
            base += 2 * region.size_bytes  # pad to avoid aliasing
        self.regions = placed
        self._stream_base = base

    @classmethod
    def hot_cold(cls, hot_bytes: int, cold_bytes: int, hot_fraction: float = 0.9,
                 stream_probability: float = 0.0, **kwargs) -> "TraceSpec":
        """Convenience: a hot set + a cold set (+ optional stream)."""
        rest = 1.0 - hot_fraction - stream_probability
        if rest < -1e-9:
            raise ValueError("hot_fraction + stream_probability > 1")
        return cls(
            regions=[Region(hot_bytes, hot_fraction), Region(cold_bytes, max(rest, 0.0))],
            stream_probability=stream_probability,
            **kwargs,
        )

    def generate(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """``n`` references -> (addresses int64, is_write bool), vectorised."""
        rng = np.random.default_rng(self.seed)
        choices = np.empty(n, dtype=np.int64)
        selector = rng.random(n)
        edge = 0.0
        assigned = np.zeros(n, dtype=bool)
        for index, region in enumerate(self.regions):
            in_region = (~assigned) & (selector < edge + region.probability)
            edge += region.probability
            count = int(in_region.sum())
            if count:
                offsets = rng.integers(0, max(region.size_bytes // 8, 1),
                                       size=count) * 8
                choices[in_region] = region.base + offsets
            assigned |= in_region
        # Remaining references stream sequentially through fresh memory.
        remaining = ~assigned
        count = int(remaining.sum())
        if count:
            stream_offsets = np.arange(count, dtype=np.int64) * self.stream_stride
            choices[remaining] = self._stream_base + stream_offsets
        writes = rng.random(n) < self.write_fraction
        return choices, writes

    def references(self, n: int) -> Iterator[Tuple[int, bool]]:
        addrs, writes = self.generate(n)
        for a, w in zip(addrs.tolist(), writes.tolist()):
            yield a, w

    @classmethod
    def for_workload(cls, spec: WorkloadSpec, seed: int = 12345,
                     scale: int = 64) -> "TraceSpec":
        """Derive a trace whose hit rates approximate the workload profile.

        The conditional hit-rate targets (fraction of references
        *reaching* level *i* that hit there) are realised by three
        resident regions plus a one-touch stream::

            p1 = l1                      (L1-resident region)
            p2 = (1-l1) * l2             (L2-resident region)
            p3 = (1-l1) * (1-l2) * l3    (L3-resident region)
            stream = the rest            (compulsory misses to DRAM)

        Because p3 is typically well below 1%, a full-size L3-resident
        region (megabytes) would never warm up within an affordable
        trace length, so both the regions here and the measuring
        hierarchy (:func:`repro.miniapps.phases.cache_hit_rates`,
        ``SCALED_HIERARCHY``) are shrunk by ``scale`` (default 64x) —
        the standard scaled-cache simulation technique.  Set-associative
        behaviour is preserved; only capacities shrink.  Region sizes
        are chosen relative to the scaled levels: half of L1, half of
        L2, and 2x L2 (comfortably inside L3).
        """
        hit = spec.memory.hit_rates
        l1 = hit.get("L1", 0.9)
        l2 = hit.get("L2", 0.5)
        l3 = hit.get("L3", 0.5)
        p1 = l1
        p2 = (1.0 - l1) * l2
        p3 = (1.0 - l1) * (1.0 - l2) * l3
        p_stream = max(0.0, 1.0 - p1 - p2 - p3)
        l1_bytes = 32 * 1024 // scale
        l2_bytes = 256 * 1024 // scale
        regions = [
            Region(l1_bytes // 2, p1),  # L1-resident
            Region(l2_bytes // 2, p2),  # L2-resident, exceeds L1
            Region(l2_bytes * 2, p3),   # L3-resident, exceeds L2
        ]
        write_fraction = (
            spec.mix.store / spec.mix.memory_fraction
            if spec.mix.memory_fraction > 0 else 0.0
        )
        return cls(regions=regions, stream_probability=p_stream,
                   write_fraction=write_fraction, seed=seed)


def measure_hit_rates(trace: TraceSpec, hierarchy, n: int = 200_000,
                      warmup: int = 50_000) -> dict:
    """Run ``trace`` through a CacheHierarchy and return per-level hit rates.

    Warm-up references populate the caches but are excluded from the
    reported statistics.
    """
    addrs, writes = trace.generate(warmup + n)
    for a, w in zip(addrs[:warmup].tolist(), writes[:warmup].tolist()):
        hierarchy.access(a, w)
    hierarchy.reset_stats()
    for a, w in zip(addrs[warmup:].tolist(), writes[warmup:].tolist()):
        hierarchy.access(a, w)
    return hierarchy.hit_rates()
