"""Statistical workload descriptions: instruction mixes and memory profiles.

SST's abstract processor models are driven not by real binaries but by
statistical descriptions of a workload: the instruction-class mix, the
exploitable instruction-level parallelism, and the memory-reference
locality.  This module defines those descriptions and ships calibrated
profiles for the miniapps used in the paper's studies (HPCCG, Lulesh,
miniFE's FEA and solver phases, and the bandwidth-degradation apps).

The numbers are representative of published characterisations of the
Mantevo miniapps (sparse CG is bandwidth-bound with low ILP and ~4-8
bytes of DRAM traffic per instruction; FE assembly is compute-bound and
cache-resident; Lulesh sits in between) — the experiments depend on the
relative positioning, per the substitution catalogue in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of each instruction class (sum to 1) plus ILP.

    ``ilp`` is the mean number of independently issuable instructions —
    the ceiling on effective superscalar issue regardless of width.
    """

    fp: float
    int_alu: float
    load: float
    store: float
    branch: float
    ilp: float = 2.0

    def __post_init__(self):
        total = self.fp + self.int_alu + self.load + self.store + self.branch
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"instruction mix fractions sum to {total}, not 1")
        if self.ilp <= 0:
            raise ValueError("ilp must be positive")

    @property
    def memory_fraction(self) -> float:
        return self.load + self.store


@dataclass(frozen=True)
class MemoryProfile:
    """Per-level cache hit rates and DRAM traffic for one workload phase.

    ``hit_rates`` are conditional: the fraction of references *reaching*
    that level which hit there.  ``dram_bytes_per_instr`` is the demand
    the workload places on memory bandwidth (reads + writebacks).
    """

    hit_rates: Dict[str, float]  #: e.g. {"L1": 0.95, "L2": 0.6, "L3": 0.5}
    dram_bytes_per_instr: float
    line_size: int = 64

    def miss_per_instr(self, memory_fraction: float) -> Dict[str, float]:
        """Misses per instruction reaching each level, L1 outward."""
        reaching = memory_fraction
        out: Dict[str, float] = {}
        for level, hit in self.hit_rates.items():
            misses = reaching * (1.0 - hit)
            out[level] = misses
            reaching = misses
        return out

    def dram_accesses_per_instr(self, memory_fraction: float) -> float:
        reaching = memory_fraction
        for hit in self.hit_rates.values():
            reaching *= (1.0 - hit)
        return reaching


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete statistical workload: mix + memory behaviour + a name."""

    name: str
    mix: InstructionMix
    memory: MemoryProfile
    #: nominal instruction count for "one iteration" of the motif
    instructions_per_iteration: int = 1_000_000

    def scaled(self, factor: float) -> "WorkloadSpec":
        return replace(
            self,
            instructions_per_iteration=int(self.instructions_per_iteration * factor),
        )


# ----------------------------------------------------------------------
# calibrated workload library
# ----------------------------------------------------------------------

def _spec(name: str, mix: InstructionMix, hit_rates: Dict[str, float],
          dram_bpi: float, instrs: int = 1_000_000) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        mix=mix,
        memory=MemoryProfile(hit_rates=hit_rates, dram_bytes_per_instr=dram_bpi),
        instructions_per_iteration=instrs,
    )


#: Sparse CG solver (Trilinos-style): streaming sparse matvec dominates;
#: low ILP, poor L2/L3 reuse, heavy DRAM traffic per instruction.
HPCCG = _spec(
    "hpccg",
    InstructionMix(fp=0.30, int_alu=0.22, load=0.33, store=0.10, branch=0.05,
                   ilp=2.2),
    {"L1": 0.92, "L2": 0.45, "L3": 0.40},
    dram_bpi=5.0,
)

#: Lulesh hydrodynamics: more FP work per byte than CG, moderate reuse.
LULESH = _spec(
    "lulesh",
    InstructionMix(fp=0.42, int_alu=0.20, load=0.26, store=0.08, branch=0.04,
                   ilp=3.2),
    {"L1": 0.95, "L2": 0.60, "L3": 0.55},
    dram_bpi=4.0,
)

#: miniFE finite-element assembly phase: compute-bound, cache-resident
#: element operators; very little DRAM traffic (Fig. 3: FEA insensitive
#: to memory speed).
MINIFE_FEA = _spec(
    "minife_fea",
    InstructionMix(fp=0.48, int_alu=0.24, load=0.20, store=0.05, branch=0.03,
                   ilp=3.0),
    {"L1": 0.97, "L2": 0.85, "L3": 0.80},
    dram_bpi=0.30,
)

#: miniFE CG solve phase: same motif as HPCCG (that is the point of the
#: validation study — miniFE's solver tracks Charon's Krylov solver).
MINIFE_SOLVER = _spec(
    "minife_solver",
    InstructionMix(fp=0.31, int_alu=0.22, load=0.32, store=0.10, branch=0.05,
                   ilp=2.2),
    {"L1": 0.92, "L2": 0.46, "L3": 0.41},
    dram_bpi=4.8,
)

#: Charon FE assembly (drift-diffusion device physics): like miniFE's
#: FEA but with more irregular, pointer-chasing access — slightly worse
#: L1, much worse L2/L3 reuse (Fig. 4: miniFE L2/L3 hit rates are 3-6x
#: Charon's in the FEA phase).
CHARON_FEA = _spec(
    "charon_fea",
    InstructionMix(fp=0.44, int_alu=0.27, load=0.21, store=0.05, branch=0.03,
                   ilp=2.7),
    {"L1": 0.95, "L2": 0.28, "L3": 0.14},
    dram_bpi=0.80,
)

#: Charon Krylov solver (BiCGSTAB): bandwidth-bound like CG.
CHARON_SOLVER = _spec(
    "charon_solver",
    InstructionMix(fp=0.30, int_alu=0.23, load=0.32, store=0.10, branch=0.05,
                   ilp=2.1),
    {"L1": 0.90, "L2": 0.42, "L3": 0.38},
    dram_bpi=5.2,
)

#: CTH shock physics: large structured arrays streamed each step.
CTH = _spec(
    "cth",
    InstructionMix(fp=0.36, int_alu=0.24, load=0.28, store=0.09, branch=0.03,
                   ilp=2.5),
    {"L1": 0.94, "L2": 0.55, "L3": 0.50},
    dram_bpi=3.0,
)

#: SAGE adaptive-grid hydrodynamics: similar streaming profile.
SAGE = _spec(
    "sage",
    InstructionMix(fp=0.34, int_alu=0.25, load=0.28, store=0.09, branch=0.04,
                   ilp=2.4),
    {"L1": 0.93, "L2": 0.52, "L3": 0.48},
    dram_bpi=3.2,
)

#: xNOBEL hydrocode: compute-heavy with communication overlap.
XNOBEL = _spec(
    "xnobel",
    InstructionMix(fp=0.40, int_alu=0.23, load=0.25, store=0.08, branch=0.04,
                   ilp=2.6),
    {"L1": 0.95, "L2": 0.62, "L3": 0.55},
    dram_bpi=1.8,
)

WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (HPCCG, LULESH, MINIFE_FEA, MINIFE_SOLVER, CHARON_FEA,
                 CHARON_SOLVER, CTH, SAGE, XNOBEL)
}


def workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; options: {sorted(WORKLOADS)}"
        ) from None
