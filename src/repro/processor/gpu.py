"""Analytic SIMT GPU model (the Fermi substitute).

The miniFE CUDA study (paper §3.4, Fig. 8) turns on one mechanism:
*register spilling*.  The FE assembly kernel needs ~700+ bytes of
per-thread state but a Fermi thread gets at most 63 x 32-bit registers
(252 bytes); the spilled state overflows L1/L2 (which offer only ~96
bytes/thread at full occupancy) and lands in global memory, turning a
floating-point-intensive kernel into a bandwidth-bound one.

The model computes, per kernel launch:

* **occupancy** — threads resident per SM, limited by the register
  file, shared memory, and the hardware thread cap;
* **spill traffic** — per-thread state beyond the register budget
  spills; the portion that doesn't fit in the per-thread share of
  L1+L2 generates global-memory traffic on every reuse;
* **runtime** — a roofline over compute (FLOPs at the SM throughput)
  and memory (demand + spill traffic over device bandwidth), plus PCIe
  transfer time for host<->device movement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class GpuSpec:
    """Device parameters (defaults are NVIDIA Fermi M2090-class)."""

    name: str = "Fermi-M2090"
    n_sms: int = 16
    cores_per_sm: int = 32
    clock_hz: float = 1.3e9
    #: FMA counts as 2 flops/cycle/core
    flops_per_core_cycle: float = 2.0
    max_registers_per_thread: int = 63
    register_bytes: int = 4
    registers_per_sm: int = 32768
    max_threads_per_sm: int = 1536
    threads_per_block: int = 512
    l1_bytes_per_sm: int = 48 * 1024
    l2_bytes_total: int = 768 * 1024
    shared_bytes_per_sm: int = 48 * 1024
    mem_bandwidth_bytes_per_s: float = 177e9
    pcie_bandwidth_bytes_per_s: float = 6e9  # Gen-2 x16 effective

    @property
    def peak_flops(self) -> float:
        return (self.n_sms * self.cores_per_sm * self.flops_per_core_cycle
                * self.clock_hz)

    @property
    def register_budget_bytes(self) -> int:
        return self.max_registers_per_thread * self.register_bytes


FERMI_M2090 = GpuSpec()

#: A Kepler-generation what-if: the "future generations of NVIDIA
#: systems are expected to address some of these findings" paragraph of
#: §3.4 — more registers per thread and bigger L1/L2.
KEPLER_LIKE = GpuSpec(
    name="Kepler-like",
    max_registers_per_thread=255,
    registers_per_sm=65536,
    l1_bytes_per_sm=64 * 1024,
    l2_bytes_total=1536 * 1024,
    mem_bandwidth_bytes_per_s=250e9,
    n_sms=14,
    cores_per_sm=192,
    clock_hz=0.8e9,
)


@dataclass(frozen=True)
class KernelProfile:
    """Per-thread resource/traffic description of one kernel."""

    name: str
    flops_per_thread: float
    #: architectural state the kernel needs live per thread
    state_bytes_per_thread: int
    #: compulsory global-memory traffic per thread (inputs + outputs)
    mem_bytes_per_thread: float
    #: average reuses of each spilled byte (each reuse is a round trip)
    spill_reuse: float = 2.0
    shared_bytes_per_thread: int = 0
    #: registers the compiler actually allocates (None = as much state
    #: as fits the cap)
    registers_per_thread: Optional[int] = None

    def with_optimizations(self, state_reduction_bytes: int = 0,
                           shared_bytes: int = 0) -> "KernelProfile":
        """Apply the §3.4 tuning: shrink live state (symmetry, reordering)
        and move part of it to shared memory."""
        new_state = max(0, self.state_bytes_per_thread - state_reduction_bytes
                        - shared_bytes)
        return replace(self, state_bytes_per_thread=new_state,
                       shared_bytes_per_thread=self.shared_bytes_per_thread
                       + shared_bytes)


@dataclass
class KernelEstimate:
    """Model outputs for one kernel launch."""

    occupancy_threads_per_sm: int
    occupancy_fraction: float
    spill_bytes_per_thread: int
    cached_spill_bytes_per_thread: int
    spill_traffic_bytes: float
    compute_time_s: float
    memory_time_s: float
    runtime_s: float
    bandwidth_bound: bool


class GpuTimingModel:
    """Occupancy / spill / roofline estimator for one device."""

    def __init__(self, spec: GpuSpec = FERMI_M2090):
        self.spec = spec

    # -- occupancy -----------------------------------------------------
    def occupancy(self, kernel: KernelProfile) -> int:
        """Resident threads per SM under register/shared/thread limits."""
        spec = self.spec
        regs = kernel.registers_per_thread
        if regs is None:
            needed = kernel.state_bytes_per_thread // spec.register_bytes
            regs = min(spec.max_registers_per_thread, max(needed, 16))
        by_registers = spec.registers_per_sm // max(regs, 1)
        if kernel.shared_bytes_per_thread > 0:
            by_shared = spec.shared_bytes_per_sm // kernel.shared_bytes_per_thread
        else:
            by_shared = spec.max_threads_per_sm
        threads = min(by_registers, by_shared, spec.max_threads_per_sm)
        # Threads are granted in warps of 32.
        return max(32, (threads // 32) * 32)

    # -- spilling --------------------------------------------------------
    def spill_bytes(self, kernel: KernelProfile) -> int:
        """Per-thread state that does not fit the register budget."""
        return max(0, kernel.state_bytes_per_thread - self.spec.register_budget_bytes)

    def cache_share_per_thread(self, threads_per_sm: int) -> int:
        """L1+L2 bytes available per resident thread."""
        spec = self.spec
        l1 = spec.l1_bytes_per_sm // max(threads_per_sm, 1)
        l2 = spec.l2_bytes_total // max(threads_per_sm * spec.n_sms, 1)
        return l1 + l2

    # -- runtime ----------------------------------------------------------
    def estimate(self, kernel: KernelProfile, n_threads: int) -> KernelEstimate:
        spec = self.spec
        threads_per_sm = self.occupancy(kernel)
        occupancy_fraction = threads_per_sm / spec.max_threads_per_sm

        spill = self.spill_bytes(kernel)
        cache_share = self.cache_share_per_thread(threads_per_sm)
        cached_spill = min(spill, cache_share)
        global_spill = spill - cached_spill
        # Each globally spilled byte makes spill_reuse round trips (store
        # + reload) to DRAM.
        spill_traffic = global_spill * 2.0 * kernel.spill_reuse * n_threads

        compute_time = kernel.flops_per_thread * n_threads / spec.peak_flops
        # Low occupancy cannot cover even compute latency; derate linearly
        # below half occupancy (a standard first-order occupancy model).
        if occupancy_fraction < 0.5:
            compute_time /= max(occupancy_fraction / 0.5, 0.05)
        mem_traffic = kernel.mem_bytes_per_thread * n_threads + spill_traffic
        memory_time = mem_traffic / spec.mem_bandwidth_bytes_per_s
        runtime = max(compute_time, memory_time)
        return KernelEstimate(
            occupancy_threads_per_sm=threads_per_sm,
            occupancy_fraction=occupancy_fraction,
            spill_bytes_per_thread=spill,
            cached_spill_bytes_per_thread=cached_spill,
            spill_traffic_bytes=spill_traffic,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            runtime_s=runtime,
            bandwidth_bound=memory_time >= compute_time,
        )

    def pcie_time(self, nbytes: float) -> float:
        """Host<->device transfer time over PCIe."""
        return nbytes / self.spec.pcie_bandwidth_bytes_per_s
