"""Memory-trace files and trace-driven replay.

Trace-driven simulation is the classic way to carry a real workload's
memory behaviour into a simulator without the workload.  PySST uses a
deliberately simple line format (gzip-transparent) so traces are
greppable and diffable::

    #pysst-trace v1
    R 1a2b40 64
    W 1a2b80 8

* :func:`write_trace` / :func:`read_trace` — file I/O (``.gz`` handled
  by extension);
* :func:`record_trace` — capture a synthetic
  :class:`~repro.processor.trace.TraceSpec` stream to a file;
* :class:`TraceReplayCore` — a component replaying a trace through an
  event-driven memory hierarchy with a bounded outstanding window
  (registered as ``processor.TraceReplayCore``).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable, Iterator, Tuple, Union

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..memory.events import MemRequest, MemResponse
from .trace import TraceSpec

HEADER = "#pysst-trace v1"

#: (address, is_write, size)
TraceRecord = Tuple[int, bool, int]


class TraceFormatError(ValueError):
    """The file is not a valid pysst trace."""


def _open(path: Union[str, Path], mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"),
                                encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_trace(path: Union[str, Path],
                records: Iterable[TraceRecord]) -> int:
    """Write records; returns the number written."""
    count = 0
    with _open(path, "w") as handle:
        handle.write(HEADER + "\n")
        for addr, is_write, size in records:
            if addr < 0 or size <= 0:
                raise TraceFormatError(
                    f"invalid record (addr={addr}, size={size})"
                )
            kind = "W" if is_write else "R"
            handle.write(f"{kind} {addr:x} {size}\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records from a trace file; validates the header and rows."""
    with _open(path, "r") as handle:
        first = handle.readline().rstrip("\n")
        if first != HEADER:
            raise TraceFormatError(
                f"{path}: bad header {first!r} (expected {HEADER!r})"
            )
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("R", "W"):
                raise TraceFormatError(f"{path}:{line_no}: bad record {line!r}")
            try:
                addr = int(parts[1], 16)
                size = int(parts[2])
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_no}: bad numbers in {line!r}"
                ) from None
            if size <= 0:
                raise TraceFormatError(f"{path}:{line_no}: size must be > 0")
            yield addr, parts[0] == "W", size


def record_trace(spec: TraceSpec, n: int, path: Union[str, Path],
                 size: int = 8) -> int:
    """Capture ``n`` references of a synthetic trace spec to ``path``."""
    addrs, writes = spec.generate(n)
    return write_trace(path, ((int(a), bool(w), size)
                              for a, w in zip(addrs, writes)))


@register("processor.TraceReplayCore")
class TraceReplayCore(Component):
    """Replays a trace file through the ``mem`` port.

    Parameters: ``trace`` (path; ``.gz`` accepted), ``outstanding``
    (window, default 4), ``max_records`` (0 = whole file).

    Statistics: ``issued``, ``completed``, ``latency_ps``,
    ``runtime_ps``.
    """

    mem = port("MemRequest out / MemResponse in",
               event=MemResponse, handler="on_response")

    # The live file iterator is not picklable: it is excluded from
    # checkpoints and rebuilt from ``_issued`` after a restore.
    _iterator = state(None, save=False, reconstruct="_reopen_trace",
                      doc="live trace iterator")
    _issued = state(0, gauge=True, doc="records consumed from the trace")
    _inflight = state(dict, gauge=True, doc="req id -> issue time")
    _drained = state(False, doc="trace exhausted (or max_records hit)")

    s_issued = stat.counter(doc="requests issued")
    s_completed = stat.counter(doc="responses received")
    s_latency = stat.accumulator("latency_ps", doc="request round trip")
    s_runtime = stat.counter("runtime_ps", doc="time to drain the trace")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.trace_path = p.find_str("trace")
        self.window = p.find_int("outstanding", 4)
        self.max_records = p.find_int("max_records", 0)
        self.register_as_primary()

    def on_setup(self) -> None:
        self._iterator = read_trace(self.trace_path)
        for _ in range(self.window):
            if not self._issue():
                break
        if self._drained and not self._inflight:
            self.primary_ok_to_end()  # empty trace

    def _reopen_trace(self) -> None:
        """Re-open the trace and skip to the captured read position.

        ``_issued`` counts records consumed from the iterator, so
        re-reading the file and discarding that many records puts the
        stream exactly where the snapshot left it (trace files are
        immutable inputs; a changed file would desynchronise the
        replay exactly as it would any re-run).
        """
        self._iterator = read_trace(self.trace_path)
        for _ in range(self._issued):
            try:
                next(self._iterator)
            except StopIteration:
                break

    def _issue(self) -> bool:
        if self.max_records and self._issued >= self.max_records:
            self._drained = True
            return False
        try:
            addr, is_write, size = next(self._iterator)
        except StopIteration:
            self._drained = True
            return False
        request = MemRequest(addr, size, is_write)
        self._inflight[request.req_id] = self.now
        self._issued += 1
        self.s_issued.add()
        self.send("mem", request)
        return True

    def on_response(self, event) -> None:
        assert isinstance(event, MemResponse)
        started = self._inflight.pop(event.req_id, None)
        if started is None:
            return
        self.s_completed.add()
        self.s_latency.add(self.now - started)
        self._issue()
        if self._drained and not self._inflight:
            self.s_runtime.add(self.now - self.s_runtime.count)
            self.primary_ok_to_end()
