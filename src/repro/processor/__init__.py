"""PySST processor model library.

Abstract CPU cores driven by statistical workload descriptions
(:mod:`~repro.processor.mix`), synthetic memory-trace generation
(:mod:`~repro.processor.trace`), the block-stepped multi-issue core and
request-level traffic generator (:mod:`~repro.processor.core`), and the
analytic SIMT GPU model (:mod:`~repro.processor.gpu`).

Component types registered: ``processor.MixCore``,
``processor.TrafficGenerator``.
"""

from .core import (BlockTiming, BulkMemRequest, BulkMemResponse, CoreConfig,
                   CoreTimingModel, MixCore, TrafficGenerator)
from .gpu import (FERMI_M2090, KEPLER_LIKE, GpuSpec, GpuTimingModel,
                  KernelEstimate, KernelProfile)
from .mix import (HPCCG, LULESH, MINIFE_FEA, MINIFE_SOLVER, WORKLOADS,
                  InstructionMix, MemoryProfile, WorkloadSpec, workload)
from .trace import Region, TraceSpec, measure_hit_rates
from .tracefile import (TraceFormatError, TraceReplayCore, read_trace,
                        record_trace, write_trace)

__all__ = [
    "BlockTiming",
    "BulkMemRequest",
    "BulkMemResponse",
    "CoreConfig",
    "CoreTimingModel",
    "FERMI_M2090",
    "GpuSpec",
    "GpuTimingModel",
    "HPCCG",
    "InstructionMix",
    "KEPLER_LIKE",
    "KernelEstimate",
    "KernelProfile",
    "LULESH",
    "MINIFE_FEA",
    "MINIFE_SOLVER",
    "MemoryProfile",
    "MixCore",
    "Region",
    "TraceFormatError",
    "TraceReplayCore",
    "TraceSpec",
    "TrafficGenerator",
    "WORKLOADS",
    "WorkloadSpec",
    "measure_hit_rates",
    "read_trace",
    "record_trace",
    "workload",
    "write_trace",
]
