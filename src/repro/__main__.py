"""PySST command-line interface.

``python -m repro <subcommand>``:

* ``run <config.json>``     — load a serialized ConfigGraph and simulate
  it (sequentially or partitioned across ranks), printing statistics.
* ``info <config.json>``    — summarize a machine description without
  running it.
* ``topo``                  — generate a topology config (torus,
  fattree, dragonfly, crossbar) and write it as JSON, ready to be
  decorated with endpoints.
* ``sweep``                 — run the paper's design-space study
  (workload x issue width x memory technology) on a job pool, with
  optional per-point result caching.
* ``obs``                   — telemetry tools: merge per-rank streams
  into one Perfetto trace (``obs merge``), diagnose sync/load
  imbalance (``obs imbalance``), summarize a run's artifacts
  (``obs report``), or attach a live console view to a *running*
  simulation (``obs top``; pairs with ``run --serve-metrics``).
* ``ckpt``                  — engine snapshots (``repro.ckpt``):
  inspect a snapshot directory (``ckpt info``) or resume a run from
  one (``ckpt resume``), optionally on a different backend or rank
  count.

Examples::

    python -m repro topo --kind torus --dims 4x4x2 --locals 2 -o net.json
    python -m repro info net.json
    python -m repro run machine.json --max-time 1ms --ranks 4 --strategy bfs
    python -m repro run machine.json --ranks 4 --backend processes
    python -m repro sweep --workloads hpccg --backend processes --jobs 4
    python -m repro run net.json --ranks 4 --backend processes --metrics m.jsonl
    python -m repro obs merge m.jsonl && python -m repro obs imbalance m.jsonl
    python -m repro run machine.json --checkpoint-every 10us \
        --checkpoint-dir ckpts --max-time 25us
    python -m repro ckpt info ckpts/ckpt-0001
    python -m repro ckpt resume ckpts/ckpt-0001 --stats-json final.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import config as cfg
from .config import build, build_parallel, load, save
from .config.graph import ConfigError, ConfigGraph
from .core.registry import RegistryError


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _make_observability(args: argparse.Namespace, target):
    """Attach the repro.obs instruments requested on the command line.

    Returns ``(telemetry, profiler, chrome, progress, causal)`` — any
    of which may be None — already attached to ``target``.
    """
    telemetry = profiler = chrome = progress = causal = None
    if args.metrics:
        from .obs import TelemetryRecorder

        telemetry = TelemetryRecorder(args.metrics, args.manifest)
        telemetry.attach(target)
    if args.profile:
        from .obs import HandlerProfiler

        profiler = HandlerProfiler(target, sample_every=args.profile_sample)
    if args.trace_chrome:
        from .obs import ChromeTraceExporter

        chrome = ChromeTraceExporter(args.trace_chrome)
        chrome.attach(target)
    if args.progress:
        from .obs import ProgressReporter

        progress = ProgressReporter(max_time=args.max_time)
        progress.attach(target)
    if args.trace_causal:
        from .obs import CausalCapture

        # Shards sit next to the metrics stream when there is one, so
        # `obs critpath <metrics>` and `obs merge --flows` find them.
        causal = CausalCapture(args.metrics or args.config)
        causal.attach(target)
    return telemetry, profiler, chrome, progress, causal


def _make_live(args: argparse.Namespace, target, telemetry):
    """Attach the live plane (repro.obs.live) when the run asked for it.

    Returns ``(live, server, watchdog)``, all None when neither
    ``--serve-metrics``, ``--live-segment`` nor ``--watchdog`` was given.
    """
    if not (args.serve_metrics or args.live_segment
            or args.watchdog is not None):
        return None, None, None
    from .core import units
    from .obs.live import (LiveMetrics, MetricsServer, StallWatchdog,
                           default_segment_path, make_run_render)

    if args.live_segment:
        seg = args.live_segment
    elif args.metrics:
        seg = str(default_segment_path(args.metrics))
    else:
        seg = args.config + ".live"
    limit_ps = (units.parse_time(args.max_time, default_unit="ps")
                if args.max_time else 0)
    live = LiveMetrics(seg, watchdog_dumps=args.watchdog is not None,
                       limit_ps=limit_ps or 0)
    live.attach(target)
    print(f"live segment -> {seg}")
    server = None
    if args.serve_metrics:
        server = MetricsServer(args.serve_metrics, make_run_render(seg))
        server.start()
        print(f"serving metrics on {server.url}/metrics "
              f"(status: {server.url}/status)")
    watchdog = None
    if args.watchdog is not None:
        watchdog = StallWatchdog(seg, threshold_s=args.watchdog,
                                 abort=args.watchdog_abort,
                                 telemetry=telemetry, target=target)
        watchdog.start()
    return live, server, watchdog


def _finish_live(live, server, watchdog, result) -> None:
    if watchdog is not None:
        watchdog.stop()
    if live is not None:
        live.finalize(result)
    if server is not None:
        server.stop()


def _run_with_live(args, target, telemetry, run_fn):
    """Run ``run_fn()`` under the live plane; returns (result, exit_code).

    A watchdog abort surfaces as a clean error (exit 1) instead of a
    traceback; any other exception tears the live plane down and
    propagates.
    """
    live, server, watchdog = _make_live(args, target, telemetry)
    try:
        result = run_fn()
    except BaseException as exc:
        if watchdog is not None and watchdog.stalls:
            _finish_live(live, server, watchdog, None)
            stall = watchdog.stalls[-1]
            print(f"error: run aborted after rank {stall['rank']} stalled "
                  f"({stall['progress_age_s']:.1f}s without progress): "
                  f"{exc}", file=sys.stderr)
            return None, 1
        _finish_live(live, server, watchdog, None)
        raise
    _finish_live(live, server, watchdog, result)
    return result, 0


def _finish_observability(args, result, graph, telemetry, profiler, chrome,
                          progress, causal=None) -> None:
    if progress is not None:
        progress.detach()
    if causal is not None:
        causal.close()
        shards = causal.shard_paths()
        print(f"causal shards -> {causal.base}.causal.rank* "
              f"({len(shards)} shard(s); analyze with "
              f"'python -m repro obs critpath {causal.base}')")
    if telemetry is not None:
        invocation = {
            "argv": ["run", args.config],
            "max_time": args.max_time,
            "ranks": args.ranks,
            "strategy": args.strategy,
            "backend": args.backend,
            "transport": args.transport,
            "sync": args.sync,
            "queue": args.queue,
            "seed": args.seed,
        }
        telemetry.finalize(result, graph=graph, invocation=invocation)
        print(f"metrics -> {args.metrics}"
              + (f"; manifest -> {telemetry.manifest_path}"
                 if telemetry.manifest_path else ""))
    if chrome is not None:
        chrome.close()
        print(f"chrome trace -> {args.trace_chrome} "
              f"({len(chrome.events)} events; load in Perfetto)")
    if profiler is not None:
        profiler.detach()
        print(f"profile (hottest component: {profiler.hottest_component()}):")
        print(profiler.report(top=args.profile_top))


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        return _cmd_run_impl(args)
    except (ConfigError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_run_impl(args: argparse.Namespace) -> int:
    graph = load(args.config)
    warnings = graph.validate(resolve_types=True)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    ckpt_kwargs = {}
    if args.checkpoint_every:
        ckpt_kwargs = {"checkpoint_every": args.checkpoint_every,
                       "checkpoint_dir": args.checkpoint_dir}
    if args.ranks > 1:
        psim = build_parallel(graph, args.ranks, strategy=args.strategy,
                              seed=args.seed, queue=args.queue,
                              backend=args.backend,
                              transport=args.transport, sync=args.sync)
        instruments = _make_observability(args, psim)
        result, code = _run_with_live(
            args, psim, instruments[0],
            lambda: psim.run(max_time=args.max_time, **ckpt_kwargs))
        if result is None:
            return code
        _finish_observability(args, result, graph, *instruments)
        print(f"parallel run: {result.reason} at {result.end_time} ps; "
              f"{result.events_executed} events "
              f"({result.events_per_second:,.0f} events/s) "
              f"over {result.epochs} epochs "
              f"({result.remote_events} crossed ranks, "
              f"lookahead {result.lookahead} ps, "
              f"barrier wait {result.barrier_wait_seconds:.3f}s)")
        for path in psim.checkpoints_written:
            print(f"checkpoint -> {path}")
        values = psim.stat_values()
        if args.stats:
            for key, stat in sorted(psim.sync_stats().items()):
                print(f"_engine.{key}: {stat.value():.6g}")
    else:
        sim = build(graph, seed=args.seed, queue=args.queue)
        trace_log = None
        if args.trace:
            from .core.tracelog import EventTraceLog

            trace_log = EventTraceLog(sim, args.trace,
                                      component_filter=args.trace_filter)
        instruments = _make_observability(args, sim)
        result, code = _run_with_live(
            args, sim, instruments[0],
            lambda: sim.run(max_time=args.max_time, **ckpt_kwargs))
        if result is None:
            return code
        _finish_observability(args, result, graph, *instruments)
        if trace_log is not None:
            trace_log.detach()
            truncated = (f" (truncated: {trace_log.matched_events} matched, "
                         f"{trace_log.records_written} recorded)"
                         if trace_log.truncated else "")
            print(f"trace: {trace_log.matched_events} events "
                  f"(of {trace_log.total_events}) -> {args.trace}{truncated}")
        print(f"run: {result.reason} at {result.end_time} ps; "
              f"{result.events_executed} events "
              f"({result.events_per_second:,.0f} events/s)")
        for path in sim.checkpoints_written:
            print(f"checkpoint -> {path}")
        values = sim.stat_values()
        if args.stats:
            print(sim.stat_table())
    if args.stats_csv:
        from .analysis import ResultTable

        table = ResultTable(["statistic", "value"])
        for key in sorted(values):
            table.add_row(statistic=key, value=values[key])
        table.to_csv(args.stats_csv)
        print(f"statistics written to {args.stats_csv}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .dse import (PAPER_TECHNOLOGIES, PAPER_WIDTHS, PAPER_WORKLOADS,
                      sweep)

    workloads = args.workloads or list(PAPER_WORKLOADS)
    widths = args.widths or list(PAPER_WIDTHS)
    technologies = args.technologies or list(PAPER_TECHNOLOGIES)
    live_path = args.live_segment
    if args.serve_metrics and not live_path:
        live_path = "sweep.live"
    server = None
    if args.serve_metrics:
        from .obs.live import MetricsServer, make_sweep_render

        server = MetricsServer(args.serve_metrics,
                               make_sweep_render(live_path))
        server.start()
        print(f"serving fleet status on {server.url}/status "
              f"(metrics: {server.url}/metrics)")
    if live_path:
        print(f"sweep live segment -> {live_path}")
    try:
        result = sweep(workloads, widths, technologies,
                       backend=args.backend, jobs=args.jobs,
                       cache_dir=args.cache_dir,
                       instructions=args.instructions, seed=args.seed,
                       live_path=live_path)
    finally:
        if server is not None:
            server.stop()
    print(f"{len(result.points)} design points "
          f"({len(workloads)} workloads x {len(widths)} widths x "
          f"{len(technologies)} technologies)")
    header = (f"{'point':<28} {'runtime_ms':>10} {'power_w':>8} "
              f"{'perf/W':>12} {'perf/$':>12}")
    print(header)
    for (wl, w, tech), p in result.points.items():
        print(f"{wl + '/w' + str(w) + '/' + tech:<28} "
              f"{p.runtime_ps / 1e9:>10.3f} {p.total_power_w:>8.2f} "
              f"{p.perf_per_watt:>12.3e} {p.perf_per_dollar:>12.3e}")
    for wl in workloads:
        best = result.best("perf_per_watt", workload=wl)
        print(f"best perf/W for {wl}: {best.name}")
    if args.output:
        import dataclasses as _dc
        import json as _json

        payload = [dict(workload=wl, issue_width=w, technology=tech,
                        **_dc.asdict(p))
                   for (wl, w, tech), p in result.points.items()]
        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"design points written to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = load(args.config)
    print(graph.summary())
    latency = graph.min_latency()
    if latency is not None:
        print(f"minimum link latency: {latency} ps "
              "(= conservative lookahead ceiling)")
    warnings = graph.validate()
    for warning in warnings:
        print(f"warning: {warning}")
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    from .config.topology import (build_crossbar, build_dragonfly,
                                  build_fat_tree, build_torus)

    graph = ConfigGraph(args.name)
    if args.kind == "torus":
        dims = tuple(int(d) for d in args.dims.split("x"))
        topo = build_torus(graph, dims, locals_per_router=args.locals)
    elif args.kind == "fattree":
        topo = build_fat_tree(graph, leaves=args.leaves,
                              down_ports=args.locals, spines=args.spines)
    elif args.kind == "dragonfly":
        topo = build_dragonfly(graph, groups=args.groups,
                               routers_per_group=args.routers,
                               global_per_router=args.globals_,
                               locals_per_router=args.locals)
    elif args.kind == "crossbar":
        topo = build_crossbar(graph, args.ports)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.kind)
    save(graph, args.output)
    print(f"{topo.kind}: {len(topo.router_names)} routers, "
          f"{topo.num_endpoints} endpoints, {graph.num_links()} links "
          f"-> {args.output}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs.merge import RunArtifacts, merge_to_file, merge_trace

    if args.obs_command == "top":
        from .obs.live import SegmentError, run_top

        try:
            return run_top(args.target, interval_s=args.interval,
                           frames=args.frames, once=args.once)
        except (SegmentError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.obs_command == "merge":
        try:
            out = merge_to_file(args.metrics, args.output, flows=args.flows)
            artifacts = RunArtifacts(args.metrics)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot merge {args.metrics}: {exc}",
                  file=sys.stderr)
            return 1
        spans = sum(1 for records in artifacts.rank_records.values()
                    for r in records if r.get("kind") == "span")
        print(f"merged trace -> {out} "
              f"({artifacts.num_ranks} rank lanes + sync lane, "
              f"{len(artifacts.epochs)} epochs, "
              f"{len(artifacts.shards)} shards, {spans} handler spans; "
              f"load in Perfetto)")
        return 0

    if args.obs_command == "critpath":
        from .obs.critpath import CausalAnalysisError, analyze

        try:
            path = analyze(args.metrics, component=args.component)
        except (CausalAnalysisError, OSError, ValueError, KeyError) as exc:
            print(f"error: cannot analyze causal shards for "
                  f"{args.metrics}: {exc}", file=sys.stderr)
            return 1
        print(path.render(top=args.top))
        if args.json:
            import json as _json

            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(path.as_dict(), fh, indent=2)
            print(f"critical-path report -> {args.json}")
        return 0

    if args.obs_command == "imbalance":
        from .obs.imbalance import analyze_artifacts

        try:
            report = analyze_artifacts(RunArtifacts(args.metrics))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot analyze {args.metrics}: {exc}",
                  file=sys.stderr)
            return 1
        print(report.report(top=args.top))
        if args.json:
            import json as _json

            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(report.as_dict(), fh, indent=2)
            print(f"imbalance report -> {args.json}")
        return 0

    if args.obs_command == "partition-advise":
        from .obs.advise import AdviseError, advise_to_file

        try:
            advice, out = advise_to_file(
                args.metrics, args.config, args.output,
                num_ranks=args.ranks, original_strategy=args.original_strategy,
                strategy=args.strategy)
        except (AdviseError, ConfigError, OSError, ValueError,
                KeyError) as exc:
            print(f"error: cannot advise on {args.metrics}: {exc}",
                  file=sys.stderr)
            return 1
        print(advice.report())
        print(f"advised assignment -> {out} "
              f"(resume with 'ckpt resume <snapshot> --assignment {out}')")
        return 0

    if args.obs_command == "report":
        from .obs.imbalance import analyze_artifacts

        try:
            artifacts = RunArtifacts(args.metrics)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read {args.metrics}: {exc}",
                  file=sys.stderr)
            return 1
        start = artifacts.run_start
        end = artifacts.run_end or {}
        run = end.get("run", {})
        print(f"metrics stream: {artifacts.metrics_path} "
              f"({len(artifacts.main)} parent records)")
        print(f"backend: {artifacts.backend}  ranks: {artifacts.num_ranks}  "
              f"mode: {start.get('mode', '?')}  "
              f"schema: {start.get('schema', '?')}")
        sync = artifacts.sync_info
        if sync:
            print(f"sync: {sync.get('strategy')} "
                  f"(lookahead {sync.get('lookahead_ps')} ps)")
        if run:
            events = run.get("events_executed", 0)
            wall = run.get("wall_seconds") or 0
            rate = events / wall if wall else 0.0
            print(f"run: {run.get('reason')} at {run.get('end_time_ps')} ps; "
                  f"{events} events in {wall:.3f}s ({rate:,.0f} events/s)")
        if artifacts.shards:
            print("rank shards:")
            for rank, shard in sorted(artifacts.shards.items()):
                count = len(artifacts.rank_records.get(rank, []))
                print(f"  rank {rank}: {shard} ({count} records)")
        elif artifacts.rank_records:
            inline = sum(len(v) for v in artifacts.rank_records.values())
            print(f"rank records: {inline} (inline, shipped over pipes)")
        epochs = artifacts.epochs
        if epochs:
            report = analyze_artifacts(artifacts)
            critical = report.critical_rank
            print(f"epochs: {len(epochs)}  "
                  f"imbalance factor: {report.imbalance_factor:.3f}  "
                  f"events skew: {report.events_skew:.3f}"
                  + (f"  critical rank: {critical.rank}" if critical else ""))
        manifest_path = artifacts.metrics_path.with_name(
            artifacts.metrics_path.name + ".manifest.json")
        if manifest_path.exists():
            import json as _json

            print(f"manifest: {manifest_path}")
            try:
                with open(manifest_path, encoding="utf-8") as fh:
                    manifest = _json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"error: malformed manifest {manifest_path}: {exc}",
                      file=sys.stderr)
                return 1
            ckpt = manifest.get("checkpoint") or {}
            restored = ckpt.get("restored_from")
            if restored:
                print(f"checkpoint lineage: restored from "
                      f"{restored.get('snapshot', '?')} at "
                      f"{restored.get('sim_time_ps', '?')} ps "
                      f"({restored.get('mode', '?')} restore)")
            written = ckpt.get("written") or []
            if written:
                print(f"snapshots written: {len(written)}")
                for path in written:
                    print(f"  {path}")
            live_seg = (manifest.get("telemetry") or {}).get("live_segment")
            if live_seg:
                print(f"live segment: {live_seg}")
        return 0

    raise AssertionError(args.obs_command)  # pragma: no cover


def _cmd_ckpt(args: argparse.Namespace) -> int:
    import json as _json

    from .ckpt import CheckpointError, restore, snapshot_info

    if args.ckpt_command == "info":
        try:
            info = snapshot_info(args.snapshot, verify=not args.no_verify)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(_json.dumps(info, indent=2, sort_keys=True))
        return 0 if info.get("intact", True) else 1

    if args.ckpt_command == "resume":
        assignment = None
        if args.assignment:
            try:
                with open(args.assignment, encoding="utf-8") as fh:
                    payload = _json.load(fh)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read assignment {args.assignment}: "
                      f"{exc}", file=sys.stderr)
                return 1
            # Accept both the partition-advise advice document and a
            # bare {component: rank} map.
            assignment = payload.get("assignment") \
                if isinstance(payload, dict) and "assignment" in payload \
                else payload
            if not isinstance(assignment, dict) or not assignment:
                print(f"error: {args.assignment} holds no assignment map",
                      file=sys.stderr)
                return 1
        try:
            sim = restore(args.snapshot, backend=args.backend,
                          ranks=args.ranks, queue=args.queue,
                          assignment=assignment,
                          transport=args.transport, sync=args.sync)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        ckpt_kwargs = {}
        if args.checkpoint_every:
            ckpt_kwargs = {"checkpoint_every": args.checkpoint_every,
                           "checkpoint_dir": args.checkpoint_dir}
        result = sim.run(max_time=args.max_time, **ckpt_kwargs)
        lineage = sim.checkpoint_lineage or {}
        print(f"resumed {args.snapshot} "
              f"(snapshot at {lineage.get('sim_time_ps', '?')} ps, "
              f"{lineage.get('mode', '?')} restore): "
              f"{result.reason} at {result.end_time} ps; "
              f"{result.events_executed} events")
        for path in sim.checkpoints_written:
            print(f"checkpoint -> {path}")
        values = sim.stat_values()
        if args.stats:
            for key in sorted(values):
                print(f"{key}: {values[key]:.6g}")
        if args.stats_json:
            payload = {
                "reason": result.reason,
                "end_time_ps": result.end_time,
                "stats": {key: values[key] for key in sorted(values)},
            }
            with open(args.stats_json, "w", encoding="utf-8") as fh:
                _json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"final stats -> {args.stats_json}")
        close = getattr(sim, "close", None)
        if close is not None:
            close()
        return 0

    raise AssertionError(args.ckpt_command)  # pragma: no cover


def _cmd_component(args: argparse.Namespace) -> int:
    import json as _json

    from .core.describe import describe_component
    from .core.registry import (RegistryError, load_all_libraries,
                                registered_types, resolve)

    if args.component_command == "list":
        load_all_libraries()
        for type_name in registered_types():
            cls = resolve(type_name)
            summary = (cls.__doc__ or "").strip().split("\n")[0]
            if args.json:
                print(_json.dumps({"type": type_name, "summary": summary}))
            else:
                print(f"{type_name:32s} {summary}")
        return 0

    if args.component_command == "describe":
        try:
            cls = resolve(args.type)
        except RegistryError:
            # One line, no traceback, no registry dump — the catalogue
            # is a `component list` away.
            print(f"error: unknown component type {args.type!r} "
                  f"(run 'python -m repro component list' for the "
                  f"catalogue)", file=sys.stderr)
            return 1
        info = describe_component(cls)
        if args.json:
            print(_json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"{info['type_name'] or info['class']}: {info['summary']}")
        if info["ports"]:
            print("ports:")
            for spec in info["ports"]:
                flags = "required" if spec["required"] else "optional"
                event = f" event={spec['event']}" if spec["event"] else ""
                print(f"  {spec['name']:20s} {flags}{event}  {spec['doc']}")
        if info["slots"]:
            print("slots:")
            for spec in info["slots"]:
                choices = (f" choices={','.join(spec['choices'])}"
                           if spec["choices"] else "")
                default = (f" default={spec['default']}"
                           if spec["default"] else "")
                print(f"  {spec['name']:20s} base={spec['base']}"
                      f"{default}{choices}  {spec['doc']}")
        if info["params"]:
            print("params:")
            for spec in info["params"]:
                choices = (f" choices={','.join(map(str, spec['choices']))}"
                           if spec["choices"] else "")
                print(f"  {spec['name']:20s} {spec['kind']:8s} "
                      f"default={spec['default']!r}{choices}  {spec['doc']}")
        if info["legacy_ports"]:
            print("legacy ports (undeclared):")
            for name, doc in sorted(info["legacy_ports"].items()):
                print(f"  {name:20s} {doc}")
        if info["state"]:
            print("state:")
            for spec in info["state"]:
                marks = []
                if not spec["save"]:
                    marks.append("transient")
                if spec["reconstruct"]:
                    marks.append(f"reconstruct={spec['reconstruct']}")
                if spec["gauge"]:
                    marks.append("gauge")
                suffix = f" [{', '.join(marks)}]" if marks else ""
                print(f"  {spec['name']:20s} {spec['doc']}{suffix}")
        if info["stats"]:
            print("statistics:")
            for spec in info["stats"]:
                print(f"  {spec['name']:20s} {spec['kind']:12s} {spec['doc']}")
        return 0

    raise AssertionError(args.component_command)  # pragma: no cover


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.split("\n\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a serialized ConfigGraph")
    run.add_argument("config")
    run.add_argument("--max-time", default=None,
                     help='simulated-time limit, e.g. "1ms"')
    run.add_argument("--ranks", type=int, default=1,
                     help="parallel simulation ranks (1 = sequential)")
    run.add_argument("--strategy", default="linear",
                     choices=["linear", "round_robin", "bfs", "kl"])
    run.add_argument("--backend", default="serial",
                     choices=["serial", "threads", "processes"],
                     help="execution substrate for --ranks > 1 "
                          "(processes = one forked worker per rank)")
    run.add_argument("--transport", default="pipe", choices=["pipe", "shm"],
                     help="processes-backend data plane: pickled pipe "
                          "batches, or shared-memory rings with the flat "
                          "event codec (control stays on pipes)")
    run.add_argument("--sync", default="conservative",
                     choices=["conservative", "adaptive"],
                     help="epoch-window strategy: fixed lookahead, or "
                          "adaptive widening from per-rank earliest-send "
                          "bounds (same deterministic exchange order)")
    run.add_argument("--queue", default="heap", choices=["heap", "binned"])
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--stats", action="store_true",
                     help="print the full statistics table")
    run.add_argument("--stats-csv", default=None,
                     help="write statistic values to a CSV file")
    run.add_argument("--trace", default=None,
                     help="write a per-event trace log to this file "
                          "(sequential runs only)")
    run.add_argument("--trace-filter", default="*",
                     help="glob on component/port names for --trace")
    run.add_argument("--metrics", default=None,
                     help="write a JSONL telemetry stream to this file "
                          "(a run manifest lands next to it)")
    run.add_argument("--manifest", default=None,
                     help="run-manifest JSON path (default: "
                          "<metrics>.manifest.json when --metrics is set)")
    run.add_argument("--profile", action="store_true",
                     help="profile wall-time per component/handler/event "
                          "type and print the hot-components table")
    run.add_argument("--profile-top", type=_positive_int, default=15,
                     help="rows to show in the profile table")
    run.add_argument("--profile-sample", type=_positive_int, default=1,
                     help="time every Nth event (1 = all)")
    run.add_argument("--trace-chrome", default=None,
                     help="export handler spans + rank epochs as a "
                          "Chrome/Perfetto trace-event JSON file")
    run.add_argument("--progress", action="store_true",
                     help="print periodic progress/ETA lines to stderr")
    run.add_argument("--trace-causal", action="store_true",
                     help="capture event provenance into per-rank "
                          "causal shards (<metrics>.causal.rank<k>); "
                          "analyze with 'obs critpath' or render "
                          "cross-rank arrows with 'obs merge --flows'")
    run.add_argument("--checkpoint-every", default=None,
                     help='snapshot the engine every interval of '
                          'simulated time, e.g. "10us" (repro.ckpt)')
    run.add_argument("--checkpoint-dir", default="checkpoints",
                     help="directory receiving ckpt-NNNN snapshot "
                          "subdirectories (default: checkpoints)")
    run.add_argument("--serve-metrics", default=None, metavar="[HOST]:PORT",
                     help="serve live run metrics over HTTP: OpenMetrics "
                          "at /metrics, JSON at /status (repro.obs.live)")
    run.add_argument("--live-segment", default=None,
                     help="live shared-memory segment path (default: "
                          "<metrics>.live, or <config>.live without "
                          "--metrics); readable with 'obs top' while the "
                          "run is in flight")
    run.add_argument("--watchdog", type=float, default=None, metavar="SECONDS",
                     help="flag ranks making no progress for this many "
                          "seconds; hung processes-backend workers get a "
                          "stack dump via faulthandler")
    run.add_argument("--watchdog-abort", action="store_true",
                     help="terminate a stalled rank after dumping its "
                          "stack (the run fails with diagnostics)")
    run.set_defaults(func=_cmd_run)

    swp = sub.add_parser("sweep", help="run the design-space study")
    swp.add_argument("--workloads", nargs="+", default=None,
                     help="miniapp workloads (default: the paper's pair)")
    swp.add_argument("--widths", nargs="+", type=int, default=None,
                     help="issue widths (default: 1 2 4 8)")
    swp.add_argument("--technologies", nargs="+", default=None,
                     help="memory technologies (default: the paper's trio)")
    swp.add_argument("--instructions", type=_positive_int, default=2_000_000,
                     help="instructions simulated per design point")
    swp.add_argument("--seed", type=int, default=1)
    swp.add_argument("--backend", default="serial",
                     choices=["serial", "threads", "processes"],
                     help="job-pool substrate for evaluating points")
    swp.add_argument("--jobs", type=_positive_int, default=None,
                     help="pool width (default: usable CPU count)")
    swp.add_argument("--cache-dir", default=None,
                     help="cache per-point results here, keyed by the "
                          "config-graph hash (reruns load instead of "
                          "simulating)")
    swp.add_argument("-o", "--output", default=None,
                     help="write the design-point grid to a JSON file")
    swp.add_argument("--serve-metrics", default=None, metavar="[HOST]:PORT",
                     help="serve fleet-wide point status and ETA over "
                          "HTTP while the sweep runs")
    swp.add_argument("--live-segment", default=None,
                     help="sweep live segment path (default: sweep.live "
                          "when --serve-metrics is set)")
    swp.set_defaults(func=_cmd_sweep)

    info = sub.add_parser("info", help="summarize a machine description")
    info.add_argument("config")
    info.set_defaults(func=_cmd_info)

    topo = sub.add_parser("topo", help="generate a topology config")
    topo.add_argument("--kind", required=True,
                      choices=["torus", "fattree", "dragonfly", "crossbar"])
    topo.add_argument("--name", default="machine")
    topo.add_argument("-o", "--output", default="topology.json")
    topo.add_argument("--dims", default="4x4", help="torus: e.g. 4x4x4")
    topo.add_argument("--locals", type=int, default=2,
                      help="endpoints per router / leaf down-ports")
    topo.add_argument("--leaves", type=int, default=4)
    topo.add_argument("--spines", type=int, default=2)
    topo.add_argument("--groups", type=int, default=5)
    topo.add_argument("--routers", type=int, default=2)
    topo.add_argument("--globals", dest="globals_", type=int, default=2)
    topo.add_argument("--ports", type=int, default=8, help="crossbar ports")
    topo.set_defaults(func=_cmd_topo)

    obs = sub.add_parser("obs", help="post-hoc telemetry tools for "
                                     "recorded runs (--metrics streams)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    merge = obs_sub.add_parser(
        "merge", help="merge per-rank telemetry shards into one "
                      "Perfetto trace (rank lanes + sync lane)")
    merge.add_argument("metrics", help="the run's JSONL metrics stream; "
                                       "rank shards are found next to it")
    merge.add_argument("-o", "--output", default=None,
                       help="merged trace path "
                            "(default: <metrics>.trace.json)")
    merge.add_argument("--flows", action="store_true",
                       help="draw cross-rank causal edges as Perfetto "
                            "flow arrows (needs a --trace-causal run)")
    merge.set_defaults(func=_cmd_obs)
    crit = obs_sub.add_parser(
        "critpath", help="walk the causal shards backward from run end "
                         "and report the simulated critical path, "
                         "latency attribution and cut edges")
    crit.add_argument("metrics", help="the base the causal shards sit "
                                      "next to (the run's --metrics "
                                      "path, or its config path when "
                                      "run without --metrics)")
    crit.add_argument("--component", default=None,
                      help="anchor the walk at this component's latest "
                           "event instead of the run end")
    crit.add_argument("--top", type=_positive_int, default=40,
                      help="path events to print (the newest; "
                           "default: 40)")
    crit.add_argument("--json", default=None,
                      help="also write the full report as JSON here "
                           "(path, by_class, cut_edges)")
    crit.set_defaults(func=_cmd_obs)
    imb = obs_sub.add_parser(
        "imbalance", help="diagnose sync/load imbalance: straggler "
                          "attribution, busy vs barrier, events skew")
    imb.add_argument("metrics")
    imb.add_argument("--top", type=_positive_int, default=5,
                     help="worst epochs to list")
    imb.add_argument("--json", default=None,
                     help="also write the full report as JSON here")
    imb.set_defaults(func=_cmd_obs)
    rep = obs_sub.add_parser(
        "report", help="summarize a recorded run's artifacts")
    rep.add_argument("metrics")
    rep.set_defaults(func=_cmd_obs)
    adv = obs_sub.add_parser(
        "partition-advise",
        help="fold a recorded run's straggler attribution and cut-edge "
             "traffic into a profile-guided repartition; writes an "
             "assignment JSON for 'ckpt resume --assignment'")
    adv.add_argument("metrics", help="the run's JSONL metrics stream")
    adv.add_argument("--config", required=True,
                     help="the serialized ConfigGraph the run was built "
                          "from (same file passed to 'run')")
    adv.add_argument("-o", "--output", default=None,
                     help="advice JSON path "
                          "(default: <metrics>.advice.json)")
    adv.add_argument("--ranks", type=int, default=None,
                     help="target rank count (default: the run's)")
    adv.add_argument("--strategy", default="kl",
                     choices=["linear", "round_robin", "bfs", "kl"],
                     help="partition strategy for the advised split "
                          "(default: kl, the refining one)")
    adv.add_argument("--original-strategy", default=None,
                     choices=["linear", "round_robin", "bfs", "kl"],
                     help="strategy the recorded run used (default: "
                          "from the run manifest)")
    adv.set_defaults(func=_cmd_obs)
    top = obs_sub.add_parser(
        "top", help="live console view of a running simulation "
                    "(attaches read-only to its .live segment)")
    top.add_argument("target",
                     help="segment file, metrics path, or run directory "
                          "(newest *.live inside is used)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (for scripting)")
    top.add_argument("--frames", type=_positive_int, default=None,
                     help="exit after this many frames")
    top.set_defaults(func=_cmd_obs)

    comp = sub.add_parser("component", help="inspect the component "
                                            "catalogue (declared ports, "
                                            "state, statistics)")
    comp_sub = comp.add_subparsers(dest="component_command", required=True)
    clist = comp_sub.add_parser(
        "list", help="list every registered component type")
    clist.add_argument("--json", action="store_true",
                       help="one JSON object per line")
    clist.set_defaults(func=_cmd_component)
    cdesc = comp_sub.add_parser(
        "describe", help="show a component's declared ports, state, "
                         "statistics and lifecycle hooks")
    cdesc.add_argument("type", help='registered type name, e.g. '
                                    '"memory.Cache"')
    cdesc.add_argument("--json", action="store_true",
                       help="machine-readable description")
    cdesc.set_defaults(func=_cmd_component)

    ckpt = sub.add_parser("ckpt", help="inspect or resume engine "
                                       "snapshots (repro.ckpt)")
    ckpt_sub = ckpt.add_subparsers(dest="ckpt_command", required=True)
    cinfo = ckpt_sub.add_parser(
        "info", help="print a snapshot's manifest summary as JSON "
                     "(verifies shard checksums unless --no-verify)")
    cinfo.add_argument("snapshot", help="snapshot directory (ckpt-NNNN)")
    cinfo.add_argument("--no-verify", action="store_true",
                       help="skip shard checksum verification")
    cinfo.set_defaults(func=_cmd_ckpt)
    cres = ckpt_sub.add_parser(
        "resume", help="restore a snapshot and run it to completion; "
                       "same rank count resumes bit-identically, a "
                       "different --ranks/--backend repartitions")
    cres.add_argument("snapshot", help="snapshot directory (ckpt-NNNN)")
    cres.add_argument("--max-time", default=None,
                      help='simulated-time limit, e.g. "1ms"')
    cres.add_argument("--ranks", type=int, default=None,
                      help="restore onto this many ranks (default: the "
                           "snapshot's own layout)")
    cres.add_argument("--backend", default=None,
                      choices=["serial", "threads", "processes"],
                      help="execution substrate (default: the "
                           "snapshot's)")
    cres.add_argument("--queue", default=None, choices=["heap", "binned"],
                      help="event-queue kind (default: the snapshot's)")
    cres.add_argument("--assignment", default=None,
                      help="component->rank assignment JSON (a "
                           "partition-advise advice file or a bare map); "
                           "forces a pinned repartition restore")
    cres.add_argument("--transport", default="pipe",
                      choices=["pipe", "shm"],
                      help="processes-backend exchange transport "
                           "(default: pipe)")
    cres.add_argument("--sync", default="conservative",
                      choices=["conservative", "adaptive"],
                      help="epoch-window strategy (default: conservative)")
    cres.add_argument("--stats", action="store_true",
                      help="print final statistic values")
    cres.add_argument("--stats-json", default=None,
                      help="write {reason, end_time_ps, stats} JSON "
                           "here (for scripted comparison)")
    cres.add_argument("--checkpoint-every", default=None,
                      help="keep snapshotting the resumed run at this "
                           "interval")
    cres.add_argument("--checkpoint-dir", default="checkpoints",
                      help="directory for further snapshots")
    cres.set_defaults(func=_cmd_ckpt)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
