"""PySST command-line interface.

``python -m repro <subcommand>``:

* ``run <config.json>``     — load a serialized ConfigGraph and simulate
  it (sequentially or partitioned across ranks), printing statistics.
* ``info <config.json>``    — summarize a machine description without
  running it.
* ``topo``                  — generate a topology config (torus,
  fattree, dragonfly, crossbar) and write it as JSON, ready to be
  decorated with endpoints.
* ``sweep``                 — run the paper's design-space study
  (workload x issue width x memory technology) on a job pool, with
  optional per-point result caching.

Examples::

    python -m repro topo --kind torus --dims 4x4x2 --locals 2 -o net.json
    python -m repro info net.json
    python -m repro run machine.json --max-time 1ms --ranks 4 --strategy bfs
    python -m repro run machine.json --ranks 4 --backend processes
    python -m repro sweep --workloads hpccg --backend processes --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import config as cfg
from .config import build, build_parallel, load, save
from .config.graph import ConfigGraph


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _make_observability(args: argparse.Namespace, target):
    """Attach the repro.obs instruments requested on the command line.

    Returns ``(telemetry, profiler, chrome, progress)`` — any of which
    may be None — already attached to ``target``.
    """
    telemetry = profiler = chrome = progress = None
    if args.metrics:
        from .obs import TelemetryRecorder

        telemetry = TelemetryRecorder(args.metrics, args.manifest)
        telemetry.attach(target)
    if args.profile:
        from .obs import HandlerProfiler

        profiler = HandlerProfiler(target, sample_every=args.profile_sample)
    if args.trace_chrome:
        from .obs import ChromeTraceExporter

        chrome = ChromeTraceExporter(args.trace_chrome)
        chrome.attach(target)
    if args.progress:
        from .obs import ProgressReporter

        progress = ProgressReporter(max_time=args.max_time)
        progress.attach(target)
    return telemetry, profiler, chrome, progress


def _finish_observability(args, result, graph, telemetry, profiler, chrome,
                          progress) -> None:
    if progress is not None:
        progress.detach()
    if telemetry is not None:
        invocation = {
            "argv": ["run", args.config],
            "max_time": args.max_time,
            "ranks": args.ranks,
            "strategy": args.strategy,
            "backend": args.backend,
            "queue": args.queue,
            "seed": args.seed,
        }
        telemetry.finalize(result, graph=graph, invocation=invocation)
        print(f"metrics -> {args.metrics}"
              + (f"; manifest -> {telemetry.manifest_path}"
                 if telemetry.manifest_path else ""))
    if chrome is not None:
        chrome.close()
        print(f"chrome trace -> {args.trace_chrome} "
              f"({len(chrome.events)} events; load in Perfetto)")
    if profiler is not None:
        profiler.detach()
        print(f"profile (hottest component: {profiler.hottest_component()}):")
        print(profiler.report(top=args.profile_top))


def _cmd_run(args: argparse.Namespace) -> int:
    graph = load(args.config)
    warnings = graph.validate(resolve_types=True)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.ranks > 1:
        psim = build_parallel(graph, args.ranks, strategy=args.strategy,
                              seed=args.seed, queue=args.queue,
                              backend=args.backend)
        instruments = _make_observability(args, psim)
        result = psim.run(max_time=args.max_time)
        _finish_observability(args, result, graph, *instruments)
        print(f"parallel run: {result.reason} at {result.end_time} ps; "
              f"{result.events_executed} events "
              f"({result.events_per_second:,.0f} events/s) "
              f"over {result.epochs} epochs "
              f"({result.remote_events} crossed ranks, "
              f"lookahead {result.lookahead} ps, "
              f"barrier wait {result.barrier_wait_seconds:.3f}s)")
        values = psim.stat_values()
        if args.stats:
            for key, stat in sorted(psim.sync_stats().items()):
                print(f"_engine.{key}: {stat.value():.6g}")
    else:
        sim = build(graph, seed=args.seed, queue=args.queue)
        trace_log = None
        if args.trace:
            from .core.tracelog import EventTraceLog

            trace_log = EventTraceLog(sim, args.trace,
                                      component_filter=args.trace_filter)
        instruments = _make_observability(args, sim)
        result = sim.run(max_time=args.max_time)
        _finish_observability(args, result, graph, *instruments)
        if trace_log is not None:
            trace_log.detach()
            truncated = (f" (truncated: {trace_log.matched_events} matched, "
                         f"{trace_log.records_written} recorded)"
                         if trace_log.truncated else "")
            print(f"trace: {trace_log.matched_events} events "
                  f"(of {trace_log.total_events}) -> {args.trace}{truncated}")
        print(f"run: {result.reason} at {result.end_time} ps; "
              f"{result.events_executed} events "
              f"({result.events_per_second:,.0f} events/s)")
        values = sim.stat_values()
        if args.stats:
            print(sim.stat_table())
    if args.stats_csv:
        from .analysis import ResultTable

        table = ResultTable(["statistic", "value"])
        for key in sorted(values):
            table.add_row(statistic=key, value=values[key])
        table.to_csv(args.stats_csv)
        print(f"statistics written to {args.stats_csv}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .dse import (PAPER_TECHNOLOGIES, PAPER_WIDTHS, PAPER_WORKLOADS,
                      sweep)

    workloads = args.workloads or list(PAPER_WORKLOADS)
    widths = args.widths or list(PAPER_WIDTHS)
    technologies = args.technologies or list(PAPER_TECHNOLOGIES)
    result = sweep(workloads, widths, technologies,
                   backend=args.backend, jobs=args.jobs,
                   cache_dir=args.cache_dir,
                   instructions=args.instructions, seed=args.seed)
    print(f"{len(result.points)} design points "
          f"({len(workloads)} workloads x {len(widths)} widths x "
          f"{len(technologies)} technologies)")
    header = (f"{'point':<28} {'runtime_ms':>10} {'power_w':>8} "
              f"{'perf/W':>12} {'perf/$':>12}")
    print(header)
    for (wl, w, tech), p in result.points.items():
        print(f"{wl + '/w' + str(w) + '/' + tech:<28} "
              f"{p.runtime_ps / 1e9:>10.3f} {p.total_power_w:>8.2f} "
              f"{p.perf_per_watt:>12.3e} {p.perf_per_dollar:>12.3e}")
    for wl in workloads:
        best = result.best("perf_per_watt", workload=wl)
        print(f"best perf/W for {wl}: {best.name}")
    if args.output:
        import dataclasses as _dc
        import json as _json

        payload = [dict(workload=wl, issue_width=w, technology=tech,
                        **_dc.asdict(p))
                   for (wl, w, tech), p in result.points.items()]
        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"design points written to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = load(args.config)
    print(graph.summary())
    latency = graph.min_latency()
    if latency is not None:
        print(f"minimum link latency: {latency} ps "
              "(= conservative lookahead ceiling)")
    warnings = graph.validate()
    for warning in warnings:
        print(f"warning: {warning}")
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    from .config.topology import (build_crossbar, build_dragonfly,
                                  build_fat_tree, build_torus)

    graph = ConfigGraph(args.name)
    if args.kind == "torus":
        dims = tuple(int(d) for d in args.dims.split("x"))
        topo = build_torus(graph, dims, locals_per_router=args.locals)
    elif args.kind == "fattree":
        topo = build_fat_tree(graph, leaves=args.leaves,
                              down_ports=args.locals, spines=args.spines)
    elif args.kind == "dragonfly":
        topo = build_dragonfly(graph, groups=args.groups,
                               routers_per_group=args.routers,
                               global_per_router=args.globals_,
                               locals_per_router=args.locals)
    elif args.kind == "crossbar":
        topo = build_crossbar(graph, args.ports)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.kind)
    save(graph, args.output)
    print(f"{topo.kind}: {len(topo.router_names)} routers, "
          f"{topo.num_endpoints} endpoints, {graph.num_links()} links "
          f"-> {args.output}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__.split("\n\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a serialized ConfigGraph")
    run.add_argument("config")
    run.add_argument("--max-time", default=None,
                     help='simulated-time limit, e.g. "1ms"')
    run.add_argument("--ranks", type=int, default=1,
                     help="parallel simulation ranks (1 = sequential)")
    run.add_argument("--strategy", default="linear",
                     choices=["linear", "round_robin", "bfs", "kl"])
    run.add_argument("--backend", default="serial",
                     choices=["serial", "threads", "processes"],
                     help="execution substrate for --ranks > 1 "
                          "(processes = one forked worker per rank)")
    run.add_argument("--queue", default="heap", choices=["heap", "binned"])
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--stats", action="store_true",
                     help="print the full statistics table")
    run.add_argument("--stats-csv", default=None,
                     help="write statistic values to a CSV file")
    run.add_argument("--trace", default=None,
                     help="write a per-event trace log to this file "
                          "(sequential runs only)")
    run.add_argument("--trace-filter", default="*",
                     help="glob on component/port names for --trace")
    run.add_argument("--metrics", default=None,
                     help="write a JSONL telemetry stream to this file "
                          "(a run manifest lands next to it)")
    run.add_argument("--manifest", default=None,
                     help="run-manifest JSON path (default: "
                          "<metrics>.manifest.json when --metrics is set)")
    run.add_argument("--profile", action="store_true",
                     help="profile wall-time per component/handler/event "
                          "type and print the hot-components table")
    run.add_argument("--profile-top", type=_positive_int, default=15,
                     help="rows to show in the profile table")
    run.add_argument("--profile-sample", type=_positive_int, default=1,
                     help="time every Nth event (1 = all)")
    run.add_argument("--trace-chrome", default=None,
                     help="export handler spans + rank epochs as a "
                          "Chrome/Perfetto trace-event JSON file")
    run.add_argument("--progress", action="store_true",
                     help="print periodic progress/ETA lines to stderr")
    run.set_defaults(func=_cmd_run)

    swp = sub.add_parser("sweep", help="run the design-space study")
    swp.add_argument("--workloads", nargs="+", default=None,
                     help="miniapp workloads (default: the paper's pair)")
    swp.add_argument("--widths", nargs="+", type=int, default=None,
                     help="issue widths (default: 1 2 4 8)")
    swp.add_argument("--technologies", nargs="+", default=None,
                     help="memory technologies (default: the paper's trio)")
    swp.add_argument("--instructions", type=_positive_int, default=2_000_000,
                     help="instructions simulated per design point")
    swp.add_argument("--seed", type=int, default=1)
    swp.add_argument("--backend", default="serial",
                     choices=["serial", "threads", "processes"],
                     help="job-pool substrate for evaluating points")
    swp.add_argument("--jobs", type=_positive_int, default=None,
                     help="pool width (default: usable CPU count)")
    swp.add_argument("--cache-dir", default=None,
                     help="cache per-point results here, keyed by the "
                          "config-graph hash (reruns load instead of "
                          "simulating)")
    swp.add_argument("-o", "--output", default=None,
                     help="write the design-point grid to a JSON file")
    swp.set_defaults(func=_cmd_sweep)

    info = sub.add_parser("info", help="summarize a machine description")
    info.add_argument("config")
    info.set_defaults(func=_cmd_info)

    topo = sub.add_parser("topo", help="generate a topology config")
    topo.add_argument("--kind", required=True,
                      choices=["torus", "fattree", "dragonfly", "crossbar"])
    topo.add_argument("--name", default="machine")
    topo.add_argument("-o", "--output", default="topology.json")
    topo.add_argument("--dims", default="4x4", help="torus: e.g. 4x4x4")
    topo.add_argument("--locals", type=int, default=2,
                      help="endpoints per router / leaf down-ports")
    topo.add_argument("--leaves", type=int, default=4)
    topo.add_argument("--spines", type=int, default=2)
    topo.add_argument("--groups", type=int, default=5)
    topo.add_argument("--routers", type=int, default=2)
    topo.add_argument("--globals", dest="globals_", type=int, default=2)
    topo.add_argument("--ports", type=int, default=8, help="crossbar ports")
    topo.set_defaults(func=_cmd_topo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
