"""Per-rank engine state capture and restore (the `repro.ckpt` core).

One rank's :class:`~repro.core.simulation.Simulation` is captured as two
pieces:

* a **meta** dict of plain values — time counters, the queue's insertion
  sequence, clock and arbiter scheduling state, registered statistic
  values, :class:`~repro.core.event.IdSource` counters, the engine RNG
  state.  Plain-picklable; statistic objects are pickled *by value*
  here, which snapshots their numbers.
* a **linked** blob — component state dicts plus the pending event
  records.  Both are full of references into the live object graph
  (bound-method handlers, ports, clocks, registered statistics), so the
  blob is pickled with a :class:`pickle.Pickler` whose ``persistent_id``
  maps every engine-owned object to a symbolic reference that a restore
  resolves against the *rebuilt* simulation:

  ====================  ==================================================
  reference             resolved to
  ====================  ==================================================
  ``("comp", name)``    the component of that name
  ``("subc", c, a)``    the subcomponent filling component ``c``'s slot ``a``
  ``("port", c, p)``    component ``c``'s port ``p``
  ``("stat", c, s)``    component ``c``'s registered statistic ``s``
  ``("clock", n, i)``   the ``i``-th registered clock named ``n``
  ``("arb", *key)``     the clock arbiter with that (period, priority,
                        residue) key
  ``("estat", name)``   the engine-level statistic of that name
  ``("lep", c, p)``     the link endpoint attached to port ``(c, p)``
  ``("linkobj", c, p)`` the link attached to port ``(c, p)``
  ``("simobj", rank)``  the rank's Simulation object
  ====================  ==================================================

  Bound methods (``port.deliver``, ``clock._tick``, a component callback
  held by a :class:`~repro.core.event.CallbackEvent`) pickle through the
  same machinery: pickle reduces them to ``getattr(owner, name)`` and
  the owner is intercepted by ``persistent_id``.

Identity that is *not* engine-owned — event payloads, component-private
containers, numpy generators — pickles by value, which is exactly the
deep copy a snapshot wants.

Restore resolution is **exact** when the target simulation has the same
rank layout as the capture (every reference resolves 1:1, queue records
and sequence counters are adopted verbatim, and the resumed run is
bit-identical to the uninterrupted one).  When the rank count changed,
:func:`make_resolver` runs in *union* mode over all target rank
simulations; references that cannot survive re-partitioning (a
superseded arbiter chain) resolve to the :data:`DROPPED` sentinel and
the restore layer discards the records that carry them.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.event import EventRecord, IdSource
from ..core.simulation import Simulation
from ..core.statistics import adopt_state

#: bump on incompatible shard layout changes (manifest schema is separate)
STATE_VERSION = 1


class CheckpointError(RuntimeError):
    """A snapshot could not be written, validated, or restored."""


class _Dropped:
    """Sentinel for references that cannot survive re-partitioning.

    Attribute access returns the sentinel itself so that pickle's
    bound-method reconstruction (``getattr(owner, name)``) succeeds;
    the restore layer then recognises and discards any record whose
    handler resolved here.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> "_Dropped":
        return self

    def __call__(self, *args: Any, **kwargs: Any) -> None:  # pragma: no cover
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<ckpt dropped reference>"


DROPPED = _Dropped()


def is_dropped(obj: Any) -> bool:
    """True when ``obj`` is (or is bound to) the dropped-reference sentinel."""
    if isinstance(obj, _Dropped):
        return True
    return isinstance(getattr(obj, "__self__", None), _Dropped)


# ----------------------------------------------------------------------
# reference table (capture side)
# ----------------------------------------------------------------------

def build_ref_table(sims: Sequence[Simulation]) -> Dict[int, Tuple]:
    """``id(obj) -> symbolic ref`` for every engine-owned object.

    Component/port/clock/statistic references are unambiguous across
    ranks (component names are globally unique; clock names are
    component-scoped).  ``("arb", ...)``, ``("estat", ...)`` and
    ``("simobj", ...)`` entries are per-rank — when several sims are
    tabled together (the parallel pending-send blob) the last rank wins,
    which is acceptable because model events never carry those objects.
    """
    table: Dict[int, Tuple] = {}
    for sim in sims:
        table[id(sim)] = ("simobj", sim.rank)
        for name, comp in sim._components.items():
            table[id(comp)] = ("comp", name)
            for attr in getattr(type(comp), "_slot_specs", {}):
                sub = comp.__dict__.get(attr)
                if sub is not None:
                    # Slot subcomponents keep identity across a restore
                    # (Component.capture_state snapshots their state
                    # through a marker, never the object itself), so
                    # events holding one — or a bound method of one —
                    # resolve to the rebuilt instance.
                    table[id(sub)] = ("subc", name, attr)
            for pname, port in comp._ports.items():
                table[id(port)] = ("port", name, pname)
                endpoint = port.endpoint
                if endpoint is not None:
                    table[id(endpoint)] = ("lep", name, pname)
                    table[id(endpoint.link)] = ("linkobj", name, pname)
            for sname, stat in comp.stats.all().items():
                table[id(stat)] = ("stat", name, sname)
        counts: Dict[str, int] = {}
        for clock in sim._clocks:
            ordinal = counts.get(clock.name, 0)
            counts[clock.name] = ordinal + 1
            table[id(clock)] = ("clock", clock.name, ordinal)
        for key, arbiter in sim._arbiters.items():
            table[id(arbiter)] = ("arb",) + tuple(key)
        for sname, stat in sim.engine_stats.all().items():
            table[id(stat)] = ("estat", sname)
    return table


class _RefPickler(pickle.Pickler):
    def __init__(self, file: io.BytesIO, table: Dict[int, Tuple]):
        super().__init__(file, pickle.HIGHEST_PROTOCOL)
        self._table = table

    def persistent_id(self, obj: Any) -> Optional[Tuple]:
        return self._table.get(id(obj))


def dump_refs(sims: Sequence[Simulation], obj: Any) -> bytes:
    """Pickle ``obj`` with engine objects replaced by symbolic refs."""
    buffer = io.BytesIO()
    try:
        _RefPickler(buffer, build_ref_table(sims)).dump(obj)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise CheckpointError(
            f"component or event state is not snapshotable: {exc}.  "
            f"Override Component.capture_state() to return a picklable "
            f"stand-in (see docs/CHECKPOINT.md)."
        ) from exc
    return buffer.getvalue()


# ----------------------------------------------------------------------
# reference resolution (restore side)
# ----------------------------------------------------------------------

def make_resolver(sims: Sequence[Simulation],
                  rank_hint: Optional[int] = None) -> Callable[[Tuple], Any]:
    """A ``persistent_load`` resolver against the rebuilt simulations.

    ``rank_hint`` pins per-rank references (arbiters, engine stats, the
    Simulation object) to one target rank — pass it for exact-mode
    restores; union mode (re-partitioning) leaves it None and resolves
    those references to the dropped sentinel / the first sim instead.
    """
    comps: Dict[str, Any] = {}
    for sim in sims:
        comps.update(sim._components)
    by_rank = {sim.rank: sim for sim in sims}
    clock_groups: Dict[Tuple[str, int], Any] = {}
    for sim in sims:
        counts: Dict[str, int] = {}
        for clock in sim._clocks:
            ordinal = counts.get(clock.name, 0)
            counts[clock.name] = ordinal + 1
            clock_groups[(clock.name, ordinal)] = clock
    hinted = by_rank.get(rank_hint) if rank_hint is not None else None

    def resolve(ref: Tuple) -> Any:
        kind = ref[0]
        try:
            if kind == "comp":
                return comps[ref[1]]
            if kind == "subc":
                sub = comps[ref[1]].__dict__.get(ref[2])
                if sub is None:
                    raise KeyError(ref[2])
                return sub
            if kind == "port":
                return comps[ref[1]].port(ref[2])
            if kind == "stat":
                return comps[ref[1]].stats.all()[ref[2]]
            if kind == "clock":
                return clock_groups[(ref[1], ref[2])]
            if kind == "lep":
                return comps[ref[1]].port(ref[2]).endpoint
            if kind == "linkobj":
                return comps[ref[1]].port(ref[2]).endpoint.link
            if kind == "arb":
                key = tuple(ref[1:])
                if hinted is not None:
                    arbiter = hinted._arbiters.get(key)
                    if arbiter is None:
                        raise KeyError(key)
                    return arbiter
                return DROPPED  # chain records are re-armed, not restored
            if kind == "estat":
                sim = hinted if hinted is not None else sims[0]
                stat = sim.engine_stats.all().get(ref[1])
                return stat if stat is not None else DROPPED
            if kind == "simobj":
                if hinted is not None:
                    return hinted
                return by_rank.get(ref[1], sims[0])
        except (KeyError, AttributeError) as exc:
            raise CheckpointError(
                f"snapshot reference {ref!r} does not resolve against the "
                f"rebuilt simulation — the snapshot does not match this "
                f"configuration graph"
            ) from exc
        raise CheckpointError(f"unknown snapshot reference kind {ref!r}")

    return resolve


class _RefUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, resolver: Callable[[Tuple], Any]):
        super().__init__(file)
        self._resolver = resolver

    def persistent_load(self, ref: Tuple) -> Any:
        return self._resolver(ref)


def load_refs(blob: bytes, sims: Sequence[Simulation],
              rank_hint: Optional[int] = None) -> Any:
    """Unpickle a :func:`dump_refs` blob against rebuilt simulations."""
    return _RefUnpickler(io.BytesIO(blob), make_resolver(sims, rank_hint)).load()


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------

def capture_sim_state(sim: Simulation,
                      send_seq: Optional[int] = None) -> Dict[str, Any]:
    """One rank's complete engine state, ready for :func:`snapshot.write_shard`.

    Must be called where the live rank lives (the forked worker under
    the processes backend) and only at a quiescent point: an epoch
    boundary for parallel runs, between kernel segments for sequential
    ones.  ``send_seq`` is the rank's cross-rank send sequence counter
    (None for sequential simulations).
    """
    queue = sim._queue
    clock_index = {id(clock): i for i, clock in enumerate(sim._clocks)}
    meta: Dict[str, Any] = {
        "version": STATE_VERSION,
        "rank": sim.rank,
        "num_ranks": sim.num_ranks,
        "now": sim.now,
        "last_event_time": sim.last_event_time,
        "events_executed": sim._events_executed,
        "queue_seq": queue.seq,
        "send_seq": send_seq,
        "engine_rng": (sim._engine_rng.bit_generator.state
                       if sim._engine_rng is not None else None),
        "id_sources": IdSource.capture_all(),
        "clocks": [clock.capture_state() for clock in sim._clocks],
        "arbiters": [(list(key), arbiter.capture_state(clock_index))
                     for key, arbiter in sim._arbiters.items()],
        # Statistic objects pickle by value in the meta payload, which
        # snapshots their numbers; identity-preserving references inside
        # component state live in the linked blob instead.
        "stats": {name: dict(comp.stats.all())
                  for name, comp in sim._components.items()},
        "engine_stats": dict(sim.engine_stats.all()),
    }
    linked = {
        "components": {name: comp.capture_state()
                       for name, comp in sim._components.items()},
        "records": [(r.time, r.priority, r.seq, r.handler, r.event)
                    for r in queue.snapshot_records()],
    }
    return {"meta": meta, "linked": dump_refs([sim], linked)}


# ----------------------------------------------------------------------
# exact-mode restore (same rank layout)
# ----------------------------------------------------------------------

def restore_sim_state(sim: Simulation, state: Dict[str, Any]) -> Dict[str, Any]:
    """Apply a captured shard to a freshly rebuilt, set-up ``sim``.

    Exact mode only: the target must have the same component set, clock
    registrations and arbiter keys as the capture (guaranteed when both
    were built from the same config graph with the same partition).
    Everything the rebuild's ``setup()`` pushed or initialised is
    superseded: the queue is replaced wholesale (records and sequence
    counter verbatim), clocks/arbiters adopt the captured scheduling
    state, statistics adopt captured values in place, and the exit
    protocol is recomputed from the restored component flags.  Returns
    the shard's meta dict so the orchestrator can fold rank-level values
    (send sequence, IdSource counters) upward.
    """
    meta = state["meta"]
    # Statistics first — Component.restore_state overrides may touch
    # live collectors (docstring contract).
    for comp_name, stats in meta["stats"].items():
        comp = sim._components.get(comp_name)
        if comp is None:
            raise CheckpointError(
                f"snapshot carries component {comp_name!r} which the "
                f"rebuilt simulation does not have"
            )
        group = comp.stats.all()
        for stat_name, remote in stats.items():
            local = group.get(stat_name)
            if local is None:
                comp.stats._register(stat_name, remote)
            else:
                adopt_state(local, remote)
    for name, remote in meta["engine_stats"].items():
        local = sim.engine_stats.all().get(name)
        if local is None:
            sim.engine_stats._register(name, remote)
        else:
            adopt_state(local, remote)
    linked = load_refs(state["linked"], [sim], rank_hint=sim.rank)
    for comp_name, comp_state in linked["components"].items():
        sim._components[comp_name].restore_state(comp_state)
    # Every component's state is in place (reconstruct= hooks included);
    # fire the on_restore lifecycle hook in registration order — slot
    # subcomponents first, so the parent hook sees restored policies.
    for comp in sim._components.values():
        for attr in getattr(type(comp), "_slot_specs", {}):
            sub = comp.__dict__.get(attr)
            if sub is not None:
                sub.on_restore()
        comp.on_restore()
    clock_states = meta["clocks"]
    if len(clock_states) != len(sim._clocks):
        raise CheckpointError(
            f"snapshot captured {len(clock_states)} clocks, rebuilt "
            f"simulation registered {len(sim._clocks)} — the snapshot "
            f"does not match this configuration"
        )
    for clock, cstate in zip(sim._clocks, clock_states):
        clock.restore_state(cstate)
    for key_list, astate in meta["arbiters"]:
        arbiter = sim._arbiters.get(tuple(key_list))
        if arbiter is None:
            raise CheckpointError(
                f"snapshot captured clock-arbiter {tuple(key_list)!r} which "
                f"the rebuilt simulation did not create (clock-arbiter "
                f"mode mismatch?)"
            )
        arbiter.restore_state(astate, sim._clocks)
    records = [EventRecord(t, p, s, h, e)
               for (t, p, s, h, e) in linked["records"]]
    sim._queue.restore_records(records, meta["queue_seq"])
    sim.now = meta["now"]
    sim.last_event_time = meta["last_event_time"]
    sim._events_executed = meta["events_executed"]
    if meta["engine_rng"] is not None:
        sim.engine_rng.bit_generator.state = meta["engine_rng"]
    recompute_exit_state(sim)
    sim._stop_requested = False
    return meta


def recompute_exit_state(sim: Simulation) -> None:
    """Rebuild the exit-protocol aggregates from restored component flags."""
    sim._primary_components = {
        name for name, comp in sim._components.items() if comp._is_primary
    }
    sim._primaries_pending = sum(
        1 for comp in sim._components.values()
        if comp._is_primary and not comp._ok_to_end
    )


def merge_id_sources(metas: Sequence[Dict[str, Any]]) -> None:
    """Restore IdSource counters from one or more shard metas.

    Ranks that ran in separate processes advanced the same global
    counter independently, so the maximum across shards wins — that
    preserves uniqueness against every id held by restored in-flight
    state.  (Id *values* never influence event ordering or statistics,
    so this is also safe for exact-mode restores of process snapshots.)
    """
    merged: Dict[str, int] = {}
    for meta in metas:
        for name, value in meta.get("id_sources", {}).items():
            merged[name] = max(merged.get(name, 0), value)
    IdSource.restore_all(merged)
