"""Restoring snapshots: exact resume, re-partitioned resume, replay.

Two restore modes, chosen from the snapshot's layout versus the target:

**Exact** — the target has the same rank layout as the capture (always
true for sequential snapshots restored sequentially; for parallel
snapshots, when the rank count matches — the component→rank assignment
recorded in the manifest is re-pinned, so even a different partition
strategy rebuilds the captured layout).  Queue records, sequence
counters, clock/arbiter chains and RNG streams are adopted verbatim and
the resumed run is **bit-identical** to the uninterrupted one: same
``(time, priority, seq)`` event order, same statistics.  The execution
*backend* is free — a snapshot taken under ``processes`` restores under
``serial`` and vice versa, because rank state is backend-independent by
construction.

**Re-partition** — the rank count changed (including parallel → 1).
Component state, statistics, pending events and cross-rank sends are
re-homed onto the new layout; clock tick chains are re-armed rather
than restored (their queue records are partition-local), and each new
rank's queue is rebuilt by a deterministic merge sort.  The resumed run
is *stats-equivalent* (models see the same events at the same times)
but not bit-identical — sequence numbers and engine counters restart.

Also here: :func:`checkpointed_run`, the sequential engine's segmented
run loop behind ``Simulation.run(checkpoint_every=...)``, and
:func:`replay`, the restore-and-trace debugging helper.
"""

from __future__ import annotations

import copy
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core import units
from ..core.clock import _ArbiterTickEvent, _ClockTickEvent
from ..core.component import Component
from ..core.event import CallbackEvent, EventRecord
from ..core.kernel import RunContext, kernel_run
from ..core.link import Port
from ..core.parallel import ParallelSimulation
from ..core.simulation import RunResult, Simulation, SimulationError
from ..core.statistics import adopt_state
from .snapshot import load_manifest, read_shard, snapshot
from .state import (CheckpointError, is_dropped, load_refs, merge_id_sources,
                    recompute_exit_state, restore_sim_state)

_TICK_EVENTS = (_ClockTickEvent, _ArbiterTickEvent)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def restore(path: Union[str, Path], *,
            backend: Optional[str] = None,
            ranks: Optional[int] = None,
            queue: Optional[str] = None,
            verbose: bool = False,
            assignment: Optional[Dict[str, int]] = None,
            transport: str = "pipe",
            sync: str = "conservative",
            ) -> Union[Simulation, ParallelSimulation]:
    """Rebuild a runnable engine from a snapshot directory.

    Returns a :class:`Simulation` (``ranks=1`` and a sequential
    snapshot, or any snapshot re-partitioned down to one rank) or a
    :class:`ParallelSimulation` otherwise.  ``backend``/``ranks``/
    ``queue`` default to the values recorded in the manifest; changing
    the backend keeps the resume bit-identical, changing the rank count
    switches to the stats-equivalent re-partition mode (see module
    docstring).  The result's ``checkpoint_lineage`` records where it
    came from and flows into run manifests (:mod:`repro.obs.manifest`).

    ``assignment`` — an explicit component→rank map (e.g. the output of
    ``python -m repro obs partition-advise``) — forces the re-partition
    path with every listed component pinned, even at the snapshot's own
    rank count: the feedback loop's "resume under the advised layout"
    step.  Unlisted components are placed by the partitioner.
    """
    root = Path(path)
    manifest = load_manifest(root)
    graph = _rebuild_graph(manifest)
    if assignment:
        bad = [n for n, r in assignment.items() if not isinstance(r, int) or r < 0]
        if bad:
            raise CheckpointError(
                f"assignment pins non-rank values for: {sorted(bad)[:5]}")
        target_ranks = ranks if ranks is not None else \
            max(max(assignment.values()) + 1, 1)
        if max(assignment.values(), default=0) >= target_ranks:
            raise CheckpointError(
                f"assignment pins rank "
                f"{max(assignment.values())} >= ranks {target_ranks}")
        return _restore_repartition(root, manifest, graph, target_ranks,
                                    backend=backend, queue=queue,
                                    verbose=verbose, assignment=assignment,
                                    transport=transport, sync=sync)
    target_ranks = ranks if ranks is not None else manifest["num_ranks"]
    if target_ranks < 1:
        raise CheckpointError(f"ranks must be >= 1, got {target_ranks}")
    if manifest["mode"] == "sequential" and target_ranks == 1:
        return _restore_sequential(root, manifest, graph, queue=queue,
                                   verbose=verbose)
    if manifest["mode"] == "parallel" and target_ranks == manifest["num_ranks"]:
        return _restore_parallel_exact(root, manifest, graph, backend=backend,
                                       queue=queue, verbose=verbose,
                                       transport=transport, sync=sync)
    return _restore_repartition(root, manifest, graph, target_ranks,
                                backend=backend, queue=queue, verbose=verbose,
                                transport=transport, sync=sync)


def _rebuild_graph(manifest: Dict[str, Any]):
    """The original ConfigGraph, rebuilt and identity-checked."""
    from ..config.serialize import from_dict
    from ..obs.manifest import graph_hash

    graph = from_dict(manifest["graph"])
    rebuilt_hash = graph_hash(graph)
    if rebuilt_hash != manifest["graph_hash"]:
        raise CheckpointError(
            f"snapshot graph hash mismatch: manifest says "
            f"{manifest['graph_hash']}, rebuilt graph hashes to "
            f"{rebuilt_hash} — the snapshot was tampered with or written "
            f"by an incompatible config serializer"
        )
    return graph


def _shard_states(root: Path, manifest: Dict[str, Any]) -> List[Dict[str, Any]]:
    states = []
    for entry in manifest["shards"]:
        states.append(read_shard(root / entry["file"], expect=entry))
    return states


def _lineage(root: Path, manifest: Dict[str, Any], restored_ranks: int,
             mode: str) -> Dict[str, Any]:
    return {
        "snapshot": str(root),
        "schema": manifest["schema"],
        "graph_hash": manifest["graph_hash"],
        "sim_time_ps": manifest["sim_time_ps"],
        "snapshot_ranks": manifest["num_ranks"],
        "restored_ranks": restored_ranks,
        "mode": mode,
        "sequence": manifest.get("sequence"),
        "parent": manifest.get("lineage"),
    }


# ----------------------------------------------------------------------
# exact restores
# ----------------------------------------------------------------------

def _restore_sequential(root: Path, manifest: Dict[str, Any], graph, *,
                        queue: Optional[str], verbose: bool) -> Simulation:
    from ..config.builder import build

    sim = build(graph, seed=manifest["seed"],
                queue=queue or manifest["queue"], verbose=verbose,
                clock_arbiter=manifest["clock_arbiter"])
    sim.setup()
    meta = restore_sim_state(sim, _shard_states(root, manifest)[0])
    merge_id_sources([meta])
    sim.checkpoint_lineage = _lineage(root, manifest, 1, "exact")
    return sim


def _restore_parallel_exact(root: Path, manifest: Dict[str, Any], graph, *,
                            backend: Optional[str], queue: Optional[str],
                            verbose: bool, transport: str = "pipe",
                            sync: str = "conservative") -> ParallelSimulation:
    from ..config.builder import build_parallel
    from ..config.serialize import from_dict

    # Re-pin every component to its captured rank so the rebuilt layout
    # matches the shards regardless of the partition strategy.
    pinned_dict = copy.deepcopy(manifest["graph"])
    assignment = manifest["assignment"]
    for comp in pinned_dict["components"]:
        comp["rank"] = assignment[comp["name"]]
    pinned = from_dict(pinned_dict)
    psim = build_parallel(
        pinned, manifest["num_ranks"],
        strategy=manifest["partition_strategy"] or "linear",
        seed=manifest["seed"], queue=queue or manifest["queue"],
        backend=backend or manifest["backend"] or "serial",
        verbose=verbose, clock_arbiter=manifest["clock_arbiter"],
        transport=transport, sync=sync)
    # Future snapshots of the restored engine must hash to the same
    # graph, so carry the *original* (unpinned) graph forward.
    psim.config_graph = graph
    psim.setup()
    # Setup-time cross-rank sends belong to the captured past: the
    # snapshot's pending set is the complete in-flight truth.
    for by_dest in psim._outboxes:
        for bucket in by_dest:
            bucket.clear()
    metas = []
    for rank, state in enumerate(_shard_states(root, manifest)):
        meta = restore_sim_state(psim._sims[rank], state)
        if meta["rank"] != rank:
            raise CheckpointError(
                f"shard {rank} carries state for rank {meta['rank']}")
        psim._send_seq[rank][0] = meta["send_seq"] or 0
        metas.append(meta)
    merge_id_sources(metas)
    pstate = read_shard(root / manifest["parallel_file"]["file"],
                        expect=manifest["parallel_file"])
    # Engine-stat authority split (processes backend): the shard's
    # engine stats are worker-side — obs.* live, sync.* stale — while
    # the parent's sync.* counters are the live authority.  Shards were
    # applied above; the parent copies override name by name here.
    for sim, remote_stats in zip(psim._sims, pstate["engine_stats"]):
        group = sim.engine_stats.all()
        for name, remote in remote_stats.items():
            local = group.get(name)
            if local is None:
                sim.engine_stats._register(name, remote)
            else:
                adopt_state(local, remote)
    psim.total_epochs = pstate["engine"]["total_epochs"]
    psim.total_remote_events = pstate["engine"]["total_remote_events"]
    _deliver_pending(psim._sims, load_refs(pstate["pending_blob"], psim._sims))
    psim.checkpoint_lineage = _lineage(root, manifest, psim.num_ranks, "exact")
    return psim


def _deliver_pending(sims: List[Simulation], pending: List[Tuple]) -> None:
    """Pre-deliver captured cross-rank sends into destination queues.

    At an epoch boundary the pending set is exactly what the next
    epoch's exchange would deliver, and that delivery is the *first*
    push into each destination queue of the resumed run.  Pushing here,
    per destination in the exchange sort order ``(time, priority,
    link_id, send_seq)``, therefore assigns the same sequence numbers
    the uninterrupted run would have — the resume stays bit-identical.
    """
    comps: Dict[str, Component] = {}
    for sim in sims:
        comps.update(sim._components)
    by_rank: Dict[int, List[Tuple]] = {}
    for (time, priority, link_id, comp_name, port_name, send_seq,
         event) in pending:
        comp = comps.get(comp_name)
        if comp is None:
            raise CheckpointError(
                f"pending cross-rank event targets unknown component "
                f"{comp_name!r}")
        port = comp.port(port_name)
        by_rank.setdefault(comp.sim.rank, []).append(
            (time, priority, link_id, send_seq, port, event))
    for rank in sorted(by_rank):
        entries = by_rank[rank]
        entries.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
        queue = entries[0][4].component.sim._queue
        for (time, priority, _link, _seq, port, event) in entries:
            queue.push(time, priority, port.deliver, event)


# ----------------------------------------------------------------------
# re-partitioned restore
# ----------------------------------------------------------------------

def _restore_repartition(root: Path, manifest: Dict[str, Any], graph,
                         target_ranks: int, *, backend: Optional[str],
                         queue: Optional[str], verbose: bool,
                         assignment: Optional[Dict[str, int]] = None,
                         transport: str = "pipe",
                         sync: str = "conservative",
                         ) -> Union[Simulation, ParallelSimulation]:
    """Restore onto a different rank count (stats-equivalent mode).

    Rank-local identity — queue sequence numbers, clock tick chains,
    engine counters, cross-rank send sequences — does not survive, so
    it is rebuilt: tick chains are re-armed from restored clock state,
    each new rank's queue comes from a deterministic merge sort of the
    surviving records, and engine statistics restart from zero.  Model
    state, component statistics and every in-flight model event carry
    over, so the completed run's component statistics match.
    """
    from ..config.builder import build, build_parallel
    from ..config.serialize import from_dict

    stripped_dict = copy.deepcopy(manifest["graph"])
    known = {comp["name"] for comp in stripped_dict["components"]}
    if assignment:
        unknown = sorted(set(assignment) - known)
        if unknown:
            raise CheckpointError(
                f"assignment pins unknown component(s): {unknown[:5]}")
    for comp in stripped_dict["components"]:
        comp["rank"] = (assignment or {}).get(comp["name"])
    stripped = from_dict(stripped_dict)
    queue_kind = queue or manifest["queue"]
    psim: Optional[ParallelSimulation] = None
    if target_ranks == 1:
        sim = build(stripped, seed=manifest["seed"], queue=queue_kind,
                    verbose=verbose, clock_arbiter=manifest["clock_arbiter"])
        sims = [sim]
        sim.setup()
        container: Union[Simulation, ParallelSimulation] = sim
    else:
        psim = build_parallel(
            stripped, target_ranks,
            strategy=manifest["partition_strategy"] or "linear",
            seed=manifest["seed"], queue=queue_kind,
            backend=backend or manifest["backend"] or "serial",
            verbose=verbose, clock_arbiter=manifest["clock_arbiter"],
            transport=transport, sync=sync)
        sims = psim._sims
        psim.setup()
        for by_dest in psim._outboxes:
            for bucket in by_dest:
                bucket.clear()
        container = psim
    container.config_graph = graph

    states = _shard_states(root, manifest)
    metas = [state["meta"] for state in states]
    global_now = max(meta["now"] for meta in metas)
    last_event = max(meta["last_event_time"] for meta in metas)

    comps: Dict[str, Component] = {}
    for sim in sims:
        comps.update(sim._components)

    # Surviving queue records, tagged for the deterministic merge:
    # (time, priority, phase, tiebreak1, tiebreak2, handler, event)
    # where phase 0 = shard-resident record (tiebreak = capture rank,
    # capture seq) and phase 1 = pending cross-rank send (tiebreak =
    # link id, send seq).  Tick-chain records are partition-local and
    # dropped — chains are re-armed from clock state below.
    merged: Dict[int, List[Tuple]] = {rank: [] for rank in range(len(sims))}
    clock_pool = _clock_pool(sims)
    for state in states:
        meta = state["meta"]
        linked = load_refs(state["linked"], sims)
        for comp_name, stats in meta["stats"].items():
            comp = comps.get(comp_name)
            if comp is None:
                raise CheckpointError(
                    f"snapshot carries component {comp_name!r} which the "
                    f"rebuilt simulation does not have")
            group = comp.stats.all()
            for stat_name, remote in stats.items():
                local = group.get(stat_name)
                if local is None:
                    comp.stats._register(stat_name, remote)
                else:
                    adopt_state(local, remote)
        for comp_name, comp_state in linked["components"].items():
            comps[comp_name].restore_state(comp_state)
        for cstate in meta["clocks"]:
            _take_clock(clock_pool, cstate).restore_state(cstate)
        for (time, priority, seq, handler, event) in linked["records"]:
            if isinstance(event, _TICK_EVENTS):
                continue
            if is_dropped(handler) or is_dropped(event):
                continue
            home = _home_sim(handler, event, sims)
            merged[home.rank].append(
                (time, priority, 0, meta["rank"], seq, handler, event))
    merge_id_sources(metas)
    # All shards applied — fire the lifecycle hook once per component,
    # in each rank's registration order (matching the exact path).
    for sim in sims:
        for comp in sim._components.values():
            comp.on_restore()

    if manifest.get("parallel_file"):
        pstate = read_shard(root / manifest["parallel_file"]["file"],
                            expect=manifest["parallel_file"])
        for (time, priority, link_id, comp_name, port_name, send_seq,
             event) in load_refs(pstate["pending_blob"], sims):
            comp = comps.get(comp_name)
            if comp is None:
                raise CheckpointError(
                    f"pending cross-rank event targets unknown component "
                    f"{comp_name!r}")
            port = comp.port(port_name)
            merged[comp.sim.rank].append(
                (time, priority, 1, link_id, send_seq, port.deliver, event))

    for sim in sims:
        entries = merged[sim.rank]
        entries.sort(key=lambda e: e[:5])
        records = [EventRecord(t, p, i, handler, event)
                   for i, (t, p, _ph, _t1, _t2, handler, event)
                   in enumerate(entries)]
        sim._queue.restore_records(records, len(records))
        sim.now = global_now
        sim.last_event_time = last_event
        # Fresh rank identity: event counters and engine stats restart
        # (the resume is stats-equivalent on *component* statistics).
        sim._events_executed = 0
        for arbiter in sim._arbiters.values():
            arbiter._generation = 0
            arbiter._scheduled_time = None
            arbiter._dispatching = False
            arbiter._resched_hint = None
        for clock in sim._clocks:
            if not clock.active:
                continue
            if clock._next_tick <= global_now:
                raise CheckpointError(
                    f"clock {clock.name!r} is due at {clock._next_tick} "
                    f"<= snapshot time {global_now}; the snapshot was not "
                    f"taken at a quiescent boundary")
            if clock._arbiter is not None:
                clock._arbiter._ensure_scheduled(clock._next_tick)
            else:
                sim._push(clock._next_tick, clock.priority, clock._tick,
                          _ClockTickEvent(clock._generation))
        recompute_exit_state(sim)
        sim._stop_requested = False

    container.checkpoint_lineage = _lineage(root, manifest, target_ranks,
                                            "repartition")
    return container


def _clock_pool(sims: List[Simulation]) -> Dict[str, List]:
    """Rebuilt clocks grouped by name, in (rank, registration) order."""
    pool: Dict[str, List] = {}
    for sim in sims:
        for clock in sim._clocks:
            pool.setdefault(clock.name, []).append(clock)
    return pool


def _take_clock(pool: Dict[str, List], cstate: Dict[str, Any]):
    """Consume the next rebuilt clock matching a captured clock state."""
    bucket = pool.get(cstate["name"])
    if not bucket:
        raise CheckpointError(
            f"snapshot captured clock {cstate['name']!r} which the rebuilt "
            f"simulation did not register (or registered fewer of)")
    return bucket.pop(0)


def _home_sim(handler: Any, event: Any, sims: List[Simulation]) -> Simulation:
    """Which rebuilt rank a surviving queue record belongs to."""
    owner = getattr(handler, "__self__", None)
    if owner is None and isinstance(event, CallbackEvent):
        owner = getattr(event.callback, "__self__", None)
    if owner is not None:
        if isinstance(owner, Port):
            return owner.component.sim
        sim = getattr(owner, "sim", None)
        if isinstance(sim, Simulation):
            return sim
    return sims[0]


# ----------------------------------------------------------------------
# segmented sequential run (Simulation.run(checkpoint_every=...))
# ----------------------------------------------------------------------

def checkpointed_run(sim: Simulation,
                     checkpoint_every: Union[str, int],
                     checkpoint_dir: Optional[str], *,
                     max_time: Optional[Union[str, int]] = None,
                     max_events: Optional[int] = None,
                     finalize: bool = True,
                     ignore_exit: bool = False) -> RunResult:
    """Run ``sim`` writing a snapshot at every simulated-time interval.

    Segments the run into ``max_time``-bounded kernel invocations at
    the interval marks and snapshots between them — the sequential
    engine's quiescent points.  The segmentation is invisible to the
    models: ``max_time`` is inclusive and the kernel parks ``now`` at
    the mark, so the executed event sequence (and every ``(time,
    priority, seq)`` trace) is identical to a single unsegmented run.
    """
    if checkpoint_dir is None:
        raise SimulationError("checkpoint_every requires checkpoint_dir")
    interval = units.parse_time(checkpoint_every, default_unit="ps")
    if interval <= 0:
        raise SimulationError("checkpoint_every must be positive")
    limit = (units.parse_time(max_time, default_unit="ps")
             if max_time is not None else None)
    if not sim._setup_done:
        sim.setup()
    # First mark strictly after the current high-water mark, so a
    # restored run doesn't immediately re-snapshot its own origin.
    next_mark = (sim.now // interval + 1) * interval
    seq = len(sim.checkpoints_written)
    remaining = max_events
    total_events = 0
    total_wall = 0.0
    while True:
        stop_at_mark = limit is None or next_mark < limit
        target = next_mark if stop_at_mark else limit
        result = kernel_run(sim, RunContext.for_sim(
            sim, max_time=target, max_events=remaining,
            ignore_exit=ignore_exit, finalize=False))
        total_events += result.events_executed
        total_wall += result.wall_seconds
        if remaining is not None:
            remaining -= result.events_executed
        if result.reason == "max_time" and stop_at_mark:
            path = snapshot(sim, f"{checkpoint_dir}/ckpt-{seq:04d}")
            sim.checkpoints_written.append(str(path))
            seq += 1
            next_mark += interval
            continue
        reason = result.reason
        break
    if finalize and reason in ("exhausted", "exit", "stopped", "max_time"):
        sim.finish()
    return RunResult(reason=reason, end_time=sim.now,
                     events_executed=total_events, wall_seconds=total_wall)


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------

def _describe_handler(handler: Any) -> str:
    owner = getattr(handler, "__self__", None)
    name = getattr(handler, "__name__", None) or type(handler).__name__
    if owner is not None:
        owner_name = getattr(owner, "name", None)
        if isinstance(owner, Port):
            owner_name = owner.full_name()
        if owner_name:
            return f"{owner_name}.{name}"
        return f"{type(owner).__name__}.{name}"
    return name


def replay(path: Union[str, Path], *,
           max_time: Optional[Union[str, int]] = None,
           max_events: Optional[int] = None,
           observer: Optional[Callable] = None,
           ) -> Tuple[Simulation, RunResult, List[Tuple]]:
    """Restore a snapshot and re-run it with per-event tracing.

    The debugging workflow for "it crashed at t=X": restore the last
    snapshot before X and replay toward it, collecting every dispatched
    event as ``(time_ps, handler_label, event_type)``.  Parallel
    snapshots are re-partitioned onto one rank so the trace is a single
    deterministic stream.  ``observer(time, handler, event)`` is called
    per event when given, in addition to the collected trace.  Returns
    ``(sim, result, trace)``.
    """
    root = Path(path)
    manifest = load_manifest(root)
    graph = _rebuild_graph(manifest)
    if manifest["mode"] == "sequential":
        sim = _restore_sequential(root, manifest, graph, queue=None,
                                  verbose=False)
    else:
        target = _restore_repartition(root, manifest, graph, 1,
                                      backend=None, queue=None, verbose=False)
        assert isinstance(target, Simulation)
        sim = target
    trace: List[Tuple] = []

    def _collect(time, handler, event) -> None:
        trace.append((time, _describe_handler(handler), type(event).__name__))
        if observer is not None:
            observer(time, handler, event)

    sim.set_trace(_collect)
    try:
        result = sim.run(max_time=max_time, max_events=max_events)
    finally:
        sim.set_trace(None)
    return sim, result, trace
