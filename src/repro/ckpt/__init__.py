"""repro.ckpt: engine-level checkpoint/restore for the PDES engine.

Snapshots the *engine itself* — event queues, clock chains, component
state, RNG streams, statistics — so a long simulation can be resumed,
warm-started or replayed.  Not to be confused with
:mod:`repro.resilience`, which *models* checkpoint/restart of the
simulated jobs inside the simulated machine; this package checkpoints
the simulator.

Entry points
------------
* ``Simulation.run(checkpoint_every="10us", checkpoint_dir=...)`` and
  ``ParallelSimulation.run(checkpoint_every=..., checkpoint_dir=...)``
  write periodic snapshots during a run.
* :func:`snapshot` / :func:`snapshot_parallel` write one snapshot at a
  quiescent point (between run segments / at an epoch boundary).
* :func:`restore` rebuilds a runnable engine from a snapshot — same or
  different execution backend (bit-identical resume), same or
  different rank count (stats-equivalent resume).
* :func:`replay` restores and re-runs with per-event tracing (the
  "what happened just before t=X" debugging workflow).
* :func:`snapshot_info` summarises a snapshot directory without
  unpickling anything (``python -m repro ckpt info``).
* ``dse.sweep(warm_start=...)`` warm-starts design-point evaluations
  from per-point prefix snapshots.

Format and consistency rules are documented in docs/CHECKPOINT.md.
"""

from .restore import checkpointed_run, replay, restore
from .snapshot import (SNAPSHOT_SCHEMA, load_manifest, read_shard, snapshot,
                       snapshot_info, snapshot_parallel, write_shard)
from .state import (CheckpointError, capture_sim_state, dump_refs, load_refs,
                    merge_id_sources, restore_sim_state)

__all__ = [
    "CheckpointError",
    "SNAPSHOT_SCHEMA",
    "capture_sim_state",
    "checkpointed_run",
    "dump_refs",
    "load_manifest",
    "load_refs",
    "merge_id_sources",
    "read_shard",
    "replay",
    "restore",
    "restore_sim_state",
    "snapshot",
    "snapshot_info",
    "snapshot_parallel",
    "write_shard",
]
