"""Snapshot writing: the ``repro-ckpt/1`` on-disk format.

A snapshot is a directory::

    ckpt-0003/
        MANIFEST.json     # plain JSON: graph, layout, checksums
        shard-0000.pkl    # pickled per-rank engine state (ckpt.state)
        shard-0001.pkl
        parallel.pkl      # parallel runs only: pending cross-rank
                          # sends + parent-side engine counters

Write protocol: shards first (each through a tmp file and an atomic
``rename``), the manifest last — the manifest *is* the commit point, so
a crash mid-snapshot leaves either a previous complete snapshot or a
directory that :func:`snapshot_info` and :func:`repro.ckpt.restore`
reject as uncommitted.  Every payload file carries its SHA-256 in the
manifest and is verified before unpickling.

The manifest embeds the full config graph
(:func:`repro.config.serialize.to_dict`) plus its
:func:`repro.obs.manifest.graph_hash`, so a restore can rebuild the
component graph without the original script and refuses snapshots whose
graph does not match.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time as _time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.parallel import ParallelSimulation
from ..core.simulation import Simulation
from .state import CheckpointError, capture_sim_state, dump_refs

#: on-disk snapshot format identifier; bump on incompatible changes
SNAPSHOT_SCHEMA = "repro-ckpt/1"

MANIFEST_NAME = "MANIFEST.json"
PARALLEL_NAME = "parallel.pkl"


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(path)


def write_shard(path: Union[str, Path], state: Dict[str, Any]) -> Dict[str, Any]:
    """Pickle one rank's captured state to ``path`` atomically.

    Returns ``{"sha256", "size"}`` for the manifest.  Called in-process
    for serial/threads snapshots and inside the forked rank worker for
    the processes backend (the worker owns the live queue, so the state
    must be captured — and is most cheaply written — there).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps(state, pickle.HIGHEST_PROTOCOL)
    _atomic_write(path, blob)
    return {"sha256": hashlib.sha256(blob).hexdigest(), "size": len(blob)}


def read_shard(path: Union[str, Path],
               expect: Optional[Dict[str, Any]] = None) -> Any:
    """Load a payload file, verifying its manifest checksum first."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot shard {path}: {exc}") from exc
    if expect is not None:
        digest = hashlib.sha256(blob).hexdigest()
        if digest != expect.get("sha256"):
            raise CheckpointError(
                f"snapshot shard {path} is corrupt: sha256 {digest[:12]}… "
                f"does not match the manifest ({str(expect.get('sha256'))[:12]}…)"
            )
    return pickle.loads(blob)


def _lineage_summary(lineage: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Record where a restored engine came from, capping nesting depth."""
    if lineage is None:
        return None
    summary = dict(lineage)
    summary.pop("parent", None)
    return summary


def _graph_payload(target: Union[Simulation, ParallelSimulation]):
    graph = getattr(target, "config_graph", None)
    if graph is None:
        raise CheckpointError(
            "cannot snapshot: the simulation was not built from a "
            "ConfigGraph (repro.config.build / build_parallel).  Snapshots "
            "embed the graph so a restore can rebuild the component set."
        )
    from ..config.serialize import to_dict
    from ..obs.manifest import graph_hash

    return to_dict(graph), graph_hash(graph)


def _write_manifest(root: Path, manifest: Dict[str, Any]) -> Path:
    _atomic_write(root / MANIFEST_NAME,
                  json.dumps(manifest, indent=2, sort_keys=True).encode())
    return root


def snapshot(sim: Simulation, path: Union[str, Path]) -> Path:
    """Write a sequential-engine snapshot directory at ``path``.

    Valid only between run segments (``Simulation.run`` with
    ``checkpoint_every`` calls this at each interval mark; calling it
    directly between your own ``run(max_time=...)`` segments is equally
    safe — the queue is quiescent whenever ``run()`` is not executing).
    """
    graph_dict, ghash = _graph_payload(sim)
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    shard = root / "shard-0000.pkl"
    meta = write_shard(shard, capture_sim_state(sim))
    manifest = {
        "schema": SNAPSHOT_SCHEMA,
        "mode": "sequential",
        "sim_time_ps": sim.now,
        "seed": sim.seed,
        "queue": sim.queue_kind,
        "num_ranks": 1,
        "backend": None,
        "partition_strategy": None,
        "clock_arbiter": sim.clock_arbiter_enabled,
        "graph": graph_dict,
        "graph_hash": ghash,
        "assignment": {name: 0 for name in sim._components},
        "shards": [{"file": shard.name, "rank": 0, **meta}],
        "sequence": len(sim.checkpoints_written),
        "lineage": _lineage_summary(sim.checkpoint_lineage),
        "created_unix": _time.time(),
    }
    return _write_manifest(root, manifest)


def snapshot_parallel(psim: ParallelSimulation, path: Union[str, Path],
                      backend: Optional[Any] = None) -> Path:
    """Write a consistent multi-rank snapshot at an epoch boundary.

    Called by ``ParallelSimulation.run`` after the epoch's rank steps
    were absorbed: every rank has executed all events through the
    window end, outboxes are flushed, and undelivered cross-rank sends
    sit in the sync strategy's pending set — a globally consistent cut
    with no event in flight anywhere else.

    Each rank's shard is written where its live queue lives: via
    ``backend.snapshot_rank`` (in-process for serial/threads, inside
    the forked worker for processes).  The parent then writes the
    pending-send payload plus its own authoritative engine counters,
    and commits the manifest last.  With ``backend=None`` (outside a
    run) ranks are captured directly in-process.
    """
    graph_dict, ghash = _graph_payload(psim)
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    shards = []
    for rank in range(psim.num_ranks):
        shard = root / f"shard-{rank:04d}.pkl"
        if backend is not None:
            meta = backend.snapshot_rank(rank, str(shard))
        else:
            state = capture_sim_state(psim._sims[rank],
                                      send_seq=psim._send_seq[rank][0])
            meta = write_shard(shard, state)
            meta["now"] = state["meta"]["now"]
        shards.append({"file": shard.name, "rank": rank, **meta})
    # Parent-side payload.  Under the processes backend the parent's
    # sim objects hold stale queues but its sync strategy and sync.*
    # counters are the live authority — the shard's engine stats are
    # worker-side (obs.* live, sync.* stale), so a restore applies the
    # shard first and these overrides after, name by name.
    pending = psim._sync.export_pending(psim._cross_links)
    parallel_state = {
        "pending_blob": dump_refs(psim._sims, pending),
        "engine_stats": [dict(sim.engine_stats.all()) for sim in psim._sims],
        "engine": {
            "total_epochs": psim.total_epochs,
            "total_remote_events": psim.total_remote_events,
        },
    }
    parallel_meta = write_shard(root / PARALLEL_NAME, parallel_state)
    manifest = {
        "schema": SNAPSHOT_SCHEMA,
        "mode": "parallel",
        # From the shard metadata, not the parent's sim objects — under
        # the processes backend those are stale fork-time copies.
        "sim_time_ps": max(entry["now"] for entry in shards),
        "seed": psim.seed,
        "queue": psim.queue_kind,
        "num_ranks": psim.num_ranks,
        "backend": psim.backend,
        "partition_strategy": psim.partition_strategy,
        "clock_arbiter": psim._sims[0].clock_arbiter_enabled,
        "graph": graph_dict,
        "graph_hash": ghash,
        "assignment": {name: sim.rank for sim in psim._sims
                       for name in sim._components},
        "shards": shards,
        "parallel_file": {"file": PARALLEL_NAME, **parallel_meta},
        "sequence": len(psim.checkpoints_written),
        "lineage": _lineage_summary(psim.checkpoint_lineage),
        "created_unix": _time.time(),
    }
    return _write_manifest(root, manifest)


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and schema-check a snapshot manifest (no payload unpickling)."""
    root = Path(path)
    mpath = root / MANIFEST_NAME
    if not mpath.is_file():
        raise CheckpointError(
            f"{root} is not a committed snapshot: no {MANIFEST_NAME} "
            f"(interrupted snapshots leave shards without a manifest)"
        )
    try:
        manifest = json.loads(mpath.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable snapshot manifest {mpath}: {exc}") from exc
    if manifest.get("schema") != SNAPSHOT_SCHEMA:
        raise CheckpointError(
            f"unsupported snapshot schema {manifest.get('schema')!r} "
            f"(this engine reads {SNAPSHOT_SCHEMA!r})"
        )
    return manifest


def snapshot_info(path: Union[str, Path],
                  verify: bool = True) -> Dict[str, Any]:
    """Summarise a snapshot directory: manifest facts + checksum status.

    Backs ``python -m repro ckpt info``.  ``verify=True`` re-hashes
    every payload file (without unpickling anything).
    """
    root = Path(path)
    manifest = load_manifest(root)
    payloads = list(manifest["shards"])
    if manifest.get("parallel_file"):
        payloads.append(manifest["parallel_file"])
    files = []
    ok = True
    for entry in payloads:
        fpath = root / entry["file"]
        status = "ok"
        if not fpath.is_file():
            status = "missing"
        elif verify:
            digest = hashlib.sha256(fpath.read_bytes()).hexdigest()
            if digest != entry["sha256"]:
                status = "corrupt"
        if status != "ok":
            ok = False
        files.append({"file": entry["file"], "size": entry.get("size"),
                      "status": status})
    return {
        "path": str(root),
        "schema": manifest["schema"],
        "mode": manifest["mode"],
        "sim_time_ps": manifest["sim_time_ps"],
        "seed": manifest["seed"],
        "queue": manifest["queue"],
        "num_ranks": manifest["num_ranks"],
        "backend": manifest["backend"],
        "graph_name": manifest["graph"].get("name"),
        "graph_hash": manifest["graph_hash"],
        "components": len(manifest["graph"].get("components", [])),
        "links": len(manifest["graph"].get("links", [])),
        "sequence": manifest.get("sequence"),
        "lineage": manifest.get("lineage"),
        "created_unix": manifest.get("created_unix"),
        "files": files,
        "intact": ok,
    }
