"""The miniapp validation-metric framework (paper §2.2, Eqs. (1)-(5)).

Formalises "under what conditions does a miniapp represent a key
performance characteristic in a full app?":

* a *performance domain* ``{D}`` of diagnostics (Eq. 1);
* baseline full-application referents ``{B}`` (Eq. 2) and miniapp
  measurements ``{A}`` (Eq. 3);
* a validation metric ``X_i = B_i - A_i`` (Eq. 4), here normalised to
  the proportional difference ``|B_i - A_i| / |B_i|`` so thresholds are
  scale-free;
* a threshold assessment (Eq. 5) assigning **pass / caution / fail**
  per diagnostic.

The framework deliberately exposes its inputs (the paper: "the input
information D, B, and A are open to challenge and refinement ... the
role of interpretive judgment is transparent").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional


class Verdict(enum.Enum):
    """Eq. (5) outcome for one diagnostic."""

    PASS = "pass"
    CAUTION = "caution"
    FAIL = "fail"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Thresholds:
    """Proportional-difference thresholds for Eq. (5).

    ``X <= pass_below``  -> pass;
    ``X <= caution_below`` -> caution;
    otherwise -> fail.
    """

    pass_below: float = 0.10
    caution_below: float = 0.25

    def __post_init__(self):
        if not 0 <= self.pass_below <= self.caution_below:
            raise ValueError("need 0 <= pass_below <= caution_below")

    def assess(self, proportional_difference: float) -> Verdict:
        x = abs(proportional_difference)
        if x <= self.pass_below:
            return Verdict.PASS
        if x <= self.caution_below:
            return Verdict.CAUTION
        return Verdict.FAIL


@dataclass
class Diagnostic:
    """One dimension of the performance domain, with its comparison."""

    name: str
    baseline: float  #: B_i — the full application's measurement
    miniapp: float  #: A_i — the miniapp's measurement
    thresholds: Thresholds = field(default_factory=Thresholds)
    note: str = ""

    @property
    def difference(self) -> float:
        """Eq. (4): X_i = B_i - A_i."""
        return self.baseline - self.miniapp

    @property
    def proportional_difference(self) -> float:
        """|B - A| / |B| (scale-free form used for thresholding)."""
        if self.baseline == 0:
            return 0.0 if self.miniapp == 0 else float("inf")
        return abs(self.difference) / abs(self.baseline)

    @property
    def verdict(self) -> Verdict:
        return self.thresholds.assess(self.proportional_difference)


@dataclass
class ValidationStudy:
    """A body of evidence: many diagnostics, one summary appraisal.

    The paper stops short of prescribing how per-diagnostic verdicts
    combine ("leaves open the issue of how all of this information is
    combined into a single appraisal"); :meth:`summary` implements the
    conservative reading — worst verdict wins — while keeping every
    individual verdict inspectable.
    """

    name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, name: str, baseline: float, miniapp: float,
            thresholds: Optional[Thresholds] = None, note: str = "") -> Diagnostic:
        diag = Diagnostic(name=name, baseline=baseline, miniapp=miniapp,
                          thresholds=thresholds or Thresholds(), note=note)
        self.diagnostics.append(diag)
        return diag

    def add_series(self, name: str, baseline: Mapping, miniapp: Mapping,
                   thresholds: Optional[Thresholds] = None) -> List[Diagnostic]:
        """Add one diagnostic per shared key of two measurement series."""
        added = []
        for key in baseline:
            if key in miniapp:
                added.append(self.add(f"{name}[{key}]", float(baseline[key]),
                                      float(miniapp[key]), thresholds))
        return added

    def verdicts(self) -> Dict[str, Verdict]:
        return {d.name: d.verdict for d in self.diagnostics}

    def count(self, verdict: Verdict) -> int:
        return sum(1 for d in self.diagnostics if d.verdict is verdict)

    def summary(self) -> Verdict:
        """Worst-case combination across the domain."""
        if not self.diagnostics:
            raise ValueError(f"study {self.name!r} has no diagnostics")
        if self.count(Verdict.FAIL):
            return Verdict.FAIL
        if self.count(Verdict.CAUTION):
            return Verdict.CAUTION
        return Verdict.PASS

    def report(self) -> str:
        """Human-readable assessment table."""
        lines = [f"Validation study: {self.name}",
                 f"{'diagnostic':<36} {'B':>10} {'A':>10} {'X/B':>8}  verdict"]
        for d in self.diagnostics:
            prop = d.proportional_difference
            prop_text = f"{prop:8.1%}" if prop != float("inf") else "     inf"
            lines.append(
                f"{d.name:<36} {d.baseline:>10.4g} {d.miniapp:>10.4g} "
                f"{prop_text}  {d.verdict}"
            )
        lines.append(f"summary: {self.summary()} "
                     f"({self.count(Verdict.PASS)} pass / "
                     f"{self.count(Verdict.CAUTION)} caution / "
                     f"{self.count(Verdict.FAIL)} fail)")
        return "\n".join(lines)
