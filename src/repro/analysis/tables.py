"""Result-table assembly and output.

The benchmark harness prints paper-style rows (one table/series per
figure) and optionally persists them as CSV.  Kept deliberately plain:
a :class:`ResultTable` is a list of dict rows with a column order.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union


class ResultTable:
    """An ordered-column table of result rows."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ValueError("need at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append({c: values.get(c) for c in self.columns})

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # -- rendering --------------------------------------------------------
    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        """Fixed-width text rendering (what the benches print)."""
        formatted = [[self._format(row[c]) for c in self.columns]
                     for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in formatted)) if formatted else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """CSV text; also written to ``path`` when given."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns,
                                lineterminator="\n")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


def relative_to(values: Iterable[float], reference: float) -> List[float]:
    """Each value divided by ``reference`` (paper-style normalised series)."""
    if reference == 0:
        raise ZeroDivisionError("reference must be non-zero")
    return [v / reference for v in values]
