"""PySST analysis utilities.

The validation-metric framework of the paper's §2.2
(:mod:`~repro.analysis.validation`) and the result-table output layer
used by the benchmark harness (:mod:`~repro.analysis.tables`).
"""

from .tables import ResultTable, relative_to
from .timeseries import StatSampler
from .validation import (Diagnostic, Thresholds, ValidationStudy, Verdict)

__all__ = [
    "Diagnostic",
    "ResultTable",
    "StatSampler",
    "Thresholds",
    "ValidationStudy",
    "Verdict",
    "relative_to",
]
