"""Periodic statistics sampling (SST's interval-statistics output).

A :class:`StatSampler` is an ordinary component that wakes on its own
clock and snapshots selected statistics into a time series — the
mechanism behind "dump every statistic every 10 us of simulated time to
CSV" workflows.  Patterns are shell globs against the flattened
``<component>.<statistic>`` key space.

Example::

    sampler = StatSampler(sim, "sampler", Params({
        "period": "10us", "patterns": "rank*.messages_sent,nic0.*"}))
    sim.run()
    sampler.to_table().to_csv("timeseries.csv")
"""

from __future__ import annotations

import fnmatch
from typing import Any, Dict, List

from ..core.component import Component, state
from ..core.registry import register
from ..core.units import SimTime
from .tables import ResultTable


@register("analysis.StatSampler")
class StatSampler(Component):
    """Samples matching statistics on a fixed simulated-time period.

    Parameters: ``period`` (e.g. "10us"), ``patterns`` (comma-separated
    globs; default ``*`` = everything), ``max_samples`` (safety cap,
    default 100000), ``gauges`` (bool, default off: also sample other
    components' declared ``state(..., gauge=True)`` attributes under
    the same ``<component>.<attribute>`` key space).

    The sampler never keeps the simulation alive (it is not a primary
    component); it simply rides along while others run.
    """

    samples = state(list, gauge=True, doc="one row per sampling tick")
    _keys = state(None, doc="cached sorted keys matching the patterns")
    _gauge_keys = state(None, doc="cached matching declared-gauge keys")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        raw = p.find_str("patterns", "*")
        self.patterns = [s.strip() for s in raw.split(",") if s.strip()]
        self.period = p.find_time("period", "10us")
        self.max_samples = p.find_int("max_samples", 100_000)
        self.include_gauges = p.find_bool("gauges", False)
        self.register_clock(self.period, self._sample)

    def _matching_keys(self) -> List[str]:
        if self._keys is None:
            all_keys = [
                key for key in self.sim.stats()
                if not key.startswith(f"{self.name}.")
            ]
            self._keys = sorted(
                key for key in all_keys
                if any(fnmatch.fnmatch(key, pat) for pat in self.patterns)
            )
        return self._keys

    def _matching_gauge_keys(self) -> List[str]:
        if not self.include_gauges:
            return []
        if self._gauge_keys is None:
            keys = []
            for comp in self.sim._components.values():
                if comp.name == self.name:
                    continue
                for spec in type(comp)._gauge_specs:
                    keys.append(f"{comp.name}.{spec.attr}")
            self._gauge_keys = sorted(
                key for key in keys
                if any(fnmatch.fnmatch(key, pat) for pat in self.patterns)
            )
        return self._gauge_keys

    def _sample(self, cycle: int):
        if len(self.samples) >= self.max_samples:
            return True  # unregister the clock
        row: Dict[str, Any] = {"time_ps": self.now}
        stats = self.sim.stats()
        for key in self._matching_keys():
            stat = stats.get(key)
            row[key] = stat.value() if stat is not None else None
        if self.include_gauges:
            components = self.sim._components
            wanted = set(self._matching_gauge_keys())
            for comp in components.values():
                for attr, value in comp.telemetry_gauges().items():
                    key = f"{comp.name}.{attr}"
                    if key in wanted:
                        row[key] = value
        self.samples.append(row)
        # A sampler must never keep the simulation alive: when no other
        # events remain (our own tick was just consumed), stop ticking.
        if self.sim.pending_events == 0:
            return True
        return False

    # -- output -----------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.samples)

    def keys(self) -> List[str]:
        return list(self._matching_keys()) + self._matching_gauge_keys()

    def to_table(self) -> ResultTable:
        columns = (["time_ps"] + self._matching_keys()
                   + self._matching_gauge_keys())
        table = ResultTable(columns, title=f"time series ({self.name})")
        for row in self.samples:
            table.add_row(**row)
        return table

    def series(self, key: str) -> List[float]:
        """One statistic's (or declared gauge's) sampled values over time."""
        if key not in self.keys():
            raise KeyError(f"{key!r} not sampled (patterns {self.patterns})")
        return [row.get(key) for row in self.samples]

    def deltas(self, key: str) -> List[float]:
        """Per-interval increments of a cumulative statistic (rates)."""
        values = self.series(key)
        return [b - a for a, b in zip(values, values[1:])]
