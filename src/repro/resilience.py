"""Checkpoint/restart and failure modelling (paper §3.1 and §5 hooks).

The Teller testbed description calls out its per-node SSDs as
"enabling us to study local checkpointing strategies", and the §5
objective-function list makes reliability a first-class design
concern.  This module supplies both rungs of the prediction ladder for
that study:

* **analytic** — the classic Daly/Young checkpoint-interval model:
  optimal interval and expected completion time under exponential
  failures;
* **simulated** — :class:`CheckpointedJob`, a component that runs a
  fixed amount of work under injected failures, alternating compute
  segments and checkpoint writes, losing un-checkpointed progress on
  every failure.  Its measured completion times validate (and at
  extreme parameters, correct) the analytic model.

Checkpoint *targets* capture the §3.1 comparison: a node-local SSD
gives every node its full write bandwidth, while a shared parallel
filesystem divides its aggregate bandwidth across all nodes — so local
checkpointing wins at scale.

.. note::
   This module *models* checkpointing of **simulated jobs** — the
   checkpoints here are fictional payloads whose write times and
   rework costs are part of the studied system.  Checkpointing of the
   **engine itself** (snapshot a live simulation to disk, resume or
   repartition it later, warm-start sweeps) is a different subsystem:
   :mod:`repro.ckpt`, documented in ``docs/CHECKPOINT.md``.  The two
   compose — a run full of :class:`CheckpointedJob` components can
   itself be engine-checkpointed mid-flight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .core.component import Component, stat, state
from .core.registry import register
from .core.units import SimTime, bytes_time


# ----------------------------------------------------------------------
# failure model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FailureModel:
    """Exponential failures: node MTBF shrinks to system MTBF with scale."""

    node_mtbf_s: float
    n_nodes: int = 1

    def __post_init__(self):
        if self.node_mtbf_s <= 0 or self.n_nodes < 1:
            raise ValueError("invalid failure model")

    @property
    def system_mtbf_s(self) -> float:
        """Any-node-fails MTBF: node MTBF / N (independent exponentials)."""
        return self.node_mtbf_s / self.n_nodes

    @property
    def system_mtbf_ps(self) -> SimTime:
        return int(self.system_mtbf_s * 1e12)


# ----------------------------------------------------------------------
# checkpoint targets (§3.1: local SSD vs shared parallel filesystem)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CheckpointTarget:
    """Where checkpoints go and how fast they get there."""

    name: str
    #: per-node write bandwidth when writing alone (bytes/s)
    node_bandwidth: float
    #: aggregate ceiling shared by all nodes (None = no shared ceiling,
    #: i.e. node-local storage)
    aggregate_bandwidth: Optional[float] = None
    write_latency_ps: SimTime = 1_000_000  # 1 us setup

    def effective_node_bandwidth(self, n_nodes: int) -> float:
        """Per-node bandwidth when all nodes checkpoint simultaneously."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.aggregate_bandwidth is None:
            return self.node_bandwidth
        return min(self.node_bandwidth, self.aggregate_bandwidth / n_nodes)

    def checkpoint_time_ps(self, state_bytes_per_node: int,
                           n_nodes: int) -> SimTime:
        bw = self.effective_node_bandwidth(n_nodes)
        return self.write_latency_ps + bytes_time(state_bytes_per_node, bw)


#: A Micron C400-class SATA SSD in every node (the Teller configuration).
LOCAL_SSD = CheckpointTarget("local-ssd", node_bandwidth=250e6)
#: A shared parallel filesystem: fast in aggregate, divided at scale.
PARALLEL_FS = CheckpointTarget("parallel-fs", node_bandwidth=1.0e9,
                               aggregate_bandwidth=20e9)
#: In-memory buddy checkpointing: near-network-speed, for comparison.
BUDDY_MEMORY = CheckpointTarget("buddy-memory", node_bandwidth=3.2e9)

TARGETS = {t.name: t for t in (LOCAL_SSD, PARALLEL_FS, BUDDY_MEMORY)}


# ----------------------------------------------------------------------
# the Daly/Young analytic model
# ----------------------------------------------------------------------

def young_interval_s(checkpoint_s: float, mtbf_s: float) -> float:
    """Young's first-order optimum: sqrt(2 * delta * M)."""
    if checkpoint_s <= 0 or mtbf_s <= 0:
        raise ValueError("checkpoint time and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_s * mtbf_s)


def daly_interval_s(checkpoint_s: float, mtbf_s: float) -> float:
    """Daly's higher-order optimum (his eq. 37, the perturbation form).

    Falls back to M itself when delta >= 2M (checkpointing pointless).
    """
    if checkpoint_s <= 0 or mtbf_s <= 0:
        raise ValueError("checkpoint time and MTBF must be positive")
    if checkpoint_s >= 2.0 * mtbf_s:
        return mtbf_s
    x = checkpoint_s / (2.0 * mtbf_s)
    return math.sqrt(2.0 * checkpoint_s * mtbf_s) * (
        1.0 + math.sqrt(x) / 3.0 + x / 9.0
    ) - checkpoint_s


def expected_runtime_s(work_s: float, interval_s: float, checkpoint_s: float,
                       restart_s: float, mtbf_s: float) -> float:
    """Daly's expected completion time under exponential failures.

    T = M * e^{R/M} * (e^{(tau+delta)/M} - 1) * W / tau
    """
    if min(work_s, interval_s, mtbf_s) <= 0 or checkpoint_s < 0 or restart_s < 0:
        raise ValueError("invalid parameters")
    segments = work_s / interval_s
    per_segment = mtbf_s * math.exp(restart_s / mtbf_s) * (
        math.exp((interval_s + checkpoint_s) / mtbf_s) - 1.0
    )
    return per_segment * segments


# ----------------------------------------------------------------------
# the simulated job
# ----------------------------------------------------------------------

@register("resilience.CheckpointedJob")
class CheckpointedJob(Component):
    """A job that computes, checkpoints and survives injected failures.

    Parameters: ``work`` (total compute, e.g. "10s" of simulated time),
    ``interval`` (compute per checkpoint), ``checkpoint_time``,
    ``restart_time``, ``mtbf`` (system MTBF; failures are exponential),
    ``max_failures`` (safety valve, default 10_000).

    Statistics: ``completed_work_ps``, ``failures``, ``rework_ps``
    (progress lost to failures), ``checkpoint_ps`` (overhead written),
    ``runtime_ps``.

    Failure semantics: a failure strikes at an exponential time from
    the last failure/restart.  If it lands during a compute segment or
    a checkpoint write, all progress since the last completed
    checkpoint is lost and the job pays ``restart_time`` before
    resuming.  (Failures during restart restart the restart.)
    """

    _done_work = state(0, gauge=True, doc="checkpointed progress (ps)")
    _next_failure = state(0, doc="absolute time of the next drawn failure")
    _phase_started = state(0, doc="start time of the interruptible phase")
    _pending_progress = state(0, doc="computed but not yet checkpointed")

    s_completed = stat.counter("completed_work_ps", doc="work finished")
    s_failures = stat.counter(doc="failures struck")
    s_rework = stat.counter("rework_ps", doc="progress lost to failures")
    s_checkpoint = stat.counter("checkpoint_ps", doc="overhead written")
    s_runtime = stat.counter("runtime_ps", doc="wall time of the job")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.total_work = p.find_time("work", "10s")
        self.interval = p.find_time("interval", "1s")
        self.checkpoint_time = p.find_time("checkpoint_time", "10ms")
        self.restart_time = p.find_time("restart_time", "30ms")
        self.mtbf = p.find_time("mtbf", "1000s")
        self.max_failures = p.find_int("max_failures", 10_000)
        if min(self.total_work, self.interval, self.mtbf) <= 0:
            raise ValueError(f"{name}: work, interval, mtbf must be positive")
        self.register_as_primary()

    # -- failure sampling ----------------------------------------------
    def _draw_failure(self) -> None:
        u = float(self.rng.random())
        gap = max(1, int(-math.log(max(u, 1e-300)) * self.mtbf))
        self._next_failure = self.now + gap

    # -- state machine ----------------------------------------------------
    def on_setup(self) -> None:
        self._draw_failure()
        self._start_segment()

    def _start_segment(self) -> None:
        remaining = self.total_work - self._done_work
        if remaining <= 0:
            self.s_completed.add(self._done_work - self.s_completed.count)
            self.s_runtime.add(self.now - self.s_runtime.count)
            self.primary_ok_to_end()
            return
        segment = min(self.interval, remaining)
        self._run_phase(segment, self._segment_done, payload=segment)

    def _run_phase(self, duration: SimTime, on_success, payload=None) -> None:
        """Run a phase that a failure can interrupt."""
        self._phase_started = self.now
        end = self.now + duration
        if self._next_failure < end:
            # A failure drawn at/before "now" (boundary case) strikes
            # immediately.
            self.schedule(max(0, self._next_failure - self.now),
                          self._on_failure)
        else:
            self.schedule(duration, on_success, payload)

    def _segment_done(self, segment: SimTime) -> None:
        # Segment computed; now write the checkpoint (also failure-prone).
        self._pending_progress = segment
        remaining_after = self.total_work - self._done_work - segment
        if remaining_after <= 0:
            # Final segment: no checkpoint needed, job is done.
            self._done_work += segment
            self._start_segment()
            return
        self._run_phase(self.checkpoint_time, self._checkpoint_done)

    def _checkpoint_done(self, _payload) -> None:
        self._done_work += self._pending_progress
        self._pending_progress = 0
        self.s_checkpoint.add(self.checkpoint_time)
        self._start_segment()

    def _on_failure(self, _payload) -> None:
        if self.s_failures.count >= self.max_failures:
            raise RuntimeError(f"{self.name}: exceeded max_failures")
        self.s_failures.add()
        # Progress since the last checkpoint is lost.
        lost = self.now - self._phase_started
        self._pending_progress = 0
        self.s_rework.add(max(0, lost))
        self._draw_failure()
        self._run_phase(self.restart_time, self._restart_done)

    def _restart_done(self, _payload) -> None:
        self._start_segment()

    @property
    def runtime_ps(self) -> SimTime:
        return self.s_runtime.count


def simulate_job(*, work_s: float, interval_s: float, checkpoint_s: float,
                 restart_s: float, mtbf_s: float, seed: int = 1,
                 name: str = "job") -> CheckpointedJob:
    """Convenience wrapper: build, run and return a finished job."""
    from .core import Params, Simulation

    sim = Simulation(seed=seed)
    job = CheckpointedJob(sim, name, Params({
        "work": int(work_s * 1e12),
        "interval": int(interval_s * 1e12),
        "checkpoint_time": int(checkpoint_s * 1e12),
        "restart_time": int(restart_s * 1e12),
        "mtbf": int(mtbf_s * 1e12),
    }))
    result = sim.run()
    if result.reason != "exit":
        raise RuntimeError(f"job did not finish: {result.reason}")
    return job
