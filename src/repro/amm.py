"""Abstract Machine Models (paper §5.1).

An AMM is "a simplified description of a computer system that allows
reasoning about that system" — the lightest rung on the prediction
ladder, below simulation.  The paper lists compiler machine models,
tool input models, analytical models (PRAM, **LogP**) and detailed ISA
manuals as examples, and stresses that an AMM must be *evolvable*:
created rough, then refined as simulators and measurements feed back.

This module provides:

* :class:`MachineModel` — a parameterised node+network description
  (the "analytical model" flavour: a small number of parameters,
  simple analysis);
* :class:`LogPParams` — the classic L/o/g/P network model, derivable
  *from* a MachineModel or fitted from simulation;
* analytic predictors for the motifs the miniapp library uses
  (compute phases, halo exchanges, recursive-doubling all-reduces),
  mirroring the simulator's structure so predictions and simulations
  can be cross-validated (``tests/integration/test_amm_validation.py``
  and ``benchmarks/bench_ext_amm.py`` do exactly that — the
  "multi-fidelity" workflow of §5);
* :func:`fit_from_simulation` — refine an AMM's network parameters from
  measured ping-pong simulations, the evolve-the-model loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from .core.units import SimTime, parse_bandwidth, parse_time
from .processor.core import CoreConfig, CoreTimingModel
from .processor.mix import WorkloadSpec, workload as lookup_workload
from .memory.dram import DRAMModel


@dataclass(frozen=True)
class LogPParams:
    """The LogP network model: Latency, overhead, gap, Processors.

    All times in picoseconds; ``G`` (gap per byte) extends LogP to
    LogGP for large messages.
    """

    L: SimTime  #: end-to-end wire/switch latency
    o: SimTime  #: per-message send/receive software overhead
    g: SimTime  #: minimum gap between consecutive messages
    G: float  #: gap per byte (1 / effective bandwidth, ps/byte)
    P: int  #: processor count

    def message_time(self, nbytes: int) -> SimTime:
        """One point-to-point message: o + L + G*n + o."""
        return int(2 * self.o + self.L + self.G * nbytes)

    def __post_init__(self):
        if min(self.L, self.o, self.g) < 0 or self.G < 0 or self.P < 1:
            raise ValueError("invalid LogP parameters")


@dataclass(frozen=True)
class MachineModel:
    """A small-parameter abstract machine: node + memory + network.

    This is deliberately *not* a ConfigGraph: it has no components, no
    events — just the numbers needed for back-of-envelope reasoning.
    ``to_logp`` projects the network side onto LogP.
    """

    name: str = "amm"
    #: node
    cores_per_node: int = 8
    issue_width: int = 2
    core_freq_hz: float = 2.0e9
    #: memory
    memory_technology: str = "DDR3-1333"
    memory_channels: int = 1
    #: network
    injection_bandwidth: float = 3.2e9  #: bytes/s
    link_latency_ps: SimTime = 20_000
    send_overhead_ps: SimTime = 500_000
    recv_overhead_ps: SimTime = 300_000
    hops_estimate: float = 3.0  #: mean router hops for "typical" traffic
    hop_latency_ps: SimTime = 10_000
    n_nodes: int = 64

    @classmethod
    def from_strings(cls, *, injection_bandwidth: str = "3.2GB/s",
                     link_latency: str = "20ns", **kwargs) -> "MachineModel":
        return cls(injection_bandwidth=parse_bandwidth(injection_bandwidth),
                   link_latency_ps=parse_time(link_latency), **kwargs)

    def to_logp(self) -> LogPParams:
        """Project onto LogP: L from hops+wire, o from software overheads."""
        latency = int(self.link_latency_ps
                      + self.hops_estimate * self.hop_latency_ps)
        overhead = (self.send_overhead_ps + self.recv_overhead_ps) // 2
        gap_per_byte = 1e12 / self.injection_bandwidth
        return LogPParams(L=latency, o=overhead, g=overhead,
                          G=gap_per_byte,
                          P=self.n_nodes * self.cores_per_node)

    def evolve(self, **changes) -> "MachineModel":
        """A refined copy — the §5.1 point that AMMs are living objects."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# analytic predictors (the "back of the envelope" rung)
# ----------------------------------------------------------------------

def predict_compute_ps(model: MachineModel, workload_name: str,
                       instructions: int, n_sharers: int = 1) -> SimTime:
    """Compute-phase prediction via the same roofline the simulator uses.

    (Sharing the functional core model between the AMM and the DES is
    deliberate: the AMM abstracts the *machine*, not the math.)
    """
    spec = lookup_workload(workload_name)
    core = CoreTimingModel(
        CoreConfig(issue_width=model.issue_width,
                   freq_hz=model.core_freq_hz), spec)
    dram = DRAMModel(model.memory_technology, channels=model.memory_channels)
    return core.standalone_runtime_ps(instructions, dram, n_sharers=n_sharers)


def predict_exchange_ps(model: MachineModel, n_neighbors: int,
                        msg_size: int, msgs_per_neighbor: int = 1) -> SimTime:
    """Halo-exchange prediction under LogGP.

    Sends serialise through the NIC (injection gap dominates for large
    messages); the phase ends when the last inbound message lands:
    serialisation of our own sends + one flight time.
    """
    logp = model.to_logp()
    n_messages = n_neighbors * msgs_per_neighbor
    if n_messages == 0:
        return 0
    per_message_gap = int(model.send_overhead_ps + logp.G * msg_size)
    serialisation = n_messages * per_message_gap
    flight = logp.L + int(logp.G * msg_size) + model.recv_overhead_ps
    return serialisation + flight


def predict_allreduce_ps(model: MachineModel, n_ranks: int,
                         nbytes: int = 8) -> SimTime:
    """Recursive-doubling all-reduce: ceil(log2 P) rounds of small
    sendrecvs, each costing one LogP message time."""
    if n_ranks <= 1:
        return 0
    rounds = math.ceil(math.log2(n_ranks))
    logp = model.to_logp()
    return rounds * logp.message_time(nbytes)


def predict_halo_app_iteration_ps(model: MachineModel, *, n_ranks: int,
                                  n_neighbors: int, msg_size: int,
                                  msgs_per_neighbor: int,
                                  compute_ps: SimTime,
                                  allreduces: int = 0,
                                  overlap_fraction: float = 0.0) -> SimTime:
    """One iteration of a :class:`repro.miniapps.apps.HaloApp`, analytically.

    Mirrors the skeleton-app engine's phase structure: an exchange
    (optionally overlapped with a slice of compute), the remaining
    compute, then the collectives.
    """
    exchange = predict_exchange_ps(model, n_neighbors, msg_size,
                                   msgs_per_neighbor)
    overlap = int(overlap_fraction * compute_ps)
    first = max(exchange, overlap)
    rest = compute_ps - overlap
    collectives = allreduces * predict_allreduce_ps(model, n_ranks)
    return first + rest + collectives


# ----------------------------------------------------------------------
# model refinement from simulation (the evolve loop)
# ----------------------------------------------------------------------

def fit_from_simulation(model: MachineModel, *, seed: int = 3,
                        probe_sizes=(64, 65536, 1 << 20)) -> MachineModel:
    """Refine the AMM's network parameters against ping-pong simulations.

    Runs two-endpoint message-latency probes on the *simulated* NIC pair
    at several message sizes, then solves for effective per-message
    overhead+latency (intercept) and per-byte gap (slope).  Returns an
    evolved copy of the model.  This is the feedback arrow in the
    paper's multi-fidelity methodology: simulators calibrate AMMs, AMMs
    steer where to point the simulator next.
    """
    import numpy as np

    from .core import Params, Simulation
    from .network import Nic, PatternEndpoint

    def probe(nbytes: int) -> float:
        sim = Simulation(seed=seed)
        # Space sends far beyond the largest transfer time so measured
        # latency is uncontaminated by NIC queueing behind earlier sends.
        gap_ps = max(parse_time("50us"),
                     int(4 * nbytes / model.injection_bandwidth * 1e12))
        src = PatternEndpoint(sim, "src", Params({
            "endpoint_id": 0, "n_endpoints": 2, "pattern": "neighbor",
            "count": 2, "size": nbytes, "gap": gap_ps, "expected": 0}))
        dst = PatternEndpoint(sim, "dst", Params({
            "endpoint_id": 1, "n_endpoints": 2, "count": 0, "expected": 2}))
        nic_kwargs = {
            "injection_bandwidth": model.injection_bandwidth,
            "send_overhead": model.send_overhead_ps,
            "recv_overhead": model.recv_overhead_ps,
        }
        nic_s = Nic(sim, "nic_s", Params(nic_kwargs))
        nic_d = Nic(sim, "nic_d", Params(nic_kwargs))
        sim.connect(src, "nic", nic_s, "cpu", latency="1ns")
        sim.connect(dst, "nic", nic_d, "cpu", latency="1ns")
        sim.connect(nic_s, "net", nic_d, "net",
                    latency=model.link_latency_ps)
        result = sim.run()
        assert result.reason == "exit"
        return sim.stats()["dst.latency_ps"].mean

    sizes = np.array(probe_sizes, dtype=float)
    times = np.array([probe(int(s)) for s in probe_sizes])
    slope, intercept = np.polyfit(sizes, times, 1)
    # slope ps/byte -> effective bandwidth; intercept -> overhead+latency.
    fitted_bw = 1e12 / max(slope, 1e-12)
    fitted_latency = max(0, int(intercept
                                - model.send_overhead_ps
                                - model.recv_overhead_ps))
    return model.evolve(injection_bandwidth=fitted_bw,
                        link_latency_ps=max(fitted_latency, 1),
                        hops_estimate=0.0)
