"""Job descriptions and the events of the cluster workload family.

A :class:`Job` is the unit of work flowing through the scheduling
pipeline: emitted by :class:`~repro.cluster.source.JobSource` inside a
:class:`JobArrival`, queued and placed by
:class:`~repro.cluster.scheduler.Scheduler` (a :class:`JobLaunch` to the
node pool), timed out by :class:`~repro.cluster.node.NodePool` (a
:class:`JobCompletion` back), and finally accounted by
:class:`~repro.cluster.slostats.SLOStats` via a :class:`JobReport`.

Everything here is plain, slot-based and picklable — jobs ride engine
checkpoints inside scheduler queues and in-flight events.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core import Event
from ..core.units import SimTime


class Job:
    """One batch job: resource request, timing, and accounting fields.

    ``runtime_ps`` is the *actual* runtime (known to the simulator, not
    to the scheduler); ``estimate_ps`` is the user-supplied runtime
    estimate that backfill reservations are computed from (SWF's
    "requested time").  ``start_ps``/``end_ps`` are filled in by the
    scheduler as the job progresses.
    """

    __slots__ = ("job_id", "submit_ps", "nodes", "runtime_ps",
                 "estimate_ps", "priority", "user", "start_ps", "end_ps")

    def __init__(self, job_id: int, submit_ps: SimTime, nodes: int,
                 runtime_ps: SimTime, estimate_ps: SimTime,
                 priority: int = 0, user: int = 0):
        self.job_id = job_id
        self.submit_ps = submit_ps
        self.nodes = nodes
        self.runtime_ps = runtime_ps
        self.estimate_ps = estimate_ps
        self.priority = priority
        self.user = user
        self.start_ps: Optional[SimTime] = None
        self.end_ps: Optional[SimTime] = None

    @property
    def wait_ps(self) -> SimTime:
        return (self.start_ps or 0) - self.submit_ps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Job {self.job_id} nodes={self.nodes} "
                f"runtime={self.runtime_ps}ps prio={self.priority}>")


class JobArrival(Event):
    """A job entering the system.  ``last=True`` marks the end of the
    stream (``job`` is None on that sentinel), letting the scheduler
    release the exit protocol once its queue drains."""

    __slots__ = ("job", "last")

    def __init__(self, job: Optional[Job], last: bool = False):
        self.job = job
        self.last = last


class JobLaunch(Event):
    """Scheduler -> node pool: start this job now."""

    __slots__ = ("job",)

    def __init__(self, job: Job):
        self.job = job


class JobCompletion(Event):
    """Node pool -> scheduler: the job's actual runtime elapsed."""

    __slots__ = ("job", "node_ids")

    def __init__(self, job: Job, node_ids: Tuple[int, ...] = ()):
        self.job = job
        self.node_ids = node_ids


class JobReport(Event):
    """Scheduler -> SLO collector: one finished job, fully timestamped.

    ``last=True`` (``job`` None) marks the final report of the run so a
    primary collector can hold the exit protocol open until every
    in-flight report has drained off the link."""

    __slots__ = ("job", "last")

    def __init__(self, job: Optional[Job], last: bool = False):
        self.job = job
        self.last = last
