"""The cluster scheduler and its pluggable policy subcomponents.

:class:`Scheduler` owns the job queue and the free-node mirror; *which*
queued jobs start on each scheduling pass is delegated to a
:class:`SchedPolicy` subcomponent loaded through a declared
:func:`~repro.core.describe.slot` — swapping FCFS for EASY backfill is
a one-param config change (``{"policy": "cluster.EASYBackfill"}``),
no component-class edits, exactly SST's subcomponent idiom.

Policies:

* ``cluster.FCFS`` — strict arrival order; the queue head blocks
  everything behind it.
* ``cluster.EASYBackfill`` — FCFS plus EASY backfill: when the head
  does not fit, a reservation (*shadow time*) is computed from running
  jobs' runtime *estimates*, and later jobs may jump ahead iff they
  finish before the shadow time or fit in the nodes the reservation
  leaves spare — utilization rises, the head is never delayed.
* ``cluster.Priority`` — highest ``Job.priority`` first (ties by
  arrival), greedy first-fit.

All policy decisions are deterministic functions of (queue, free
nodes, running set), so runs — and checkpoint-restored runs mid-
backfill — are bit-reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.component import (Component, SubComponent, param, port, slot,
                              stat, state)
from ..core.registry import register
from ..core.units import SimTime
from .events import Job, JobArrival, JobCompletion, JobLaunch, JobReport


class SchedPolicy(SubComponent):
    """Interface for scheduler policy subcomponents.

    One method: :meth:`pick` returns which queued jobs to launch *now*.
    The scheduler owns all bookkeeping; a policy is a pure decision
    procedure plus its own declared statistics/state (which ride the
    parent's checkpoint and telemetry automatically).
    """

    def pick(self, queue: List[Job], free: int, now: SimTime,
             running: Dict[int, Tuple[SimTime, int]]) -> List[Job]:
        """Jobs to launch now, in launch order.

        ``queue`` is the pending list in arrival order (do not mutate),
        ``free`` the schedulable node count, ``running`` maps job id to
        ``(estimated_end_ps, nodes)`` for in-flight jobs.
        """
        raise NotImplementedError


@register("cluster.FCFS")
class FCFSPolicy(SchedPolicy):
    """First-come first-served: launch the queue prefix that fits."""

    s_scheduled = stat.counter("scheduled", doc="jobs launched")
    s_head_blocked = stat.counter("head_blocked",
                                  doc="passes ending with the head waiting")

    def pick(self, queue, free, now, running):
        picked: List[Job] = []
        for job in queue:
            if job.nodes > free:
                self.s_head_blocked.add()
                break
            picked.append(job)
            free -= job.nodes
        self.s_scheduled.add(len(picked))
        return picked


@register("cluster.EASYBackfill")
class EASYBackfillPolicy(SchedPolicy):
    """EASY backfill: FCFS head reservation + conservative hole-filling."""

    scan_limit = param(256, doc="queue prefix scanned for backfill "
                                "candidates per pass")

    _shadow_ps = state(0, gauge=True,
                       doc="current head-reservation (shadow) time")

    s_scheduled = stat.counter("scheduled", doc="jobs launched in order")
    s_backfilled = stat.counter("backfilled",
                                doc="jobs launched ahead of the head")

    def pick(self, queue, free, now, running):
        picked: List[Job] = []
        i = 0
        while i < len(queue) and queue[i].nodes <= free:
            job = queue[i]
            picked.append(job)
            free -= job.nodes
            i += 1
        self.s_scheduled.add(len(picked))
        if i >= len(queue):
            self._shadow_ps = 0
            return picked

        # Reservation for the blocked head: walk estimated releases
        # until enough nodes accumulate.  ``extra`` is what the head
        # will leave unused at the shadow time — backfill jobs running
        # past the shadow may consume at most that.
        head = queue[i]
        releases = sorted(
            [(end, n) for end, n in running.values()]
            + [(now + j.estimate_ps, j.nodes) for j in picked])
        avail = free
        shadow = None
        extra = 0
        for end, n in releases:
            avail += n
            if avail >= head.nodes:
                shadow = end
                extra = avail - head.nodes
                break
        if shadow is None:  # head wider than the machine ever gets
            self._shadow_ps = 0
            return picked
        self._shadow_ps = shadow

        scanned = 0
        for job in queue[i + 1:]:
            if scanned >= self.scan_limit or free <= 0:
                break
            scanned += 1
            if job.nodes > free:
                continue
            ends_before_shadow = now + job.estimate_ps <= shadow
            if ends_before_shadow or job.nodes <= extra:
                picked.append(job)
                free -= job.nodes
                if not ends_before_shadow:
                    extra -= job.nodes
                self.s_backfilled.add()
        return picked


@register("cluster.Priority")
class PriorityPolicy(SchedPolicy):
    """Highest priority first (ties by arrival), greedy first-fit."""

    scan_limit = param(1024, doc="queue prefix considered per pass")

    s_scheduled = stat.counter("scheduled", doc="jobs launched")
    s_jumped = stat.counter("jumped",
                            doc="launches that bypassed an earlier arrival")

    def pick(self, queue, free, now, running):
        window = queue[:self.scan_limit]
        order = sorted(window,
                       key=lambda j: (-j.priority, j.submit_ps, j.job_id))
        picked: List[Job] = []
        for job in order:
            if job.nodes <= free:
                if job is not window[0]:
                    self.s_jumped.add()
                picked.append(job)
                free -= job.nodes
        self.s_scheduled.add(len(picked))
        return picked


@register("cluster.Scheduler")
class Scheduler(Component):
    """Batch scheduler: queue + free-node mirror + pluggable policy.

    Event-driven: a scheduling pass runs on every arrival and every
    completion.  Jobs wider than the machine are counted ``rejected``
    and dropped.  The scheduler is a primary component — the run ends
    only when the arrival stream finished AND queue and running set are
    both empty, so every accepted job completes before exit.
    """

    submit = port("job arrivals from the source", event=JobArrival)
    pool = port("launches out to / completions in from the node pool",
                event=JobCompletion, handler="on_completion")
    report = port("per-job SLO reports to a collector", required=False)

    nodes = param(16, doc="schedulable node count (mirrors the pool)")

    policy = slot("scheduling policy", base=SchedPolicy,
                  default="cluster.FCFS",
                  choices=("cluster.FCFS", "cluster.EASYBackfill",
                           "cluster.Priority"))

    _queue = state(list, gauge=True, doc="pending jobs, arrival order")
    _running = state(dict, gauge=True,
                     doc="job id -> (estimated end, nodes) in flight")
    _free = state(0, gauge=True, doc="free-node mirror")
    _stream_done = state(False, doc="arrival stream exhausted")
    _exit_sent = state(False, doc="final report sentinel sent")

    s_submitted = stat.counter("submitted", doc="jobs accepted into the queue")
    s_started = stat.counter("started", doc="jobs launched")
    s_completed = stat.counter("completed", doc="jobs finished")
    s_rejected = stat.counter("rejected", doc="jobs wider than the machine")
    s_queue_depth = stat.accumulator("queue_depth",
                                     doc="queue length at each pass")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self._free = self.nodes
        self.register_as_primary()

    def on_submit(self, event: JobArrival) -> None:
        if event.last:
            self._stream_done = True
            self._maybe_done()
            return
        job = event.job
        if job.nodes > self.nodes:
            self.s_rejected.add()
            self._maybe_done()
            return
        self.s_submitted.add()
        self._queue.append(job)
        self._dispatch()

    def on_completion(self, event: JobCompletion) -> None:
        job = event.job
        self._running.pop(job.job_id, None)
        self._free += job.nodes
        job.end_ps = self.now
        self.s_completed.add()
        if self.port_connected("report"):
            self.send("report", JobReport(job))
        self._dispatch()
        self._maybe_done()

    def _dispatch(self) -> None:
        self.s_queue_depth.add(len(self._queue))
        if not self._queue or self._free <= 0:
            return
        picked = self.policy.pick(self._queue, self._free, self.now,
                                  self._running)
        if not picked:
            return
        picked_ids = {id(job) for job in picked}
        self._queue = [j for j in self._queue if id(j) not in picked_ids]
        for job in picked:
            job.start_ps = self.now
            self._free -= job.nodes
            self._running[job.job_id] = (self.now + job.estimate_ps,
                                         job.nodes)
            self.s_started.add()
            self.send("pool", JobLaunch(job))

    def _maybe_done(self) -> None:
        if (self._stream_done and not self._queue and not self._running
                and not self._exit_sent):
            self._exit_sent = True
            if self.port_connected("report"):
                # Lets a primary collector keep the run alive until the
                # reports ahead of this sentinel drain off the link.
                self.send("report", JobReport(None, last=True))
            self.primary_ok_to_end()
