"""The machine: a pool of cluster nodes with placement and energy.

:class:`NodePool` executes :class:`~repro.cluster.events.JobLaunch`
events from the scheduler: it picks concrete node ids (placement),
holds them for the job's *actual* runtime, charges node energy through
the :mod:`repro.power` core model, and sends a
:class:`~repro.cluster.events.JobCompletion` back.

Placement is allocation-aware when ``topology="torus"``: node ids are
coordinates on a 2-D torus (the :mod:`repro.network` coordinate
helpers) and an allocation greedily picks the free nodes closest — by
torus hop distance — to a seed node, so the span statistic measures
how fragmented the machine got under each scheduling policy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.component import Component, param, port, stat, state
from ..core.registry import register
from ..network.router import unflatten
from ..power.mcpat_lite import CorePowerModel
from .events import Job, JobCompletion, JobLaunch

PS_PER_S = 1_000_000_000_000


def _torus_hops(a: Tuple[int, ...], b: Tuple[int, ...],
                dims: Tuple[int, ...]) -> int:
    hops = 0
    for x, y, size in zip(a, b, dims):
        d = abs(x - y)
        hops += min(d, size - d)
    return hops


@register("cluster.NodePool")
class NodePool(Component):
    """Allocates nodes to launched jobs and times out their runtimes.

    Node energy uses :class:`~repro.power.mcpat_lite.CorePowerModel` at
    full occupancy: every allocated node retires ``issue_width``
    instructions per cycle for the job's duration, plus leakage — so
    the pool's ``energy_j`` statistic is directly comparable across
    scheduling policies on the same trace (less idle time, less total
    leakage per unit of work).
    """

    sched = port("launches in from / completions out to the scheduler",
                 event=JobLaunch, handler="on_launch")

    nodes = param(16, doc="node count")
    topology = param("torus", choices=("flat", "torus"),
                     doc="placement model: anonymous pool or 2-D torus")
    torus_x = param(0, doc="torus X extent (0 = near-square auto)")
    issue_width = param(4, doc="per-node core issue width (power model)")
    freq_hz = param("2GHz", kind="freq", doc="per-node core frequency")

    _free = state(list, doc="free node ids (kept placement-sorted)")
    _allocs = state(dict, doc="job id -> allocated node id tuple")
    _busy = state(0, gauge=True, doc="allocated node count")
    _energy_j = state(0.0, gauge=True, doc="cumulative node energy, J")

    s_energy = stat.accumulator("energy_j", doc="per-job node energy, J")
    s_node_busy_ps = stat.counter("node_busy_ps",
                                  doc="sum of node-picoseconds allocated")
    s_span = stat.accumulator("alloc_span",
                              doc="max intra-allocation hop distance "
                                  "(torus placement quality)")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        if self.topology == "torus":
            x = self.torus_x
            if x <= 0:
                x = max(1, int(self.nodes ** 0.5))
                while self.nodes % x:
                    x -= 1
            if self.nodes % x:
                raise ValueError(
                    f"{name}: torus_x={x} does not divide nodes={self.nodes}")
            self._dims: Tuple[int, ...] = (x, self.nodes // x)
        else:
            self._dims = (self.nodes,)
        self._model = CorePowerModel(self.issue_width, self.freq_hz)
        self._free = list(range(self.nodes))

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _place(self, want: int) -> Tuple[int, ...]:
        if self.topology == "flat" or want >= len(self._free):
            chosen = self._free[:want]
        else:
            seed = unflatten(self._free[0], self._dims)
            chosen = sorted(
                self._free,
                key=lambda n: (_torus_hops(unflatten(n, self._dims), seed,
                                           self._dims), n))[:want]
        taken = set(chosen)
        self._free = [n for n in self._free if n not in taken]
        return tuple(chosen)

    def _span(self, alloc: Tuple[int, ...]) -> int:
        if self.topology == "flat" or len(alloc) < 2:
            return 0
        coords = [unflatten(n, self._dims) for n in alloc]
        return max(_torus_hops(a, b, self._dims)
                   for i, a in enumerate(coords) for b in coords[i + 1:])

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def on_launch(self, event: JobLaunch) -> None:
        job = event.job
        if job.nodes > len(self._free):
            raise RuntimeError(
                f"{self.name}: launch of job {job.job_id} wants "
                f"{job.nodes} nodes, only {len(self._free)} free — "
                f"scheduler free-node mirror out of sync")
        alloc = self._place(job.nodes)
        self._allocs[job.job_id] = alloc
        self._busy += len(alloc)
        self.s_span.add(self._span(alloc))
        self.schedule(job.runtime_ps, self._complete, job)

    def _complete(self, job: Job) -> None:
        alloc = self._allocs.pop(job.job_id)
        self._free = sorted(self._free + list(alloc))
        self._busy -= len(alloc)
        secs = job.runtime_ps / PS_PER_S
        instructions = self.issue_width * self.freq_hz * secs
        joules = len(alloc) * self._model.energy_j(instructions, secs)
        self._energy_j += joules
        self.s_energy.add(joules)
        self.s_node_busy_ps.add(len(alloc) * job.runtime_ps)
        self.send("sched", JobCompletion(job, node_ids=alloc))
