"""Job arrival streams: synthetic generators and SWF-style traces.

:class:`JobSource` emits :class:`~repro.cluster.events.JobArrival`
events, scaling to millions of jobs without million-entry state: the
stream is a Python *generator* declared ``state(..., save=False)`` with
a ``reconstruct=`` hook, so an engine checkpoint stores only the draw
counter and the reconstruct replays the deterministic stream up to it —
checkpoints stay kilobytes however long the trace.

Modes (the ``mode`` param, a :func:`~repro.core.describe.param`
``choices`` axis):

* ``poisson`` — exponential inter-arrival gaps around
  ``mean_interarrival``;
* ``burst``   — ``burst_size`` simultaneous arrivals every
  ``burst_gap`` (the adversarial shape for the pending-event set:
  deep same-timestamp floods instead of a steady trickle);
* ``trace``   — an SWF-style (Standard Workload Format) whitespace
  trace: columns 0/1/3/4/8 = job id, submit s, runtime s, processors,
  requested-time s; ``;``/``#`` lines are comments.  ``trace_unit``
  maps one trace second onto simulated time.

``window`` arrivals are kept scheduled ahead of now, so a bursty source
genuinely loads the event queue instead of self-pacing one event at a
time.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..core.component import Component, param, port, stable_seed, stat, state
from ..core.registry import register
from .events import Job, JobArrival


@register("cluster.JobSource")
class JobSource(Component):
    """Emits a deterministic stream of job arrivals on its ``out`` port.

    Synthetic jobs mix narrow/short with occasionally wide/long
    (``wide_fraction``) so backfill-friendly holes exist; runtime
    estimates are actual runtime times ``estimate_factor`` (users
    overestimate), which is what EASY reservations consume.
    """

    out = port("job arrivals to the scheduler", event=JobArrival)

    mode = param("poisson", choices=("poisson", "burst", "trace"),
                 doc="arrival process")
    jobs = param(1000, doc="synthetic jobs to emit (trace mode: cap, "
                           "0 = whole trace)")
    mean_interarrival = param("1ms", kind="time",
                              doc="poisson mean inter-arrival gap")
    burst_size = param(64, doc="arrivals per burst (mode=burst)")
    burst_gap = param("100ms", kind="time", doc="gap between bursts")
    mean_runtime = param("10s", kind="time", doc="mean job runtime")
    max_nodes = param(8, doc="widest job emitted")
    wide_fraction = param(0.1, kind="float",
                          doc="fraction of wide (> max_nodes/2) jobs")
    estimate_factor = param(1.5, kind="float",
                            doc="runtime estimate = actual * factor")
    trace = param("", doc="SWF-style trace path (mode=trace)")
    trace_unit = param("1us", kind="time",
                       doc="simulated time per trace second")
    window = param(1, doc="arrival events kept scheduled ahead of now")

    _pulled = state(0, doc="jobs drawn from the stream so far")
    _emitted = state(0, gauge=True, doc="arrivals delivered so far")
    _in_flight = state(0, doc="scheduled arrivals not yet delivered")
    _horizon = state(0, doc="absolute time of the newest scheduled arrival")
    _exhausted = state(False, doc="the stream has no more jobs")
    _done = state(False, doc="end-of-stream sentinel sent")
    _stream = state(None, save=False, reconstruct="_rebuild_stream",
                    doc="live job generator (rebuilt+fast-forwarded on "
                        "restore)")

    s_emitted = stat.counter("emitted", doc="job arrivals emitted")
    s_nodes_requested = stat.accumulator("nodes_requested",
                                         doc="nodes per emitted job")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        if self.window < 1:
            raise ValueError(f"{name}: window must be >= 1")
        self.register_as_primary()

    # ------------------------------------------------------------------
    # the deterministic stream
    # ------------------------------------------------------------------
    def _make_stream(self) -> Iterator[Tuple[int, Job]]:
        """Fresh generator of ``(gap_ps, job)`` pairs.

        Deterministic in (component name, sim seed, params) only — the
        reconstruct hook replays it to the captured draw count, so a
        restored run continues the exact sequence.
        """
        if self.mode == "trace":
            return self._trace_stream()
        return self._synthetic_stream()

    def _synthetic_stream(self) -> Iterator[Tuple[int, Job]]:
        rng = np.random.default_rng(
            stable_seed(f"{self.name}.jobs", self.sim.seed))
        wide_floor = max(1, self.max_nodes // 2)
        narrow_cap = max(1, self.max_nodes // 4)
        for i in range(self.jobs):
            if self.mode == "burst":
                gap = self.burst_gap if i % self.burst_size == 0 else 0
            else:  # poisson
                gap = max(1, int(rng.exponential(self.mean_interarrival)))
            if rng.random() < self.wide_fraction:
                nodes = int(rng.integers(wide_floor, self.max_nodes + 1))
                runtime = max(1, int(rng.exponential(4 * self.mean_runtime)))
            else:
                nodes = int(rng.integers(1, narrow_cap + 1))
                runtime = max(1, int(rng.exponential(self.mean_runtime)))
            estimate = int(runtime * self.estimate_factor) + 1
            priority = int(rng.integers(0, 10))
            yield gap, Job(i + 1, 0, nodes, runtime, estimate,
                           priority=priority, user=int(rng.integers(0, 16)))

    def _trace_stream(self) -> Iterator[Tuple[int, Job]]:
        if not self.trace:
            raise ValueError(f"{self.name}: mode=trace needs a trace= path")
        unit = self.trace_unit
        prev_submit = 0
        emitted = 0
        with open(self.trace, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith((";", "#")):
                    continue
                cols = line.split()
                job_id = int(cols[0])
                submit = int(float(cols[1]) * unit)
                runtime = max(1, int(float(cols[3]) * unit))
                nodes = max(1, int(float(cols[4])))
                requested = float(cols[8]) if len(cols) > 8 else -1
                estimate = (int(requested * unit) if requested > 0
                            else int(runtime * self.estimate_factor) + 1)
                gap = max(0, submit - prev_submit)
                prev_submit = submit
                yield gap, Job(job_id, 0, nodes, runtime,
                               max(estimate, runtime), priority=0)
                emitted += 1
                if self.jobs and emitted >= self.jobs:
                    return

    def _rebuild_stream(self) -> None:
        """Reconstruct hook: fresh generator fast-forwarded to the
        captured draw position (the stream is deterministic, so the
        resumed sequence is bit-identical)."""
        stream = self._make_stream()
        for _ in range(self._pulled):
            next(stream, None)
        self._stream = stream

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def on_setup(self) -> None:
        if self._stream is None:
            self._stream = self._make_stream()
        self._arm()

    def _arm(self) -> None:
        """Keep up to ``window`` future arrivals scheduled."""
        while not self._exhausted and self._in_flight < self.window:
            nxt = next(self._stream, None)
            if nxt is None:
                self._exhausted = True
                break
            gap, job = nxt
            self._pulled += 1
            self._in_flight += 1
            self._horizon += gap
            job.submit_ps = self._horizon
            self.schedule(max(0, self._horizon - self.now), self._deliver,
                          job)
        if self._exhausted and self._in_flight == 0:
            self._finish_stream()

    def _deliver(self, job: Job) -> None:
        self._in_flight -= 1
        self._emitted += 1
        self.s_emitted.add()
        self.s_nodes_requested.add(job.nodes)
        self.send("out", JobArrival(job))
        self._arm()

    def _finish_stream(self) -> None:
        if not self._done:
            self._done = True
            self.send("out", JobArrival(None, last=True))
            self.primary_ok_to_end()
