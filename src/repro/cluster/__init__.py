"""PySST HPC cluster-scheduling workload family.

Batch jobs flow source → scheduler → node pool → SLO collector:
arrival streams (Poisson, burst, SWF-style traces) from
:mod:`~repro.cluster.source`, a queue whose scheduling *policy* is a
pluggable subcomponent slot (FCFS / EASY backfill / priority) in
:mod:`~repro.cluster.scheduler`, topology- and energy-aware node
allocation in :mod:`~repro.cluster.node`, and wait/slowdown/
utilization/makespan accounting in :mod:`~repro.cluster.slostats`.

Component types registered: ``cluster.JobSource``,
``cluster.Scheduler``, ``cluster.NodePool``, ``cluster.SLOStats``;
subcomponent types (for the scheduler's ``policy`` slot):
``cluster.FCFS``, ``cluster.EASYBackfill``, ``cluster.Priority``.
"""

from .events import Job, JobArrival, JobCompletion, JobLaunch, JobReport
from .node import NodePool
from .scheduler import (EASYBackfillPolicy, FCFSPolicy, PriorityPolicy,
                        SchedPolicy, Scheduler)
from .slostats import SLOStats
from .source import JobSource

__all__ = [
    "EASYBackfillPolicy",
    "FCFSPolicy",
    "Job",
    "JobArrival",
    "JobCompletion",
    "JobLaunch",
    "JobReport",
    "JobSource",
    "NodePool",
    "PriorityPolicy",
    "SchedPolicy",
    "Scheduler",
    "SLOStats",
]
