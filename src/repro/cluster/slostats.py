"""Service-level accounting for the cluster workload family.

:class:`SLOStats` consumes :class:`~repro.cluster.events.JobReport`
events and maintains the scheduling literature's standard quality
metrics — wait time, *bounded slowdown* (slowdown with short jobs
damped by ``slowdown_tau``, so a 2 ms job waiting 1 s does not dominate
the tail), machine utilization, and makespan.

Everything :meth:`SLOStats.manifest_summary` reports is derived from
*registered statistics*, never loose instance attributes: the processes
backend ships statistics (only) back from worker ranks, so summaries
stay correct for parallel runs where the collector instance that
counted lives in a child process.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.component import Component, param, port, stat, state
from ..core.registry import register
from .events import JobReport

PS_PER_S = 1_000_000_000_000


@register("cluster.SLOStats")
class SLOStats(Component):
    """Collects per-job reports into cluster-level SLO metrics.

    ``capacity`` must mirror the pool's node count — utilization is
    node-busy time over ``capacity * makespan``.
    """

    report = port("finished-job reports from the scheduler",
                  event=JobReport)

    capacity = param(16, doc="machine node count (utilization basis)")
    slowdown_tau = param("10s", kind="time",
                         doc="bounded-slowdown runtime floor")

    _utilization = state(0.0, gauge=True, doc="busy / (capacity * span)")
    _makespan_ps = state(0, gauge=True, doc="last end - first submit")

    s_jobs = stat.counter("jobs", doc="job reports received")
    s_wait = stat.accumulator("wait_ps", doc="per-job queue wait")
    s_slowdown = stat.histogram("slowdown", low=1.0, bin_width=1.0,
                                n_bins=64,
                                doc="bounded slowdown distribution")
    s_submit = stat.accumulator("submit_ps",
                                doc="submit times (min = workload start)")
    s_end = stat.accumulator("end_ps",
                             doc="completion times (max = makespan end)")
    s_busy = stat.counter("busy_ps", doc="node-picoseconds of useful work")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        # Primary: holds the run open until the scheduler's last-report
        # sentinel arrives, so no in-flight report is dropped at exit.
        self.register_as_primary()

    def on_report(self, event: JobReport) -> None:
        if event.last:
            self.primary_ok_to_end()
            return
        job = event.job
        self.s_jobs.add()
        self.s_wait.add(job.wait_ps)
        denom = max(job.runtime_ps, self.slowdown_tau)
        self.s_slowdown.add(max(1.0,
                                (job.wait_ps + job.runtime_ps) / denom))
        self.s_submit.add(job.submit_ps)
        self.s_end.add(job.end_ps)
        self.s_busy.add(job.nodes * job.runtime_ps)
        self._makespan_ps = int(self.s_end.maximum - self.s_submit.minimum)
        self._utilization = self._compute_utilization()

    def _compute_utilization(self) -> float:
        span = self.s_end.maximum - self.s_submit.minimum
        if span <= 0 or not self.capacity:
            return 0.0
        return self.s_busy.count / (self.capacity * span)

    def manifest_summary(self) -> Dict[str, Any]:
        """SLO roll-up for the run manifest.

        Derived entirely from registered statistics so it is valid on
        the parent rank of a parallel run (instance state is not
        synchronized across process backends; statistics are).
        """
        jobs = self.s_jobs.count
        span = (self.s_end.maximum - self.s_submit.minimum) if jobs else 0
        return {
            "jobs": int(jobs),
            "mean_wait_s": self.s_wait.mean / PS_PER_S,
            "max_wait_s": (self.s_wait.maximum / PS_PER_S) if jobs else 0.0,
            "p95_bounded_slowdown": self.s_slowdown.percentile(0.95),
            "mean_bounded_slowdown": self.s_slowdown.mean,
            "utilization": self._compute_utilization(),
            "makespan_s": span / PS_PER_S,
            "node_busy_s": self.s_busy.count / PS_PER_S,
        }
