"""Clocks: periodic handlers.

A clocked component registers a handler at a frequency; the engine calls
``handler(cycle)`` every period.  Handlers return ``True`` to unregister
(SST's convention), which lets idle components drop off the clock and
stop generating events — essential for letting the simulation terminate
and for keeping the pure-Python event loop affordable.

A cancelled/paused clock can be reactivated with
:meth:`Clock.reactivate`, which resumes on the *next* aligned cycle
boundary so a clock that slept keeps its phase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .event import PRIORITY_CLOCK, Event
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .simulation import Simulation

#: Clock handlers take the cycle index, return True to unregister.
ClockHandler = Callable[[int], Optional[bool]]


class _ClockTickEvent(Event):
    """Tick token carrying a generation stamp.

    Cancel/reactivate bumps the clock's generation so a stale tick left
    in the queue from before the cancel is ignored instead of causing a
    double tick.
    """

    __slots__ = ("generation",)

    def __init__(self, generation: int):
        self.generation = generation


class Clock:
    """A recurring tick source bound to one handler.

    Created via :meth:`Simulation.register_clock`.  ``cycle`` counts
    handler invocations since registration (including while inactive the
    count does *not* advance — it is a tick count, not wall time).
    """

    __slots__ = ("sim", "name", "period", "handler", "priority", "cycle",
                 "active", "_next_tick", "_generation")

    def __init__(self, sim: "Simulation", name: str, period: SimTime,
                 handler: ClockHandler, priority: int = PRIORITY_CLOCK,
                 phase: SimTime = 0):
        if period <= 0:
            raise ValueError(f"clock {name!r}: period must be positive")
        if phase < 0:
            raise ValueError(f"clock {name!r}: phase must be non-negative")
        self.sim = sim
        self.name = name
        self.period = period
        self.handler = handler
        self.priority = priority
        self.cycle = 0
        self.active = True
        self._generation = 0
        first = sim.now + phase + period
        self._next_tick = first
        sim._push(first, priority, self._tick, _ClockTickEvent(0))

    def _tick(self, event: _ClockTickEvent) -> None:
        if not self.active or event.generation != self._generation:
            return  # cancelled (or cancelled+reactivated) while in flight
        self.cycle += 1
        done = self.handler(self.cycle)
        if done is True:
            self.active = False
            return
        self._next_tick += self.period
        self.sim._push(self._next_tick, self.priority, self._tick, event)

    def cancel(self) -> None:
        """Deactivate; the in-flight tick (if any) becomes a no-op."""
        self.active = False
        self._generation += 1

    def reactivate(self) -> None:
        """Resume ticking on the next aligned period boundary after `now`."""
        if self.active:
            return
        self.active = True
        now = self.sim.now
        if self._next_tick <= now:
            # Advance to the first aligned boundary strictly after now.
            behind = now - self._next_tick
            steps = behind // self.period + 1
            self._next_tick += steps * self.period
        self.sim._push(self._next_tick, self.priority, self._tick,
                       _ClockTickEvent(self._generation))

    @property
    def next_tick_time(self) -> SimTime:
        return self._next_tick

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "stopped"
        return f"Clock({self.name!r}, period={self.period}ps, cycle={self.cycle}, {state})"
