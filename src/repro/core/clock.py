"""Clocks: periodic handlers.

A clocked component registers a handler at a frequency; the engine calls
``handler(cycle)`` every period.  Handlers return ``True`` to unregister
(SST's convention), which lets idle components drop off the clock and
stop generating events — essential for letting the simulation terminate
and for keeping the pure-Python event loop affordable.

A cancelled/paused clock can be reactivated with
:meth:`Clock.reactivate`, which resumes on the *next* aligned cycle
boundary so a clock that slept keeps its phase.

Shared clock arbiter
--------------------
Real SST drives all same-frequency components from one shared tick
source.  :class:`ClockArbiter` reproduces that: every clock with the
same ``(period, priority, phase residue)`` shares ONE queue event per
tick boundary, and the arbiter fires the registered handlers in
registration order when it pops.  For a fabric of N same-frequency
components this turns N heap pushes/pops per cycle into 1 — the single
biggest win available to a pure-Python PDES core.

Determinism: the arbiter's tick event is pushed at the same times and
with the same priority as the per-clock tick events it replaces, so its
``(time, priority, seq)`` tie-breaking against link events is
bit-identical to the unshared scheme; within one boundary, handlers run
in clock registration order, exactly as the per-clock events (pushed in
registration order, hence ascending seq) used to.

``cancel``/``reactivate`` stay O(1): cancel flips ``active`` (the
arbiter skips inactive members), reactivate realigns the member's due
time and at most re-arms the shared chain event.  The per-clock
generation stamp semantics are preserved for standalone clocks (the
arbiter can be disabled via ``Simulation(clock_arbiter=False)`` or the
``REPRO_CLOCK_ARBITER=0`` environment knob).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from .event import PRIORITY_CLOCK, Event
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .simulation import Simulation

#: Clock handlers take the cycle index, return True to unregister.
ClockHandler = Callable[[int], Optional[bool]]


class _ClockTickEvent(Event):
    """Tick token carrying a generation stamp.

    Cancel/reactivate bumps the clock's generation so a stale tick left
    in the queue from before the cancel is ignored instead of causing a
    double tick.
    """

    __slots__ = ("generation",)

    def __init__(self, generation: int):
        self.generation = generation


class _ArbiterTickEvent(Event):
    """Shared tick token for one :class:`ClockArbiter` chain.

    Carries the arbiter's generation stamp: re-arming the chain at an
    earlier boundary (reactivate) bumps the generation, so the
    superseded chain event left in the queue becomes a no-op — the same
    stale-tick protocol standalone clocks use per clock.
    """

    __slots__ = ("generation",)

    def __init__(self, generation: int):
        self.generation = generation


class Clock:
    """A recurring tick source bound to one handler.

    Created via :meth:`Simulation.register_clock`.  ``cycle`` counts
    handler invocations since registration (including while inactive the
    count does *not* advance — it is a tick count, not wall time).

    With an arbiter the clock is a passive member: the arbiter owns the
    queue event and calls the handler; without one the clock schedules
    its own ``_tick`` chain (the pre-arbiter behaviour).
    """

    __slots__ = ("sim", "name", "period", "handler", "priority", "cycle",
                 "active", "_next_tick", "_generation", "_arbiter",
                 "_in_arbiter")

    def __init__(self, sim: "Simulation", name: str, period: SimTime,
                 handler: ClockHandler, priority: int = PRIORITY_CLOCK,
                 phase: SimTime = 0, arbiter: Optional["ClockArbiter"] = None):
        if period <= 0:
            raise ValueError(f"clock {name!r}: period must be positive")
        if phase < 0:
            raise ValueError(f"clock {name!r}: phase must be non-negative")
        self.sim = sim
        self.name = name
        self.period = period
        self.handler = handler
        self.priority = priority
        self.cycle = 0
        self.active = True
        self._generation = 0
        first = sim.now + phase + period
        self._next_tick = first
        self._arbiter = arbiter
        self._in_arbiter = False
        if arbiter is not None:
            arbiter.add(self)
        else:
            sim._push(first, priority, self._tick, _ClockTickEvent(0))

    def _tick(self, event: _ClockTickEvent) -> None:
        if not self.active or event.generation != self._generation:
            return  # cancelled (or cancelled+reactivated) while in flight
        self.cycle += 1
        done = self.handler(self.cycle)
        if done is True:
            self.active = False
            return
        self._next_tick += self.period
        self.sim._push(self._next_tick, self.priority, self._tick, event)

    def cancel(self) -> None:
        """Deactivate; the in-flight tick (if any) becomes a no-op."""
        self.active = False
        self._generation += 1

    def reactivate(self) -> None:
        """Resume ticking on the next aligned period boundary after `now`."""
        if self.active:
            return
        self.active = True
        now = self.sim.now
        if self._next_tick <= now:
            # Advance to the first aligned boundary strictly after now.
            behind = now - self._next_tick
            steps = behind // self.period + 1
            self._next_tick += steps * self.period
        if self._arbiter is not None:
            self._arbiter.rejoin(self)
        else:
            self.sim._push(self._next_tick, self.priority, self._tick,
                           _ClockTickEvent(self._generation))

    @property
    def next_tick_time(self) -> SimTime:
        return self._next_tick

    # -- checkpoint support ------------------------------------------------
    def capture_state(self) -> dict:
        """The clock's mutable scheduling state (`repro.ckpt`).

        Period/priority/handler are rebuilt from the configuration; only
        what advances during a run is captured.  The tick chain event
        itself lives in the event queue and is captured there.
        """
        return {
            "name": self.name,
            "cycle": self.cycle,
            "active": self.active,
            "next_tick": self._next_tick,
            "generation": self._generation,
        }

    def restore_state(self, state: dict) -> None:
        if state["name"] != self.name:
            raise ValueError(
                f"clock state mismatch: captured {state['name']!r}, "
                f"restoring onto {self.name!r}"
            )
        self.cycle = state["cycle"]
        self.active = state["active"]
        self._next_tick = state["next_tick"]
        self._generation = state["generation"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "stopped"
        return f"Clock({self.name!r}, period={self.period}ps, cycle={self.cycle}, {state})"


class ClockArbiter:
    """One shared tick chain driving all clocks of one (period, priority,
    phase residue) class.

    Owned by :class:`Simulation` (one per distinct key, created on
    demand by ``register_clock``).  At most ONE ``_ArbiterTickEvent``
    for this arbiter is live in the queue at any time; when it pops, the
    arbiter fires every active member whose due time equals ``now`` (in
    registration order), advances them by one period, and re-arms the
    chain at the earliest due time of any active member.  Members whose
    due time lies in the future (deferred phase starts, reactivations)
    are simply skipped until their boundary comes up.

    Invariant: while any member is active, the chain event is scheduled
    at ``min(member due times)``; with no active members the chain goes
    quiet and costs nothing until a reactivate re-arms it.
    """

    __slots__ = ("sim", "period", "priority", "name", "_members",
                 "_generation", "_scheduled_time", "_dispatching",
                 "_resched_hint")

    def __init__(self, sim: "Simulation", period: SimTime, priority: int,
                 name: str):
        self.sim = sim
        self.period = period
        self.priority = priority
        self.name = name
        self._members: List[Clock] = []
        self._generation = 0
        #: time the live chain event is scheduled for (None = no chain)
        self._scheduled_time: Optional[SimTime] = None
        self._dispatching = False
        #: earliest re-arm request made during a dispatch (see rejoin)
        self._resched_hint: Optional[SimTime] = None

    def __len__(self) -> int:
        return len(self._members)

    @property
    def active_members(self) -> int:
        return sum(1 for clock in self._members if clock.active)

    def add(self, clock: Clock) -> None:
        """Register a new member (called from ``Clock.__init__``)."""
        self._members.append(clock)
        clock._in_arbiter = True
        self._ensure_scheduled(clock._next_tick)

    def rejoin(self, clock: Clock) -> None:
        """Re-arm for a reactivated member (O(1) amortised).

        A member compacted away while inactive re-enters at the end of
        the member list, so its ordering within a shared boundary is by
        reactivation time from then on — the same order a standalone
        clock's freshly pushed tick event (with a later seq) would get.
        """
        if not clock._in_arbiter:
            self._members.append(clock)
            clock._in_arbiter = True
        self._ensure_scheduled(clock._next_tick)

    def _ensure_scheduled(self, when: SimTime) -> None:
        """Guarantee the chain will pop at or before ``when``.

        Inductively sufficient: every dispatch re-arms at the earliest
        remaining due time, so a chain event at ``t <= when`` covers all
        boundaries up to ``when``.
        """
        scheduled = self._scheduled_time
        if scheduled is not None and scheduled <= when:
            return  # covered by the live chain
        if self._dispatching:
            # The dispatch epilogue re-arms; just lower its bound.
            hint = self._resched_hint
            if hint is None or when < hint:
                self._resched_hint = when
            return
        if scheduled is not None:
            # A later chain event is live; supersede it (stale-generation
            # protocol, same as standalone cancel/reactivate).
            self._generation += 1
        self._scheduled_time = when
        self.sim._push(when, self.priority, self._dispatch,
                       _ArbiterTickEvent(self._generation))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, event: _ArbiterTickEvent) -> None:
        """Bare-path dispatch: fire due members, re-arm the chain.

        The kernel counts the popped record as one executed event; the
        extra ``fired - 1`` handler invocations are added to the
        simulation's event counter here so ``events_executed`` keeps
        meaning "handler deliveries", identical to per-clock scheduling.
        """
        if event.generation != self._generation:
            return  # superseded chain event
        sim = self.sim
        now = sim.now
        self._scheduled_time = None
        self._dispatching = True
        self._resched_hint = None
        fired = 0
        inactive = 0
        next_due: Optional[SimTime] = None
        period = self.period
        try:
            for clock in self._members:
                if not clock.active:
                    inactive += 1
                    continue
                due = clock._next_tick
                if due == now:
                    fired += 1
                    clock.cycle += 1
                    if clock.handler(clock.cycle) is True:
                        clock.active = False
                        inactive += 1
                        continue
                    due += period
                    clock._next_tick = due
                if next_due is None or due < next_due:
                    next_due = due
        finally:
            self._dispatching = False
        if fired > 1:
            sim._events_executed += fired - 1
        self._rearm(event, next_due, inactive)

    def _dispatch_instrumented(self, event: _ArbiterTickEvent, traces,
                               span_fns, perf) -> int:
        """Observer-visible dispatch: one trace/span per fired member.

        Called by the compiled ``Simulation._instr`` closure instead of
        :meth:`_dispatch`, so observers see every member tick exactly as
        they did under per-clock scheduling: the reported handler is the
        member clock's bound ``_tick`` (which profiler/tracelog already
        know how to attribute), one span per member with that member's
        own measured duration.  Returns the number of members fired (the
        heartbeat increment for this record).
        """
        if event.generation != self._generation:
            return 0
        sim = self.sim
        now = sim.now
        self._scheduled_time = None
        self._dispatching = True
        self._resched_hint = None
        fired = 0
        inactive = 0
        next_due: Optional[SimTime] = None
        period = self.period
        try:
            for clock in self._members:
                if not clock.active:
                    inactive += 1
                    continue
                due = clock._next_tick
                if due == now:
                    fired += 1
                    label = clock._tick  # attribution target, not called
                    for fn in traces:
                        fn(now, label, event)
                    clock.cycle += 1
                    if span_fns:
                        t0 = perf()
                        done = clock.handler(clock.cycle)
                        elapsed = perf() - t0
                        for fn in span_fns:
                            fn(now, label, event, elapsed)
                    else:
                        done = clock.handler(clock.cycle)
                    if done is True:
                        clock.active = False
                        inactive += 1
                        continue
                    due += period
                    clock._next_tick = due
                if next_due is None or due < next_due:
                    next_due = due
        finally:
            self._dispatching = False
        if fired > 1:
            sim._events_executed += fired - 1
        self._rearm(event, next_due, inactive)
        return fired

    def _rearm(self, event: _ArbiterTickEvent, next_due: Optional[SimTime],
               inactive: int) -> None:
        hint = self._resched_hint
        if hint is not None and (next_due is None or hint < next_due):
            next_due = hint
        members = self._members
        if inactive and inactive * 2 > len(members):
            # Compact once the dead weight dominates; removed members
            # re-enter through rejoin() on reactivate.
            live = [clock for clock in members if clock.active]
            for clock in members:
                if not clock.active:
                    clock._in_arbiter = False
            self._members = live
        if next_due is not None:
            self._scheduled_time = next_due
            # Reuse the chain event object: same generation, one live
            # chain event at a time.
            event.generation = self._generation
            self.sim._push(next_due, self.priority, self._dispatch, event)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def capture_state(self, clock_index) -> dict:
        """Chain state for `repro.ckpt`.

        ``clock_index`` maps a member Clock to its position in the
        simulation's registration-ordered clock list, which is the
        identity that survives a rebuild.  Member *order* matters: it is
        the within-boundary firing order, part of the determinism
        contract.
        """
        return {
            "generation": self._generation,
            "scheduled_time": self._scheduled_time,
            "members": [clock_index[id(clock)] for clock in self._members],
        }

    def restore_state(self, state: dict, clocks) -> None:
        """Restore chain state captured by :meth:`capture_state`.

        ``clocks`` is the rebuilt simulation's registration-ordered
        clock list.  The chain event itself is restored with the event
        queue; here we only rebuild the member list (dropping members
        that were compacted away at capture time) and the stamps the
        chain event will be validated against.
        """
        members = [clocks[i] for i in state["members"]]
        in_members = {id(clock) for clock in members}
        for clock in self._members:
            if id(clock) not in in_members:
                clock._in_arbiter = False
        for clock in members:
            clock._in_arbiter = True
        self._members = members
        self._generation = state["generation"]
        self._scheduled_time = state["scheduled_time"]
        self._dispatching = False
        self._resched_hint = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ClockArbiter({self.name!r}, period={self.period}ps, "
                f"members={len(self._members)}, "
                f"active={self.active_members})")
