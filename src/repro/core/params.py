"""Typed, unit-aware component parameters.

SST components receive their configuration as a flat string->string
dictionary and pull values out with typed ``find`` calls.  PySST keeps
the same shape: a :class:`Params` wraps a plain dict and offers typed
accessors (including the unit-parsing ones from :mod:`repro.core.units`),
tracks which keys were consumed, and can report unused keys — the most
common way a silent misconfiguration is caught.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterator, Mapping, Optional, Set

from . import units
from .units import SimTime

_MISSING = object()


class ParamError(KeyError):
    """A required parameter is missing or malformed."""


class UnusedParamsWarning(UserWarning):
    """A parameter key was configured but never read by its component.

    Emitted once per component by :meth:`Params.finalize_check` (called
    from ``Simulation.setup()``), so sweep configs with typoed keys stop
    silently no-oping."""


class Params(Mapping[str, Any]):
    """Flat parameter dictionary with typed, unit-aware accessors.

    >>> p = Params({"clock": "2GHz", "cache_size": "64KB", "verbose": "true"})
    >>> p.find_period("clock")
    500
    >>> p.find_size_bytes("cache_size")
    65536
    >>> p.find_bool("verbose")
    True
    """

    def __init__(self, data: Optional[Mapping[str, Any]] = None, *, scope: str = ""):
        self._data: Dict[str, Any] = dict(data or {})
        self._scope = scope
        self._consumed: Set[str] = set()
        self._parent: Optional["Params"] = None
        self._finalized = False

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        value = self._data[key]
        self._consumed.add(key)
        parent = self._parent
        if parent is not None and key in parent._data:
            parent._consumed.add(key)
        return value

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Params({self._data!r})"

    # -- core find --------------------------------------------------------
    def _fetch(self, key: str, default: Any, required: bool) -> Any:
        if key in self._data:
            self._consumed.add(key)
            parent = self._parent
            if parent is not None and key in parent._data:
                parent._consumed.add(key)
            return self._data[key]
        if required and default is _MISSING:
            where = f" in scope {self._scope!r}" if self._scope else ""
            raise ParamError(f"required parameter {key!r} not found{where}")
        return default

    def find(self, key: str, default: Any = _MISSING) -> Any:
        """Fetch a raw value; raises :class:`ParamError` if absent and no default."""
        value = self._fetch(key, default, required=True)
        return None if value is _MISSING else value

    def find_str(self, key: str, default: Any = _MISSING) -> str:
        value = self._fetch(key, default, required=True)
        return str(value)

    def find_int(self, key: str, default: Any = _MISSING) -> int:
        value = self._fetch(key, default, required=True)
        try:
            return int(str(value), 0) if isinstance(value, str) else int(value)
        except (TypeError, ValueError):
            raise ParamError(f"parameter {key!r}={value!r} is not an integer") from None

    def find_float(self, key: str, default: Any = _MISSING) -> float:
        value = self._fetch(key, default, required=True)
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ParamError(f"parameter {key!r}={value!r} is not a float") from None

    _TRUE = {"1", "true", "yes", "on", "t", "y"}
    _FALSE = {"0", "false", "no", "off", "f", "n"}

    def find_bool(self, key: str, default: Any = _MISSING) -> bool:
        value = self._fetch(key, default, required=True)
        if isinstance(value, bool):
            return value
        text = str(value).strip().lower()
        if text in self._TRUE:
            return True
        if text in self._FALSE:
            return False
        raise ParamError(f"parameter {key!r}={value!r} is not a boolean")

    # -- unit-aware finds ---------------------------------------------------
    def find_time(self, key: str, default: Any = _MISSING, default_unit: str = "ps") -> SimTime:
        """Fetch a latency/delay as integer picoseconds (e.g. ``"10ns"``)."""
        value = self._fetch(key, default, required=True)
        try:
            return units.parse_time(value, default_unit=default_unit)
        except units.UnitError as exc:
            raise ParamError(f"parameter {key!r}: {exc}") from None

    def find_period(self, key: str, default: Any = _MISSING) -> SimTime:
        """Fetch a clock frequency and return its period in picoseconds."""
        value = self._fetch(key, default, required=True)
        try:
            return units.freq_to_period(value)
        except units.UnitError as exc:
            raise ParamError(f"parameter {key!r}: {exc}") from None

    def find_freq_hz(self, key: str, default: Any = _MISSING) -> float:
        value = self._fetch(key, default, required=True)
        try:
            return units.parse_freq_hz(value)
        except units.UnitError as exc:
            raise ParamError(f"parameter {key!r}: {exc}") from None

    def find_size_bytes(self, key: str, default: Any = _MISSING) -> int:
        value = self._fetch(key, default, required=True)
        try:
            return units.parse_size_bytes(value)
        except units.UnitError as exc:
            raise ParamError(f"parameter {key!r}: {exc}") from None

    def find_bandwidth(self, key: str, default: Any = _MISSING) -> float:
        """Fetch a bandwidth in bytes/second (e.g. ``"3.2GB/s"``)."""
        value = self._fetch(key, default, required=True)
        try:
            return units.parse_bandwidth(value)
        except units.UnitError as exc:
            raise ParamError(f"parameter {key!r}: {exc}") from None

    # -- structure ----------------------------------------------------------
    def scoped(self, prefix: str) -> "Params":
        """Sub-dictionary of keys starting with ``prefix + '.'``, prefix stripped.

        >>> Params({"l1.size": "32KB", "l2.size": "256KB"}).scoped("l1")["size"]
        '32KB'
        """
        dotted = prefix if prefix.endswith(".") else prefix + "."
        sub = {k[len(dotted):]: v for k, v in self._data.items() if k.startswith(dotted)}
        # Scoping counts as consumption of the parent keys.
        for k in self._data:
            if k.startswith(dotted):
                self._consumed.add(k)
        scope = f"{self._scope}.{prefix}" if self._scope else prefix
        return Params(sub, scope=scope)

    def merged(self, overrides: Optional[Mapping[str, Any]]) -> "Params":
        """New Params with ``overrides`` laid on top of this one."""
        data = dict(self._data)
        data.update(overrides or {})
        return Params(data, scope=self._scope)

    def with_defaults(self, defaults: Mapping[str, Any]) -> "Params":
        """New Params with ``defaults`` underneath this one.

        Unlike :meth:`merged`, the child stays linked to this instance:
        fetching a key through the child also marks it consumed here, so
        :meth:`finalize_check` on the original Params keeps working when
        a component reads everything through a defaults overlay (the
        miniapp pattern)."""
        child = Params({**defaults, **self._data}, scope=self._scope)
        child._parent = self
        return child

    def accept(self, *keys: str) -> None:
        """Mark ``keys`` as consumed whether or not they are read.

        For components that deliberately ignore some configured keys —
        e.g. a topology helper hands every router the full shape
        description but each router kind reads only its slice."""
        for key in keys:
            if key in self._data:
                self._consumed.add(key)
                parent = self._parent
                if parent is not None and key in parent._data:
                    parent._consumed.add(key)

    def unused_keys(self) -> Set[str]:
        """Keys never fetched through any ``find*`` accessor."""
        return set(self._data) - self._consumed

    def finalize_check(self, owner: str = "") -> Set[str]:
        """Warn (once) about configured keys that were never read.

        Called by ``Simulation.setup()`` for every component after all
        setups ran; safe to call again (idempotent).  Returns the set of
        unused keys so tests and tooling can assert on it."""
        unused = self.unused_keys()
        if unused and not self._finalized:
            self._finalized = True
            who = owner or self._scope or "<anonymous>"
            keys = ", ".join(sorted(unused))
            warnings.warn(
                f"component {who!r}: parameter key(s) never read: {keys} "
                f"(typo, or call params.accept() for deliberately unused keys)",
                UnusedParamsWarning,
                stacklevel=2,
            )
        return unused

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._data)
