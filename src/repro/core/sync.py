"""Layer 2: synchronization strategies for the parallel engine.

A :class:`SyncStrategy` is the *policy* half of
:class:`~repro.core.parallel.ParallelSimulation` — it decides when
ranks may run and how far, while an
:class:`~repro.core.backends.ExecutionBackend` decides where the rank
kernels execute.  Extracting it from the engine's run loop makes
conservative sync a replaceable object instead of inlined control flow
(an optimistic / time-warp strategy would slot in here without touching
the backends).

Two strategies are implemented.  :class:`ConservativeSync` is SST's
barrier-epoch protocol:

* **lookahead** — the smallest latency of any cross-rank link.  An
  event executed at ``t >= gmin`` cannot affect another rank before
  ``t + lookahead``, so every rank may run through
  ``gmin + lookahead - 1`` without coordination.
* **exchange** — cross-rank sends accumulate as outbox entries
  ``(time, priority, link_id, dest_rank, send_seq, event)``; before
  each epoch they are sorted on the global deterministic key
  ``(time, priority, link_id, send_seq)`` and split per destination
  rank, so the receiving queue's tie-breaking is independent of rank
  execution order — and therefore of the execution backend.

:class:`AdaptiveConservativeSync` keeps the same exchange protocol but
widens the window per epoch from each rank's *earliest-possible-send
bound*: the earliest time rank ``r`` could execute anything (its queued
``next_time`` or this epoch's earliest delivery to it) plus the
smallest latency of any cross-rank link ``r`` can send on.  No send can
arrive before ``min`` of those bounds, so the window may safely run to
``min(bounds) - 1`` — never narrower than the conservative
``gmin + L_min - 1``.  Select a strategy by name through
:func:`make_sync` (``sync="adaptive"`` on the engine/CLI).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from . import units
from .units import SimTime

_INF = float("inf")

#: One cross-rank send in flight:
#: ``(time, priority, link_id, dest_rank, send_seq, event)``.
OutboxEntry = Tuple[SimTime, int, int, int, int, Any]


class SyncStrategy:
    """Interface: epoch-window policy for a multi-rank simulation."""

    name = "base"

    #: conservative window width (ps); engines expose this as .lookahead
    lookahead: SimTime

    def note_cross_link(self, latency: SimTime,
                        rank_a: Optional[int] = None,
                        rank_b: Optional[int] = None) -> None:
        """Observe a new rank-crossing link of the given latency.

        ``rank_a``/``rank_b`` name the two endpoint ranks; strategies
        that reason per rank (adaptive lookahead) use them, the base
        conservative policy ignores them.
        """
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """Self-description embedded in telemetry streams and manifests.

        Post-hoc tools (``python -m repro obs``) read this back from run
        artifacts to label sync lanes and normalize epoch windows, so
        the keys are part of the telemetry schema: ``strategy`` and
        ``lookahead_ps`` are always present; strategies may add more.
        """
        return {"strategy": self.name, "lookahead_ps": self.lookahead}

    def add_pending(self, entries: List[OutboxEntry]) -> None:
        """Queue cross-rank sends awaiting delivery."""
        raise NotImplementedError

    def global_min(self) -> float:
        """Earliest pending work anywhere (``inf`` when idle)."""
        raise NotImplementedError

    def window_end(self, global_min: SimTime,
                   limit: Optional[SimTime]) -> SimTime:
        """Inclusive end of the next safe window."""
        raise NotImplementedError

    def exchange(self, num_ranks: int) -> Tuple[List[List[OutboxEntry]], int]:
        """Sort pending sends and split them per destination rank."""
        raise NotImplementedError


class ConservativeSync(SyncStrategy):
    """SST's conservative barrier-epoch protocol as a policy object.

    Owns the pieces ``ParallelSimulation.run`` used to inline: the
    lookahead bound, the set of in-flight cross-rank sends, the global
    earliest-work computation and the deterministic exchange ordering.
    The engine's run loop asks this object for the next window and
    feeds back each epoch's :class:`~repro.core.backends.RankStep`
    results via :meth:`absorb`.
    """

    name = "conservative"

    def __init__(self) -> None:
        self._lookahead: Optional[SimTime] = None
        #: undelivered cross-rank sends, keyed by destination rank
        #: (setup-time sends land here before the first epoch; epoch
        #: outboxes via absorb()).  Kept per destination so the exchange
        #: sort and the pipe writes are one batch per receiving rank.
        self.pending: Dict[int, List[OutboxEntry]] = {}
        #: per-rank earliest queued event, refreshed each epoch.
        self.next_times: List[Optional[SimTime]] = []

    # ------------------------------------------------------------------
    # lookahead
    # ------------------------------------------------------------------
    def note_cross_link(self, latency: SimTime,
                        rank_a: Optional[int] = None,
                        rank_b: Optional[int] = None) -> None:
        if self._lookahead is None or latency < self._lookahead:
            self._lookahead = latency

    @property
    def lookahead(self) -> SimTime:
        """Conservative sync window: min latency among cross-rank links.

        With no cross-rank links the ranks are independent and the
        window is unbounded (represented as a large constant).
        """
        return self._lookahead if self._lookahead is not None else units.PS_PER_SEC

    # ------------------------------------------------------------------
    # epoch-window computation
    # ------------------------------------------------------------------
    def add_pending(self, entries: List[OutboxEntry]) -> None:
        pending = self.pending
        for entry in entries:
            dest = entry[3]
            bucket = pending.get(dest)
            if bucket is None:
                pending[dest] = [entry]
            else:
                bucket.append(entry)

    def global_min(self) -> float:
        """Earliest pending work anywhere: queued events or undelivered sends."""
        lowest: float = _INF
        for t in self.next_times:
            if t is not None and t < lowest:
                lowest = t
        for bucket in self.pending.values():
            for entry in bucket:
                if entry[0] < lowest:
                    lowest = entry[0]
        return lowest

    def window_end(self, global_min: SimTime,
                   limit: Optional[SimTime]) -> SimTime:
        # Safe window: any send made while executing t >= global_min
        # arrives at >= global_min + lookahead, i.e. after the window.
        end = int(global_min) + self.lookahead - 1
        if limit is not None:
            end = min(end, limit)
        return end

    # ------------------------------------------------------------------
    # cross-rank exchange
    # ------------------------------------------------------------------
    def exchange(self, num_ranks: int) -> Tuple[List[List[OutboxEntry]], int]:
        """Deterministically order pending sends, split per destination.

        Entries are sorted on the global ``(time, priority, link_id,
        send_seq)`` key inside each destination list, so the receiving
        queue assigns local sequence numbers in a backend-independent
        order.  Sorting each destination bucket separately is equivalent
        to the historical sort-then-split of one flat list: splitting is
        stable, so the per-destination order of a globally sorted list
        is exactly the bucket sorted on the same key.
        """
        deliveries: List[List[OutboxEntry]] = [[] for _ in range(num_ranks)]
        if not self.pending:
            return deliveries, 0
        exchanged = 0
        for dest, bucket in self.pending.items():
            bucket.sort(key=lambda e: (e[0], e[1], e[2], e[4]))
            deliveries[dest] = bucket
            exchanged += len(bucket)
        self.pending = {}
        return deliveries, exchanged

    def absorb(self, steps) -> None:
        """Fold one epoch's per-rank results back into the policy state.

        ``step.outbox`` is per destination rank (see
        :class:`~repro.core.backends.RankStep`); buckets merge into the
        matching pending bucket.
        """
        self.next_times = [step.next_time for step in steps]
        pending = self.pending
        for step in steps:
            outbox = step.outbox
            if not outbox:
                continue
            for dest, entries in enumerate(outbox):
                if not entries:
                    continue
                bucket = pending.get(dest)
                if bucket is None:
                    pending[dest] = list(entries)
                else:
                    bucket.extend(entries)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def export_pending(self, cross_links: Dict[int, Any]) -> List[Tuple]:
        """Undelivered cross-rank sends in a partitioning-portable form.

        `repro.ckpt` snapshots at epoch boundaries (after outboxes were
        absorbed), so ``pending`` is exactly the set of sends the next
        epoch's exchange would deliver.  Link ids are partition-local,
        so each entry also names its target ``(component, port)`` —
        identity that survives restoring onto a different rank count.
        Returns tuples ``(time, priority, link_id, dest_component,
        dest_port, send_seq, event)``.
        """
        exported: List[Tuple] = []
        for dest_rank, bucket in sorted(self.pending.items()):
            for (time, priority, link_id, dest, send_seq, event) in bucket:
                xlink = cross_links[link_id]
                port = xlink.port_b if dest == xlink.rank_b else xlink.port_a
                exported.append((time, priority, link_id,
                                 port.component.name, port.name,
                                 send_seq, event))
        return exported


class AdaptiveConservativeSync(ConservativeSync):
    """Conservative protocol with a per-epoch earliest-send bound.

    The conservative window assumes every rank might send on the
    globally fastest cross-rank link *right now*.  This strategy keeps
    that as the floor but computes, per epoch, when the earliest
    cross-rank send could actually *arrive*:

    * rank ``r`` cannot execute anything before
      ``t_r = min(next_time_r, earliest delivery to r this epoch)``;
    * any send ``r`` makes travels over one of its own outgoing
      cross-rank links, so it arrives no earlier than
      ``t_r + min_out_latency_r``;
    * ranks with no outgoing cross-rank links never constrain the
      window at all.

    The window end is ``min over ranks of (t_r + min_out_r) - 1``,
    clamped below by the conservative ``gmin + L_min - 1`` (the bound
    can only be *wider*: ``t_r >= gmin`` and ``min_out_r >= L_min``).

    The exchange key and per-destination ordering are inherited
    unchanged, so delivery order — and every ``(time, priority, seq)``
    trace — stays bit-identical to :class:`ConservativeSync` whenever
    the widened boundaries skip only empty exchanges, which is exactly
    when widening happens (a pending send collapses the bound back to
    the boundary before its arrival).
    """

    name = "adaptive"

    def __init__(self) -> None:
        super().__init__()
        #: per-rank min latency among the rank's *outgoing* cross links
        self._min_out: Dict[int, SimTime] = {}
        #: per-rank earliest entry time delivered by this epoch's
        #: exchange (next_times is refreshed only at absorb(), so the
        #: deliveries are the one piece of "new earliest work" the
        #: window computation would otherwise miss).
        self._delivered_min: Dict[int, SimTime] = {}
        #: how often / how far the adaptive bound beat the conservative
        #: window (ps of extra width), for describe() and diagnostics.
        self.windows_widened = 0
        self.widened_ps = 0

    def note_cross_link(self, latency: SimTime,
                        rank_a: Optional[int] = None,
                        rank_b: Optional[int] = None) -> None:
        super().note_cross_link(latency, rank_a, rank_b)
        # Links are bidirectional: either endpoint rank may send on it.
        for rank in (rank_a, rank_b):
            if rank is None:
                continue
            current = self._min_out.get(rank)
            if current is None or latency < current:
                self._min_out[rank] = latency

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["adaptive"] = True
        info["windows_widened"] = self.windows_widened
        info["widened_ps"] = self.widened_ps
        return info

    def exchange(self, num_ranks: int) -> Tuple[List[List[OutboxEntry]], int]:
        deliveries, exchanged = super().exchange(num_ranks)
        delivered = self._delivered_min
        delivered.clear()
        if exchanged:
            for dest, bucket in enumerate(deliveries):
                if bucket:
                    # buckets are sorted by (time, ...): first is earliest
                    delivered[dest] = bucket[0][0]
        return deliveries, exchanged

    def window_end(self, global_min: SimTime,
                   limit: Optional[SimTime]) -> SimTime:
        conservative = int(global_min) + self.lookahead - 1
        next_times = self.next_times
        delivered = self._delivered_min
        bound: float = _INF
        for rank, out_latency in self._min_out.items():
            queued = next_times[rank] if rank < len(next_times) else None
            earliest: float = queued if queued is not None else _INF
            arrived = delivered.get(rank)
            if arrived is not None and arrived < earliest:
                earliest = arrived
            if earliest + out_latency < bound:
                bound = earliest + out_latency
        if bound == _INF:
            # No rank can ever send: ranks are (currently) independent,
            # same unbounded-window convention as the no-cross-link case.
            end = int(global_min) + units.PS_PER_SEC - 1
        else:
            end = max(conservative, int(bound) - 1)
        if limit is not None:
            conservative = min(conservative, limit)
            end = min(end, limit)
        if end > conservative:
            self.windows_widened += 1
            self.widened_ps += end - conservative
        return end


#: selectable strategies, by CLI/engine name
SYNC_STRATEGIES: Dict[str, type] = {
    "conservative": ConservativeSync,
    "adaptive": AdaptiveConservativeSync,
}


def make_sync(name: str) -> SyncStrategy:
    """Instantiate a sync strategy by registry name."""
    try:
        cls = SYNC_STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown sync strategy {name!r}; expected one of "
            f"{sorted(SYNC_STRATEGIES)}") from None
    return cls()
