"""Unit-bearing quantities and simulated-time algebra.

SST expresses every configuration quantity ("2GHz", "1ns", "3.2GB/s",
"64KiB") as a *UnitAlgebra* string.  This module provides the same
convenience for PySST: parsing, arithmetic and conversion of the handful
of unit families an architectural simulator needs:

* time          (s, ms, us, ns, ps)
* frequency     (Hz, kHz, MHz, GHz)
* bytes         (B, kB/KiB, MB/MiB, GB/GiB, TB/TiB)
* bandwidth     (B/s, kB/s, MB/s, GB/s, ... and the binary variants)

Internally simulated time is an integer number of **picoseconds** —
``SimTime`` below — which keeps event timestamps exact, cheap to compare
and free of floating-point drift over long runs (the same reason SST
uses an integer core time base).
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Union

# Simulated time: integer picoseconds.
SimTime = int

#: picoseconds per second
PS_PER_SEC: int = 10**12

_TIME_SUFFIX = {
    "s": 10**12,
    "ms": 10**9,
    "us": 10**6,
    "ns": 10**3,
    "ps": 1,
}

_FREQ_SUFFIX = {
    "hz": 1.0,
    "khz": 1e3,
    "mhz": 1e6,
    "ghz": 1e9,
    "thz": 1e12,
}

# Decimal (SI) and binary (IEC) byte multipliers.  Like SST we accept the
# sloppy-but-universal convention that "KB" means 1024 in memory sizes;
# the strict decimal form is available via "kB" handling below only when
# explicitly chosen.  To keep behaviour predictable we treat *all* byte
# sizes as binary multiples, and *all* bandwidths as decimal multiples —
# matching DRAM datasheet convention (a 1600 MT/s x64 DIMM moves 12.8
# "decimal" GB/s) and memory-size convention (a 64KB cache is 65536 B).
_SIZE_SUFFIX = {
    "b": 1,
    "kb": 1024,
    "kib": 1024,
    "mb": 1024**2,
    "mib": 1024**2,
    "gb": 1024**3,
    "gib": 1024**3,
    "tb": 1024**4,
    "tib": 1024**4,
}

_BW_SUFFIX = {
    "b/s": 1.0,
    "kb/s": 1e3,
    "mb/s": 1e6,
    "gb/s": 1e9,
    "tb/s": 1e12,
    "kib/s": 1024.0,
    "mib/s": 1024.0**2,
    "gib/s": 1024.0**3,
}

_NUM_RE = re.compile(r"^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]*)\s*$")


class UnitError(ValueError):
    """Raised when a unit string cannot be parsed."""


def _split(text: str) -> tuple[float, str]:
    match = _NUM_RE.match(text)
    if not match:
        raise UnitError(f"cannot parse quantity: {text!r}")
    return float(match.group(1)), match.group(2).lower()


def parse_time(value: Union[str, int, float], default_unit: str = "ps") -> SimTime:
    """Parse a latency/period such as ``"1ns"`` into integer picoseconds.

    Bare numbers are interpreted in ``default_unit``.  The result is
    rounded to the nearest picosecond; sub-picosecond quantities raise.

    The string path is memoized (:func:`functools.lru_cache`): the same
    handful of latency/period strings is parsed per config-graph edge
    during builds and per ``RunContext.for_sim``, so repeat parses are a
    dict hit instead of a regex match.

    >>> parse_time("1ns")
    1000
    >>> parse_time("2.5us")
    2500000
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        number, unit = float(value), default_unit
        try:
            scale = _TIME_SUFFIX[unit.lower()]
        except KeyError:
            raise UnitError(f"unknown time unit {unit!r} in {value!r}") from None
        ps = number * scale
        result = int(round(ps))
        if ps > 0 and result == 0:
            raise UnitError(f"time {value!r} is below the 1 ps core resolution")
        if result < 0:
            raise UnitError(f"time {value!r} is negative")
        return result
    return _parse_time_str(str(value), default_unit)


@lru_cache(maxsize=4096)
def _parse_time_str(text: str, default_unit: str) -> SimTime:
    number, unit = _split(text)
    unit = unit or default_unit
    try:
        scale = _TIME_SUFFIX[unit.lower()]
    except KeyError:
        raise UnitError(f"unknown time unit {unit!r} in {text!r}") from None
    ps = number * scale
    result = int(round(ps))
    if ps > 0 and result == 0:
        raise UnitError(f"time {text!r} is below the 1 ps core resolution")
    if result < 0:
        raise UnitError(f"time {text!r} is negative")
    return result


def parse_freq_hz(value: Union[str, int, float], default_unit: str = "hz") -> float:
    """Parse a clock frequency such as ``"2.4GHz"`` into Hz.

    >>> parse_freq_hz("2GHz")
    2000000000.0
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        number, unit = float(value), default_unit
    else:
        number, unit = _split(str(value))
        unit = unit or default_unit
    try:
        scale = _FREQ_SUFFIX[unit.lower()]
    except KeyError:
        raise UnitError(f"unknown frequency unit {unit!r} in {value!r}") from None
    hz = number * scale
    if hz <= 0:
        raise UnitError(f"frequency {value!r} must be positive")
    return hz


def freq_to_period(value: Union[str, int, float]) -> SimTime:
    """Convert a frequency string to an integer period in picoseconds.

    Frequencies that do not divide 1e12 ps evenly are rounded to the
    nearest picosecond (a 3 GHz clock gets a 333 ps period).

    >>> freq_to_period("1GHz")
    1000
    """
    hz = parse_freq_hz(value)
    period = int(round(PS_PER_SEC / hz))
    if period <= 0:
        raise UnitError(f"frequency {value!r} exceeds the 1 ps core resolution")
    return period


def parse_size_bytes(value: Union[str, int, float]) -> int:
    """Parse a memory size such as ``"64KB"`` into bytes (binary multiples).

    >>> parse_size_bytes("64KB")
    65536
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return int(value)
    number, unit = _split(str(value))
    unit = unit or "b"
    try:
        scale = _SIZE_SUFFIX[unit.lower()]
    except KeyError:
        raise UnitError(f"unknown size unit {unit!r} in {value!r}") from None
    result = int(round(number * scale))
    if result < 0:
        raise UnitError(f"size {value!r} is negative")
    return result


def parse_bandwidth(value: Union[str, int, float]) -> float:
    """Parse a bandwidth such as ``"3.2GB/s"`` into bytes per second.

    >>> parse_bandwidth("3.2GB/s")
    3200000000.0
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    number, unit = _split(str(value))
    if not unit:
        return number
    try:
        scale = _BW_SUFFIX[unit.lower()]
    except KeyError:
        raise UnitError(f"unknown bandwidth unit {unit!r} in {value!r}") from None
    bw = number * scale
    if bw < 0:
        raise UnitError(f"bandwidth {value!r} is negative")
    return bw


def bytes_time(nbytes: float, bandwidth_bps: float) -> SimTime:
    """Time in ps to move ``nbytes`` at ``bandwidth_bps`` bytes/second.

    Always at least 1 ps for a non-empty transfer so that events never
    arrive at zero delay over a bandwidth-limited resource.
    """
    if nbytes <= 0:
        return 0
    if bandwidth_bps <= 0:
        raise UnitError("bandwidth must be positive")
    ps = nbytes / bandwidth_bps * PS_PER_SEC
    return max(1, int(round(ps)))


def format_time(ps: SimTime) -> str:
    """Human-readable rendering of a picosecond count.

    >>> format_time(2_500_000)
    '2.500us'
    """
    if ps == 0:
        return "0ps"
    for unit, scale in (("s", 10**12), ("ms", 10**9), ("us", 10**6), ("ns", 10**3)):
        if ps >= scale:
            return f"{ps / scale:.3f}{unit}"
    return f"{ps}ps"


def format_bytes(nbytes: float) -> str:
    """Human-readable rendering of a byte count (binary multiples)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.2f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
