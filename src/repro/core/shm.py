"""Shared-memory epoch exchange for the processes backend.

The pipe transport pays one pickled round-trip per rank per epoch —
wakeup, framing and serialization costs that dominate fine-grained
epochs.  This module replaces the *data plane* with
``multiprocessing.shared_memory``:

* **one segment for the run**, carved into per-rank regions.  Each
  region holds a control block (epoch counters) plus two single-writer
  byte rings: a *down* ring (parent → worker: this epoch's deliveries)
  and an *up* ring (worker → parent: the step result and outbox);
* **framed slots** on the rings carry flat-encoded outbox entries
  ``(time, priority, link_id, dest_rank, send_seq, payload)`` — see the
  flat event codec in :mod:`repro.core.event` (pickle fallback for
  arbitrary payloads);
* **the barrier is a counter spin**: the parent bumps a per-rank
  ``cmd`` counter to open an epoch and waits on the worker's ``done``
  counter — a few dozen shared-memory reads plus a short sleep instead
  of a pipe round-trip per rank.

The *control plane* stays on the pipes: snapshot requests, the final
statistics harvest (``finish``), shutdown and error reporting all use
the existing pickled pipe commands, so ``repro.ckpt`` snapshots work
unchanged under ``transport="shm"``.

Memory model: every multi-byte control word (ring head/tail, epoch
counters) has exactly one writer, is 8-byte aligned, and is written
with a single ``struct.pack_into`` — the same single-writer seqlock
discipline the live-metrics segment (:mod:`repro.obs.live.segment`)
already relies on.  Payload bytes are always written before the counter
that announces them.

Cross-process reads of those words are additionally *validated before
they are trusted*: on some kernels a freshly-forked worker's first
faults into the shared mapping can transiently observe a zero page
where the parent has long since written nonzero counters (observed in
practice as an 8-byte head word reading 0 while the true value was
~90k — and still 0 on an immediate re-read).  Every counter here is
monotonic, so each side keeps a process-local copy of the largest
value it has proven and treats any read below it (or otherwise
impossible, e.g. a ring occupancy above the capacity) as "no news
yet": wait and re-read.  A side's *own* counters are never re-read
from shared memory at all.  ``epoch_end`` is published with a ``+1``
bias so a transient zero is distinguishable from a real window end.
"""

from __future__ import annotations

import os
import pickle
import struct
import time as _wall_time
from typing import Callable, List, Optional, Tuple

from .simulation import SimulationError

__all__ = ["RingBuffer", "ShmExchange", "encode_step", "decode_step",
           "DEFAULT_RING_CAPACITY"]

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")

#: per-direction ring capacity in bytes (``REPRO_SHM_RING_BYTES`` overrides).
DEFAULT_RING_CAPACITY = 1 << 20

#: control block per rank: cmd_seq(u64), done_seq(u64), epoch_end(i64),
#: err_flag(u64) — padded to a cache line so ranks never share one.
_CTRL_SIZE = 64
#: ring header: head(u64, producer-owned) + tail(u64, consumer-owned),
#: cache-line padded for the same reason.
_RING_HEADER = 64

_SPIN_BEFORE_SLEEP = 100
_SLEEP_S = 0.0002
_ALIVE_CHECK_EVERY_S = 0.1


def _make_waiter(alive_check: Optional[Callable[[], bool]] = None,
                 what: str = "shm transport peer") -> Callable[[], None]:
    """A backoff callable for spin loops: yield first, then short-sleep,
    periodically verifying the peer process is still alive."""
    spins = [0]
    last_alive = [_wall_time.monotonic()]

    def wait() -> None:
        spins[0] += 1
        if spins[0] < _SPIN_BEFORE_SLEEP:
            _wall_time.sleep(0)
            return
        _wall_time.sleep(_SLEEP_S)
        if alive_check is not None:
            now = _wall_time.monotonic()
            if now - last_alive[0] >= _ALIVE_CHECK_EVERY_S:
                last_alive[0] = now
                if not alive_check():
                    raise SimulationError(
                        f"{what} died while the shm exchange was waiting")

    return wait


class RingBuffer:
    """Single-producer single-consumer byte ring over a shared buffer.

    ``head`` (producer-owned) and ``tail`` (consumer-owned) are
    monotonically increasing byte counters; occupancy is ``head - tail``
    and positions wrap modulo the capacity.  Frames are a ``u32`` length
    prefix plus payload, and both sides move data in chunks while
    advancing their counter — so a frame *larger than the whole ring*
    still streams through, with the writer backpressured by ``wait()``
    whenever the ring is full and the reader whenever it is empty.
    """

    __slots__ = ("_buf", "_head_off", "_tail_off", "_data_off", "capacity",
                 "_known_head", "_known_tail")

    def __init__(self, buf, offset: int, capacity: int):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self._buf = buf
        self._head_off = offset
        self._tail_off = offset + 8
        self._data_off = offset + _RING_HEADER
        self.capacity = capacity
        # Largest counter values this process has proven (reads below
        # them are transient-zero/stale artifacts — see module docs).
        # The producer trusts _known_head as its own counter and only
        # validates the consumer's tail against _known_tail; the
        # consumer does the reverse.
        self._known_head = 0
        self._known_tail = 0

    # counters ---------------------------------------------------------
    @property
    def head(self) -> int:
        return _U64.unpack_from(self._buf, self._head_off)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._buf, self._tail_off)[0]

    # producer side ----------------------------------------------------
    def write(self, data, wait: Callable[[], None]) -> None:
        buf = self._buf
        cap = self.capacity
        base = self._data_off
        head = self._known_head  # producer-owned: never re-read from shm
        pos, n = 0, len(data)
        while pos < n:
            tail = self.tail
            if tail < self._known_tail or tail > head:
                # transient-zero / torn read of the consumer's counter:
                # tail is monotonic and can never pass the producer.
                wait()
                continue
            self._known_tail = tail
            free = cap - (head - tail)
            if free == 0:
                wait()
                continue
            chunk = min(free, n - pos)
            start = head % cap
            first = min(chunk, cap - start)
            buf[base + start:base + start + first] = data[pos:pos + first]
            if chunk > first:
                buf[base:base + chunk - first] = data[pos + first:pos + chunk]
            head += chunk
            pos += chunk
            self._known_head = head
            # payload bytes land before the head that announces them
            _U64.pack_into(buf, self._head_off, head)

    def write_frame(self, payload, wait: Callable[[], None]) -> None:
        self.write(_U32.pack(len(payload)), wait)
        self.write(payload, wait)

    # consumer side ----------------------------------------------------
    def read(self, n: int, wait: Callable[[], None]) -> bytes:
        buf = self._buf
        cap = self.capacity
        base = self._data_off
        tail = self._known_tail  # consumer-owned: never re-read from shm
        out = bytearray(n)
        pos = 0
        while pos < n:
            head = self.head
            if head < self._known_head or head - tail > cap:
                # transient-zero / torn read of the producer's counter:
                # head is monotonic and never runs more than one
                # capacity ahead of the tail it observed.
                wait()
                continue
            self._known_head = head
            avail = head - tail
            if avail == 0:
                wait()
                continue
            chunk = min(avail, n - pos)
            start = tail % cap
            first = min(chunk, cap - start)
            out[pos:pos + first] = buf[base + start:base + start + first]
            if chunk > first:
                out[pos + first:pos + chunk] = buf[base:base + chunk - first]
            tail += chunk
            pos += chunk
            self._known_tail = tail
            # freeing space only after the bytes were copied out
            _U64.pack_into(buf, self._tail_off, tail)
        return bytes(out)

    def read_frame(self, wait: Callable[[], None]) -> bytes:
        (length,) = _U32.unpack_from(self.read(4, wait))
        return self.read(length, wait)


class ShmExchange:
    """The per-run shared segment: control blocks plus two rings per rank.

    Created by the parent before forking; workers inherit the mapped
    segment through ``fork`` (nothing is re-attached by name).  The
    parent drives :meth:`post`/:meth:`collect`, the workers
    :meth:`read_deliveries`/:meth:`complete`.
    """

    def __init__(self, num_ranks: int,
                 ring_capacity: Optional[int] = None):
        from multiprocessing import shared_memory

        if ring_capacity is None:
            ring_capacity = int(os.environ.get("REPRO_SHM_RING_BYTES", 0)
                                ) or DEFAULT_RING_CAPACITY
        self.num_ranks = num_ranks
        self.ring_capacity = ring_capacity
        self._per_rank = _CTRL_SIZE + 2 * (_RING_HEADER + ring_capacity)
        self._shm = shared_memory.SharedMemory(
            create=True, size=num_ranks * self._per_rank)
        self.buf = self._shm.buf
        # Control words and ring headers start at zero (shm segments are
        # zero-filled on Linux, but be explicit — correctness hinges on it).
        for rank in range(num_ranks):
            base = rank * self._per_rank
            self.buf[base:base + _CTRL_SIZE] = b"\0" * _CTRL_SIZE
            down = base + _CTRL_SIZE
            up = down + _RING_HEADER + ring_capacity
            self.buf[down:down + _RING_HEADER] = b"\0" * _RING_HEADER
            self.buf[up:up + _RING_HEADER] = b"\0" * _RING_HEADER
        self._down = [RingBuffer(self.buf, r * self._per_rank + _CTRL_SIZE,
                                 ring_capacity) for r in range(num_ranks)]
        self._up = [RingBuffer(self.buf, r * self._per_rank + _CTRL_SIZE
                               + _RING_HEADER + ring_capacity,
                               ring_capacity) for r in range(num_ranks)]
        #: parent-side traffic counters (bytes of frame payload + framing)
        self.bytes_posted = 0
        self.bytes_collected = 0
        # Process-local copies of the counters each side owns: the
        # parent's cmd sequence and the workers' done sequences are
        # written to shared memory for the *other* side and never read
        # back from it (a transient-zero read-back would regress a
        # counter and wedge the handshake).
        self._cmd = [0] * num_ranks
        self._done = [0] * num_ranks

    # control words ----------------------------------------------------
    def _ctrl(self, rank: int) -> int:
        return rank * self._per_rank

    def cmd_seq(self, rank: int) -> int:
        return _U64.unpack_from(self.buf, self._ctrl(rank))[0]

    def done_seq(self, rank: int) -> int:
        return _U64.unpack_from(self.buf, self._ctrl(rank) + 8)[0]

    def epoch_end(self, rank: int) -> int:
        """The posted window end (stored ``+1`` so zero means "not yet
        visible" and a transient zero-page read just retries)."""
        off = self._ctrl(rank) + 16
        spins = 0
        while True:
            (raw,) = _I64.unpack_from(self.buf, off)
            if raw:
                return raw - 1
            spins += 1
            _wall_time.sleep(0 if spins < _SPIN_BEFORE_SLEEP else _SLEEP_S)

    def err_flag(self, rank: int) -> int:
        return _U64.unpack_from(self.buf, self._ctrl(rank) + 24)[0]

    # parent side ------------------------------------------------------
    def post(self, rank: int, epoch_end: int, payload: bytes,
             alive_check: Optional[Callable[[], bool]] = None) -> None:
        """Open an epoch for ``rank``: publish the window end, bump the
        command counter, then stream the delivery frame (the counter is
        bumped *first* so the worker consumes concurrently — frames
        larger than the ring cannot deadlock)."""
        base = self._ctrl(rank)
        _I64.pack_into(self.buf, base + 16, epoch_end + 1)
        self._cmd[rank] += 1
        _U64.pack_into(self.buf, base, self._cmd[rank])
        self._down[rank].write_frame(
            payload, _make_waiter(alive_check, f"rank {rank} worker"))
        self.bytes_posted += len(payload) + 4

    def collect(self, rank: int,
                alive_check: Optional[Callable[[], bool]] = None,
                ) -> Optional[bytes]:
        """Wait for ``rank``'s epoch completion and return its step
        frame, or ``None`` when the worker flagged an error (the actual
        exception is waiting on the control pipe)."""
        wait = _make_waiter(alive_check, f"rank {rank} worker")
        target = self._cmd[rank]
        while self.done_seq(rank) < target:
            wait()
        # The frame is read unconditionally: fail() writes an empty
        # sentinel frame, so a transiently-zero err_flag read cannot
        # strand the parent waiting for a result that never comes.
        blob = self._up[rank].read_frame(
            _make_waiter(alive_check, f"rank {rank} worker"))
        if self.err_flag(rank) or not blob:
            _U64.pack_into(self.buf, self._ctrl(rank) + 24, 0)
            return None
        self.bytes_collected += len(blob) + 4
        return blob

    # worker side ------------------------------------------------------
    def read_deliveries(self, rank: int) -> bytes:
        return self._down[rank].read_frame(_make_waiter(what="parent"))

    def complete(self, rank: int, payload: bytes) -> None:
        """Report epoch completion: bump ``done`` first, then stream the
        result frame (mirror of :meth:`post`, same no-deadlock shape)."""
        base = self._ctrl(rank)
        self._done[rank] += 1
        _U64.pack_into(self.buf, base + 8, self._done[rank])
        self._up[rank].write_frame(payload, _make_waiter(what="parent"))

    def fail(self, rank: int) -> None:
        """Report epoch failure: the error itself travels over the
        control pipe; the flag (set before the ``done`` bump) plus an
        empty sentinel frame tell the parent there is no result."""
        base = self._ctrl(rank)
        _U64.pack_into(self.buf, base + 24, 1)
        self._done[rank] += 1
        _U64.pack_into(self.buf, base + 8, self._done[rank])
        self._up[rank].write_frame(b"", _make_waiter(what="parent"))

    # lifecycle --------------------------------------------------------
    def close(self, *, unlink: bool = False) -> None:
        """Unmap the segment (every process); ``unlink`` additionally
        removes it from the system (creator only, after workers joined)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self._down = []
        self._up = []
        self.buf = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view still exported
            pass
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# step-result framing (worker -> parent, rides the up ring)
# ----------------------------------------------------------------------

#: wall_s, events, next_time (-1 = drained), primaries_pending,
#: last_event_time, now, has_obs
_STEP_META = struct.Struct("<dqqqqqB")


def encode_step(result) -> bytes:
    """One :class:`~repro.core.backends.RankStep` as an up-ring frame:
    struct-packed metadata, the flat-encoded outbox (flattened across
    destinations — entries carry their dest rank), and an optional
    pickled batch of rank-local telemetry records."""
    from .event import encode_entries

    flat = []
    if result.outbox:
        for bucket in result.outbox:
            flat.extend(bucket)
    obs_blob = b""
    has_obs = 0
    if result.obs_records:
        obs_blob = pickle.dumps(result.obs_records, pickle.HIGHEST_PROTOCOL)
        has_obs = 1
    next_time = -1 if result.next_time is None else result.next_time
    meta = _STEP_META.pack(result.wall_seconds, result.events, next_time,
                           result.primaries_pending, result.last_event_time,
                           result.now, has_obs)
    blob = meta + encode_entries(flat)
    if has_obs:
        blob += _U32.pack(len(obs_blob)) + obs_blob
    return blob


def decode_step(blob: bytes, num_ranks: int):
    """Inverse of :func:`encode_step`; rebuilds the per-destination
    outbox buckets (entry order within each destination is preserved —
    the flatten walked destinations in order)."""
    from .backends import RankStep
    from .event import decode_entries

    (wall, events, next_time, primaries, last_event, now,
     has_obs) = _STEP_META.unpack_from(blob)
    entries, offset = decode_entries(blob, _STEP_META.size)
    outbox: List[List[Tuple]] = []
    if entries:
        outbox = [[] for _ in range(num_ranks)]
        for entry in entries:
            outbox[entry[3]].append(entry)
    obs_records = None
    if has_obs:
        (obs_len,) = _U32.unpack_from(blob, offset)
        offset += 4
        obs_records = pickle.loads(blob[offset:offset + obs_len])
    return RankStep(wall_seconds=wall, events=events, outbox=outbox,
                    next_time=None if next_time < 0 else next_time,
                    primaries_pending=primaries, last_event_time=last_event,
                    now=now, obs_records=obs_records)
