"""Component base class.

A PySST component mirrors an SST component:

* constructed with ``(sim, name, params)``;
* owns named :class:`~repro.core.link.Port` objects, wired to peers by
  the simulation/config layer;
* registers clock handlers and statistics;
* participates in the termination protocol: *primary* components keep
  the simulation alive until every one of them has declared itself OK
  to end (SST's ``primaryComponentOKToEndSim``).

Lifecycle::

    __init__(sim, name, params)   # parse params, declare stats
    setup()                       # graph fully wired; register handlers,
                                  # kick off first events
    ... event processing ...
    finish()                      # run over; finalize statistics
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

import numpy as np

from .clock import Clock, ClockHandler
from .event import PRIORITY_CLOCK, Event
from .link import LinkError, Port
from .params import Params
from .statistics import StatisticGroup
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .simulation import Simulation


def stable_seed(name: str, base_seed: int) -> int:
    """A process-independent seed derived from a component name.

    Python's builtin ``hash`` is salted per process, which would make
    runs irreproducible, so we use CRC32 of the name mixed with the
    simulation seed.  Component-keyed seeding is also what makes the
    parallel engine produce the same per-component random streams as
    the sequential engine regardless of partitioning.
    """
    import zlib

    return (zlib.crc32(name.encode("utf-8")) ^ (base_seed * 0x9E3779B1)) & 0xFFFFFFFF


class Component:
    """Base class for every simulated hardware/software model.

    Subclasses document their ports in a ``PORTS`` class attribute
    (name -> description) — purely informational, used by the config
    layer for validation and by docs.
    """

    #: port name -> human description; subclasses override.
    PORTS: Dict[str, str] = {}

    #: Attributes owned by the engine/config layer, excluded from the
    #: default :meth:`capture_state` — a restore rebuilds them from the
    #: configuration graph rather than from the snapshot.
    STATE_EXCLUDE = frozenset({"sim", "name", "params", "stats", "_ports"})

    def __init__(self, sim: "Simulation", name: str, params: Optional[Params] = None):
        self.sim = sim
        self.name = name
        self.params = params if params is not None else Params({})
        self.stats = StatisticGroup()
        self._ports: Dict[str, Port] = {}
        self._is_primary = False
        self._ok_to_end = True
        self._rng: Optional[np.random.Generator] = None
        sim._register_component(self)

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def port(self, name: str) -> Port:
        """Fetch (creating on first use) the named port."""
        try:
            return self._ports[name]
        except KeyError:
            port = Port(self, name)
            self._ports[name] = port
            return port

    def set_handler(self, port_name: str, handler: Callable[[Event], None]) -> Port:
        """Register the receive handler for a port."""
        port = self.port(port_name)
        port.handler = handler
        return port

    def send(self, port_name: str, event: Event, extra_delay: SimTime = 0) -> SimTime:
        """Send ``event`` out of ``port_name``; returns the delivery time."""
        port = self._ports.get(port_name)
        if port is None or port.endpoint is None:
            raise LinkError(
                f"component {self.name!r}: send on unconnected port {port_name!r}"
            )
        return port.endpoint.send(event, extra_delay)

    def port_connected(self, port_name: str) -> bool:
        port = self._ports.get(port_name)
        return port is not None and port.connected

    def link_latency(self, port_name: str) -> SimTime:
        """Latency of the link attached to ``port_name``."""
        port = self._ports.get(port_name)
        if port is None or port.endpoint is None:
            raise LinkError(
                f"component {self.name!r}: port {port_name!r} is not connected"
            )
        return port.endpoint.latency

    # ------------------------------------------------------------------
    # clocks / timers
    # ------------------------------------------------------------------
    def register_clock(self, freq: Any, handler: ClockHandler,
                       priority: int = PRIORITY_CLOCK, phase: SimTime = 0) -> Clock:
        """Register ``handler`` to be called at ``freq`` (e.g. ``"2GHz"``)."""
        return self.sim.register_clock(freq, handler, name=f"{self.name}.clock",
                                       priority=priority, phase=phase)

    def schedule(self, delay: SimTime, callback: Callable[[Any], None],
                 payload: Any = None) -> None:
        """One-shot timer: call ``callback(payload)`` after ``delay`` ps."""
        self.sim.schedule_callback(delay, callback, payload)

    # ------------------------------------------------------------------
    # termination protocol
    # ------------------------------------------------------------------
    def register_as_primary(self, ok_to_end: bool = False) -> None:
        """Declare this component as controlling simulation termination."""
        if not self._is_primary:
            self._is_primary = True
            self._ok_to_end = True
            self.sim._exit_register(self)
        if not ok_to_end:
            self.primary_not_ok_to_end()

    def primary_ok_to_end(self) -> None:
        """This primary component no longer needs the simulation to run."""
        if self._is_primary and not self._ok_to_end:
            self._ok_to_end = True
            self.sim._exit_ok(self)

    def primary_not_ok_to_end(self) -> None:
        """This primary component has (more) work; keep simulating."""
        if self._is_primary and self._ok_to_end:
            self._ok_to_end = False
            self.sim._exit_not_ok(self)

    @property
    def is_primary(self) -> bool:
        return self._is_primary

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """Deterministic per-component random stream (seeded by name+sim seed)."""
        if self._rng is None:
            self._rng = np.random.default_rng(stable_seed(self.name, self.sim.seed))
        return self._rng

    # ------------------------------------------------------------------
    # checkpoint protocol (repro.ckpt)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, Any]:
        """The component's mutable run state, for engine checkpointing.

        The default covers the stock model library: every instance
        attribute except the engine-owned ones in :data:`STATE_EXCLUDE`.
        Statistics are captured separately by the snapshot layer
        (references to registered collectors inside the returned dict
        are preserved by identity, not duplicated).  Override when a
        component holds state that cannot be pickled — live generators,
        open files — and return a picklable stand-in; pair it with a
        :meth:`restore_state` override that reconstructs the live object
        (see ``miniapps.base.AppRank`` and
        ``processor.tracefile.TraceReplayCore``).
        """
        return {k: v for k, v in self.__dict__.items()
                if k not in self.STATE_EXCLUDE}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Apply state captured by :meth:`capture_state`.

        Called on a freshly rebuilt component **after** ``setup()`` ran
        and after its statistics were adopted, so overrides may assume a
        fully wired graph and live collectors.
        """
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # lifecycle hooks (subclasses override as needed)
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Called once after the full graph is wired, before the run."""

    def finish(self) -> None:
        """Called once when the run ends."""

    @property
    def now(self) -> SimTime:
        return self.sim.now

    def debug(self, message: str) -> None:
        """Engine-level debug trace, gated on the simulation's verbosity."""
        if self.sim.verbose:
            print(f"[{self.sim.now:>12}ps] {self.name}: {message}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
