"""Component base class.

A PySST component mirrors an SST component:

* constructed with ``(sim, name, params)``;
* owns named :class:`~repro.core.link.Port` objects, wired to peers by
  the simulation/config layer;
* registers clock handlers and statistics;
* participates in the termination protocol: *primary* components keep
  the simulation alive until every one of them has declared itself OK
  to end (SST's ``primaryComponentOKToEndSim``).

Interfaces are **declarative** (see :mod:`repro.core.describe` and
``docs/COMPONENTS.md``): subclasses declare ports with :func:`port`,
run state with :func:`state` and statistics with :func:`stat` as class
attributes.  The base class collects the declarations at class-creation
time, binds port handlers and registers statistics automatically at
construction, and the engine services consume them — the config layer
validates link endpoints at graph-build time, `repro.ckpt` captures and
restores declared state (with ``reconstruct=`` hooks for unpicklable
values), and `repro.obs` samples ``gauge=True`` state.

Lifecycle::

    __init__(sim, name, params)   # parse params (declared stats/ports
                                  # are already live when the subclass
                                  # body runs)
    on_setup()                    # graph fully wired; kick off events
    ... event processing ...
    on_finish()                   # run over; finalize statistics
    on_restore()                  # after a checkpoint restore only

The imperative protocol (``PORTS`` doc dicts, ``set_handler``,
``STATE_EXCLUDE``, ``capture_state``/``restore_state`` overrides and
overriding ``setup()``/``finish()`` directly) remains supported for
out-of-tree subclasses but is deprecated for library code — a CI lint
(``tools/lint_components.py``) keeps it from creeping back in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

import numpy as np

from .clock import Clock, ClockHandler
from .describe import (ParamSpec, PortSpec, SlotSpec, SpecError,  # noqa: F401
                       StateSpec, StatSpec, param, port, slot, state, stat)
from .event import PRIORITY_CLOCK, Event
from .link import LinkError, Port
from .params import Params
from .statistics import StatisticGroup
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .simulation import Simulation


def stable_seed(name: str, base_seed: int) -> int:
    """A process-independent seed derived from a component name.

    Python's builtin ``hash`` is salted per process, which would make
    runs irreproducible, so we use CRC32 of the name mixed with the
    simulation seed.  Component-keyed seeding is also what makes the
    parallel engine produce the same per-component random streams as
    the sequential engine regardless of partitioning.
    """
    import zlib

    return (zlib.crc32(name.encode("utf-8")) ^ (base_seed * 0x9E3779B1)) & 0xFFFFFFFF


class Component:
    """Base class for every simulated hardware/software model.

    Subclasses declare their interface with :func:`port`, :func:`state`
    and :func:`stat` class attributes; ``PORTS`` (name -> description)
    is derived from the port declarations when not given explicitly and
    kept for documentation and legacy subclasses.
    """

    #: port name -> human description; derived from port() declarations
    #: (legacy subclasses may still set it directly).
    PORTS: Dict[str, str] = {}

    #: Attributes owned by the engine/config layer, excluded from the
    #: default :meth:`capture_state` — a restore rebuilds them from the
    #: configuration graph rather than from the snapshot.  Deprecated
    #: for subclasses: declare unpicklable values with
    #: ``state(..., save=False, reconstruct=...)`` instead.
    STATE_EXCLUDE = frozenset({"sim", "name", "params", "stats", "_ports"})

    #: Escape hatch: a subclass that creates ports dynamically beyond
    #: its declarations sets this to skip graph-build-time validation.
    ALLOW_UNDECLARED_PORTS = False

    # -- declared-spec tables (rebuilt per subclass) --------------------
    _port_specs: Dict[str, PortSpec] = {}
    _state_specs: Dict[str, StateSpec] = {}
    _stat_specs: Dict[str, StatSpec] = {}
    _param_specs: Dict[str, ParamSpec] = {}
    _slot_specs: Dict[str, SlotSpec] = {}
    _state_skip: frozenset = STATE_EXCLUDE
    _gauge_specs: tuple = ()
    _reconstruct_hooks: tuple = ()

    # -- engine-owned run flags (declared for docs/describe; the
    #    constructor assigns them eagerly, so behaviour is unchanged) --
    _is_primary = state(False, doc="registered as a primary component")
    _ok_to_end = state(True, doc="primary component is OK with ending")
    _rng = state(None, doc="lazily created per-component random stream")
    _clock_index = state(0, doc="clocks registered so far (names clock, "
                                "clock1, clock2, ...)")

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        from .describe import collect_specs

        specs = collect_specs(cls)
        cls._port_specs = specs["ports"]
        cls._state_specs = specs["state"]
        cls._stat_specs = specs["stats"]
        cls._param_specs = specs["params"]
        cls._slot_specs = specs["slots"]
        cls._state_skip = frozenset(cls.STATE_EXCLUDE) | {
            attr for attr, spec in cls._state_specs.items() if not spec.save
        }
        cls._gauge_specs = tuple(
            spec for spec in cls._state_specs.values() if spec.gauge
        )
        cls._reconstruct_hooks = tuple(
            spec.reconstruct for spec in cls._state_specs.values()
            if spec.reconstruct is not None
        )
        by_stat_name: Dict[str, str] = {}
        for attr, spec in cls._stat_specs.items():
            other = by_stat_name.get(spec.name)
            if other is not None and other != attr:
                raise SpecError(
                    f"{cls.__name__}: statistics {other!r} and {attr!r} "
                    f"both declare the name {spec.name!r}"
                )
            by_stat_name[spec.name] = attr
        stat_names = set(by_stat_name)
        for spec in cls._gauge_specs:
            if spec.attr in stat_names:
                raise SpecError(
                    f"{cls.__name__}: gauge state {spec.attr!r} collides "
                    f"with a declared statistic of the same name"
                )
        # Declared ports supersede a hand-written PORTS dict unless the
        # class body sets one explicitly (legacy).
        own_ports = any(isinstance(v, PortSpec) for v in vars(cls).values())
        if cls._port_specs and (own_ports or "PORTS" not in cls.__dict__):
            cls.PORTS = {spec.name: spec.doc
                         for spec in cls._port_specs.values()}

    def __init__(self, sim: "Simulation", name: str, params: Optional[Params] = None):
        self.sim = sim
        self.name = name
        self.params = params if params is not None else Params({})
        self.stats = StatisticGroup()
        self._ports: Dict[str, Port] = {}
        self._is_primary = False
        self._ok_to_end = True
        self._rng: Optional[np.random.Generator] = None
        self._clock_index = 0
        # Declared statistics come alive before the subclass body runs,
        # preserving the ``self.s_hits`` fast-access idiom.
        for attr, spec in type(self)._stat_specs.items():
            self.__dict__[attr] = spec.instantiate(self.stats)
        # Declared typed parameters parse next, so the subclass body
        # (and slot subcomponents) see ``self.<param>`` already set.
        for attr, spec in type(self)._param_specs.items():
            self.__dict__[attr] = spec.parse(self.params)
        # Declared subcomponent slots resolve through the registry; the
        # selected type name is the slot-named Params key and the
        # subcomponent receives the ``<slot>.``-scoped sub-params.
        for attr, spec in type(self)._slot_specs.items():
            type_name = spec.configured_type(self.params)
            if type_name is None:
                continue
            self.params.accept(attr)
            from .registry import resolve

            sub_cls = resolve(type_name)
            spec.check(type_name, sub_cls)
            self.__dict__[attr] = sub_cls(self, attr,
                                          self.params.scoped(attr))
        # Declared scalar ports bind their handlers (decorator, explicit
        # name, or on_<port> convention); indexed families are bound by
        # the subclass, which knows the index range.
        for spec in type(self)._port_specs.values():
            handler = spec.resolve_handler(self)
            if handler is not None:
                self.set_handler(spec.name, handler)
        sim._register_component(self)

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def port(self, name: str) -> Port:
        """Fetch (creating on first use) the named port."""
        try:
            return self._ports[name]
        except KeyError:
            port = Port(self, name)
            self._ports[name] = port
            return port

    def set_handler(self, port_name: str, handler: Callable[[Event], None]) -> Port:
        """Register the receive handler for a port.

        Declared scalar ports bind automatically; this remains the
        primitive for indexed port families (``cpu<i>``), whose
        per-index closures only the subclass can build.
        """
        port = self.port(port_name)
        port.handler = handler
        return port

    def send(self, port_name: str, event: Event, extra_delay: SimTime = 0) -> SimTime:
        """Send ``event`` out of ``port_name``; returns the delivery time."""
        port = self._ports.get(port_name)
        if port is None or port.endpoint is None:
            raise LinkError(
                f"component {self.name!r}: send on unconnected port {port_name!r}"
            )
        return port.endpoint.send(event, extra_delay)

    def port_connected(self, port_name: str) -> bool:
        port = self._ports.get(port_name)
        return port is not None and port.connected

    def link_latency(self, port_name: str) -> SimTime:
        """Latency of the link attached to ``port_name``."""
        port = self._ports.get(port_name)
        if port is None or port.endpoint is None:
            raise LinkError(
                f"component {self.name!r}: port {port_name!r} is not connected"
            )
        return port.endpoint.latency

    def _install_event_checks(self) -> None:
        """Wrap handlers of event-typed declared ports with isinstance
        checks (``build(validate_events=True)`` / conformance tests
        only — never on by default, so the hot path stays bare)."""
        for spec in type(self)._port_specs.values():
            if spec.event is None:
                continue
            for pname, p in self._ports.items():
                if p.handler is None or not spec.matches(pname):
                    continue
                p.handler = _checked_handler(self, pname, spec.event, p.handler)

    # ------------------------------------------------------------------
    # clocks / timers
    # ------------------------------------------------------------------
    def register_clock(self, freq: Any, handler: ClockHandler,
                       priority: int = PRIORITY_CLOCK, phase: SimTime = 0,
                       name: Optional[str] = None) -> Clock:
        """Register ``handler`` to be called at ``freq`` (e.g. ``"2GHz"``).

        Clocks are named ``<component>.clock``, ``<component>.clock1``,
        ... in registration order (pass ``name=`` to label one
        explicitly), so multi-clock components keep distinct
        profiler/trace attribution.  Naming never affects scheduling —
        arbiter classes key on (period, priority, phase residue) only.
        """
        index = self._clock_index
        self._clock_index = index + 1
        label = name if name is not None else (
            "clock" if index == 0 else f"clock{index}")
        return self.sim.register_clock(freq, handler,
                                       name=f"{self.name}.{label}",
                                       priority=priority, phase=phase)

    def schedule(self, delay: SimTime, callback: Callable[[Any], None],
                 payload: Any = None) -> None:
        """One-shot timer: call ``callback(payload)`` after ``delay`` ps."""
        self.sim.schedule_callback(delay, callback, payload)

    # ------------------------------------------------------------------
    # termination protocol
    # ------------------------------------------------------------------
    def register_as_primary(self, ok_to_end: bool = False) -> None:
        """Declare this component as controlling simulation termination."""
        if not self._is_primary:
            self._is_primary = True
            self._ok_to_end = True
            self.sim._exit_register(self)
        if not ok_to_end:
            self.primary_not_ok_to_end()

    def primary_ok_to_end(self) -> None:
        """This primary component no longer needs the simulation to run."""
        if self._is_primary and not self._ok_to_end:
            self._ok_to_end = True
            self.sim._exit_ok(self)

    def primary_not_ok_to_end(self) -> None:
        """This primary component has (more) work; keep simulating."""
        if self._is_primary and self._ok_to_end:
            self._ok_to_end = False
            self.sim._exit_not_ok(self)

    @property
    def is_primary(self) -> bool:
        return self._is_primary

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    @property
    def rng(self) -> np.random.Generator:
        """Deterministic per-component random stream (seeded by name+sim seed)."""
        if self._rng is None:
            self._rng = np.random.default_rng(stable_seed(self.name, self.sim.seed))
        return self._rng

    # ------------------------------------------------------------------
    # checkpoint protocol (repro.ckpt)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, Any]:
        """The component's mutable run state, for engine checkpointing.

        The default covers the whole model library: every instance
        attribute except the engine-owned ones in :data:`STATE_EXCLUDE`
        and declared state marked ``save=False`` (live generators, open
        files — anything unpicklable, rebuilt after a restore by the
        spec's ``reconstruct=`` hook).  Statistics are captured
        separately by the snapshot layer (references to registered
        collectors inside the returned dict are preserved by identity,
        not duplicated).  Overriding this method is deprecated —
        declare the offending attribute with
        ``state(..., save=False, reconstruct=...)`` instead.

        Slot subcomponents are captured *through* their parent: the
        slot attribute is replaced by a marker dict carrying the
        subcomponent's registered type name and its own
        ``capture_state()``, so a restore applies the state into the
        rebuilt subcomponent instance instead of deserialising a
        detached copy (live events referencing the subcomponent keep
        identity via the ckpt reference table).
        """
        skip = type(self)._state_skip
        out = {k: v for k, v in self.__dict__.items() if k not in skip}
        for attr in type(self)._slot_specs:
            sub = self.__dict__.get(attr)
            if isinstance(sub, SubComponent):
                out[attr] = {"__slot__": type(sub).TYPE_NAME,
                             "state": sub.capture_state()}
        return out

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Apply state captured by :meth:`capture_state`.

        Called on a freshly rebuilt component **after** ``setup()`` ran
        and after its statistics were adopted, so a fully wired graph
        and live collectors may be assumed.  After the captured dict is
        applied, every declared state spec carrying ``reconstruct=``
        has that method invoked, in declaration order (base classes
        first), to rebuild ``save=False`` live objects; the ckpt layer
        then calls :meth:`on_restore` once per component.

        Slot markers produced by :meth:`capture_state` are applied into
        the already-rebuilt subcomponent instances (identity preserved)
        after a type check — a snapshot taken with one policy cannot be
        restored into a graph configured with another.
        """
        slot_specs = type(self)._slot_specs
        markers: Dict[str, Dict[str, Any]] = {}
        if slot_specs:
            state = dict(state)
            for attr in slot_specs:
                value = state.get(attr)
                if isinstance(value, dict) and "__slot__" in value:
                    markers[attr] = state.pop(attr)
        self.__dict__.update(state)
        for attr, marker in markers.items():
            sub = self.__dict__.get(attr)
            if not isinstance(sub, SubComponent) or \
                    type(sub).TYPE_NAME != marker["__slot__"]:
                raise SpecError(
                    f"{self.name}: snapshot filled slot {attr!r} with "
                    f"{marker['__slot__']!r} but the rebuilt component "
                    f"holds {type(sub).__name__!r} — restore into the "
                    f"same configuration")
            sub.restore_state(marker["state"])
        for hook in type(self)._reconstruct_hooks:
            getattr(self, hook)()

    # ------------------------------------------------------------------
    # telemetry (repro.obs)
    # ------------------------------------------------------------------
    def telemetry_gauges(self) -> Dict[str, float]:
        """Current values of ``state(..., gauge=True)`` declarations.

        Sampled by :class:`~repro.analysis.timeseries.StatSampler` and
        the telemetry heartbeat under ``<component>.<attr>`` keys,
        alongside registered statistics.  Non-numeric values sample as
        their length when sized, else are skipped.
        """
        out: Dict[str, float] = {}
        for spec in type(self)._gauge_specs:
            value = getattr(self, spec.attr, None)
            if isinstance(value, (int, float)):
                out[spec.attr] = float(value)
            elif hasattr(value, "__len__"):
                out[spec.attr] = float(len(value))
        for attr in type(self)._slot_specs:
            sub = self.__dict__.get(attr)
            if isinstance(sub, SubComponent):
                for key, value in sub.telemetry_gauges().items():
                    out[f"{attr}.{key}"] = value
        return out

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Called once after the full graph is wired, before the run.

        Override :meth:`on_setup` instead; overriding ``setup()``
        itself still works (legacy) but bypasses hook dispatch.  Slot
        subcomponents receive their ``on_setup`` first, so the parent's
        hook may already rely on a fully initialised policy.
        """
        for sub in self._slot_subcomponents():
            sub.on_setup()
        self.on_setup()

    def finish(self) -> None:
        """Called once when the run ends.  Override :meth:`on_finish`."""
        self.on_finish()
        for sub in self._slot_subcomponents():
            sub.on_finish()

    def _slot_subcomponents(self) -> list:
        """The live subcomponents filling this component's slots."""
        return [sub for attr in type(self)._slot_specs
                if isinstance(sub := self.__dict__.get(attr), SubComponent)]

    def on_setup(self) -> None:
        """Graph fully wired; register work, kick off first events."""

    def on_finish(self) -> None:
        """Run over; finalize statistics."""

    def on_restore(self) -> None:
        """Called by `repro.ckpt` after this component's state (and every
        other component's) has been restored, in component registration
        order — the place to re-derive caches from restored state."""

    @property
    def now(self) -> SimTime:
        return self.sim.now

    def debug(self, message: str) -> None:
        """Engine-level debug trace, gated on the simulation's verbosity."""
        if self.sim.verbose:
            print(f"[{self.sim.now:>12}ps] {self.name}: {message}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class SubComponent:
    """Base class for slot-loaded subcomponents (SST's SubComponent).

    A subcomponent is a swappable strategy object living *inside* a
    component — a scheduler policy, a replacement policy, an arbiter —
    selected by registered type name through a :func:`slot` declaration
    and constructed with ``(parent, slot_name, params)``.  It shares
    the declarative API of :class:`Component` minus ports and nested
    slots: declared :func:`state` participates in the parent's
    checkpoint capture/restore (``reconstruct=`` hooks included),
    declared :func:`stat` statistics register into the **parent's**
    statistic group under ``<slot>.<name>`` keys (so harvesting,
    snapshots and parallel merging need no new machinery), declared
    :func:`param` values parse from the slot-scoped Params, and
    ``gauge=True`` state surfaces through the parent's
    :meth:`Component.telemetry_gauges` as ``<slot>.<attr>``.

    Lifecycle hooks mirror the component ones: ``on_setup`` runs
    before the parent's, ``on_finish`` after it, ``on_restore`` after a
    checkpoint restore.
    """

    #: Attributes owned by the wiring layer, excluded from capture.
    STATE_EXCLUDE = frozenset({"parent", "name", "params"})

    _state_specs: Dict[str, StateSpec] = {}
    _stat_specs: Dict[str, StatSpec] = {}
    _param_specs: Dict[str, ParamSpec] = {}
    _state_skip: frozenset = STATE_EXCLUDE
    _gauge_specs: tuple = ()
    _reconstruct_hooks: tuple = ()

    _rng = state(None, doc="lazily created per-subcomponent random stream")

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        from .describe import collect_specs

        specs = collect_specs(cls)
        if specs["ports"]:
            raise SpecError(
                f"{cls.__name__}: subcomponents declare no ports — events "
                f"reach them through their parent component")
        if specs["slots"]:
            raise SpecError(
                f"{cls.__name__}: nested subcomponent slots are not "
                f"supported")
        cls._state_specs = specs["state"]
        cls._stat_specs = specs["stats"]
        cls._param_specs = specs["params"]
        cls._state_skip = frozenset(cls.STATE_EXCLUDE) | {
            attr for attr, spec in cls._state_specs.items() if not spec.save
        }
        cls._gauge_specs = tuple(
            spec for spec in cls._state_specs.values() if spec.gauge
        )
        cls._reconstruct_hooks = tuple(
            spec.reconstruct for spec in cls._state_specs.values()
            if spec.reconstruct is not None
        )

    def __init__(self, parent: Component, name: str,
                 params: Optional[Params] = None):
        self.parent = parent
        self.name = name
        self.params = params if params is not None else Params({})
        self._rng: Optional[np.random.Generator] = None
        # Declared statistics register into the parent's group under
        # slot-prefixed names, so every stats consumer (harvest, ckpt
        # meta, parallel merge, OpenMetrics) sees them for free.
        for attr, spec in type(self)._stat_specs.items():
            factory = getattr(parent.stats, spec.kind)
            self.__dict__[attr] = factory(f"{name}.{spec.name}",
                                          **spec.kwargs)
        for attr, spec in type(self)._param_specs.items():
            self.__dict__[attr] = spec.parse(self.params)

    # -- conveniences mirroring Component -------------------------------
    @property
    def sim(self) -> "Simulation":
        return self.parent.sim

    @property
    def now(self) -> SimTime:
        return self.parent.sim.now

    @property
    def rng(self) -> np.random.Generator:
        """Deterministic stream keyed by ``<parent>.<slot>`` + sim seed."""
        if self._rng is None:
            self._rng = np.random.default_rng(
                stable_seed(f"{self.parent.name}.{self.name}",
                            self.parent.sim.seed))
        return self._rng

    # -- checkpoint protocol (driven by the parent component) -----------
    def capture_state(self) -> Dict[str, Any]:
        skip = type(self)._state_skip
        return {k: v for k, v in self.__dict__.items() if k not in skip}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        for hook in type(self)._reconstruct_hooks:
            getattr(self, hook)()

    # -- telemetry -------------------------------------------------------
    def telemetry_gauges(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for spec in type(self)._gauge_specs:
            value = getattr(self, spec.attr, None)
            if isinstance(value, (int, float)):
                out[spec.attr] = float(value)
            elif hasattr(value, "__len__"):
                out[spec.attr] = float(len(value))
        return out

    # -- lifecycle hooks -------------------------------------------------
    def on_setup(self) -> None:
        """Parent graph fully wired (runs before the parent's hook)."""

    def on_finish(self) -> None:
        """Run over (runs after the parent's hook)."""

    def on_restore(self) -> None:
        """Called by `repro.ckpt` after every component was restored."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} "
                f"{getattr(self.parent, 'name', '?')}.{self.name}>")


def _checked_handler(component: Component, port_name: str,
                     event_cls: type, inner: Callable) -> Callable:
    """Validation-mode wrapper: reject events of the wrong class."""

    def checked(event: Event) -> None:
        if event is not None and not isinstance(event, event_cls):
            raise LinkError(
                f"component {component.name!r} port {port_name!r} expects "
                f"{event_cls.__name__}, got {type(event).__name__}"
            )
        inner(event)

    checked.__wrapped_handler__ = inner  # type: ignore[attr-defined]
    checked.__name__ = getattr(inner, "__name__", "handler")
    return checked
