"""Event base classes and delivery priorities.

Everything that happens in a PySST simulation is an :class:`Event`
delivered to a handler at a specific simulated time.  Like SST, ties at
the same timestamp are broken by an integer *priority* (lower runs
first) and then by insertion order, which makes every run of a given
configuration bit-for-bit deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from .units import SimTime

# Priority bands, mirroring SST's eventqueue priorities.  Lower value =
# delivered earlier among events with an equal timestamp.
PRIORITY_SYNC = 25  #: parallel-rank synchronisation actions
PRIORITY_STOP = 30  #: simulation stop actions
PRIORITY_CLOCK = 40  #: clock tick handlers
PRIORITY_EVENT = 50  #: ordinary link-delivered events
PRIORITY_FINAL = 90  #: end-of-simulation bookkeeping


class Event:
    """Base class for everything delivered over a :class:`~repro.core.link.Link`.

    Subclasses add payload fields; the engine itself only needs the
    object identity.  ``__slots__`` keeps per-event overhead low — a
    pure-Python PDES core lives or dies by allocation cost (see the
    repro scoping notes in DESIGN.md).
    """

    __slots__ = ()

    def clone(self) -> "Event":
        """Return a shallow copy of this event.

        Used when one logical event must be delivered to several
        receivers (e.g. a snooping bus).  Subclasses with mutable
        payloads should override.
        """
        cls = type(self)
        new = cls.__new__(cls)
        try:
            slots = _SLOTS_BY_CLASS[cls]
        except KeyError:
            slots = _collect_slots(cls)
        for name in slots:
            try:
                setattr(new, name, getattr(self, name))
            except AttributeError:
                pass  # slot never assigned on the source
        return new


#: Per-class flattened slot list, filled on first clone() — walking the
#: MRO with hasattr/getattr per slot on every clone was O(mro x slots).
_SLOTS_BY_CLASS: Dict[Type["Event"], Tuple[str, ...]] = {}


def _collect_slots(cls: Type["Event"]) -> Tuple[str, ...]:
    names: List[str] = []
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):  # __slots__ = "name" is legal
            slots = (slots,)
        names.extend(slots)
    flattened = tuple(dict.fromkeys(names))  # dedupe, keep MRO order
    _SLOTS_BY_CLASS[cls] = flattened
    return flattened


class NullEvent(Event):
    """An event with no payload; useful as a pure wake-up token."""

    __slots__ = ()


class CallbackEvent(Event):
    """Wraps an arbitrary callback for one-shot scheduling.

    ``Simulation.schedule_callback`` uses this to let components request
    "call me back at time T" without declaring a self-link.
    """

    __slots__ = ("callback", "payload")

    def __init__(self, callback: Callable[[Any], None], payload: Any = None):
        self.callback = callback
        self.payload = payload

    def invoke(self) -> None:
        self.callback(self.payload)


#: Type of a component-side event handler.
Handler = Callable[[Event], None]


class IdSource:
    """A named, checkpointable global id counter.

    Model libraries hand out process-global ids (memory ``req_id``,
    network ``msg_id``, ...) so responses can be matched to outstanding
    requests.  A plain ``itertools.count`` cannot be captured or
    restored, which breaks engine checkpointing: a resumed run would
    re-issue ids that collide with ids already held by restored
    in-flight state.  ``IdSource`` is a drop-in replacement (``next()``
    works) whose value `repro.ckpt` snapshots and restores by name.
    """

    _registry: Dict[str, "IdSource"] = {}

    __slots__ = ("name", "_next")

    def __init__(self, name: str, start: int = 1):
        if name in IdSource._registry:
            raise ValueError(f"duplicate IdSource {name!r}")
        self.name = name
        self._next = start
        IdSource._registry[name] = self

    def __next__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def __iter__(self) -> "IdSource":
        return self

    def peek(self) -> int:
        """The id the next ``next()`` call will return."""
        return self._next

    @classmethod
    def capture_all(cls) -> Dict[str, int]:
        """Snapshot every registered counter's next value."""
        return {name: src._next for name, src in cls._registry.items()}

    @classmethod
    def restore_all(cls, state: Dict[str, int], *, merge_max: bool = False) -> None:
        """Restore counters captured by :meth:`capture_all`.

        With ``merge_max`` (used when merging shards from ranks that ran
        in separate processes and therefore advanced the same counter
        independently), a counter is only moved forward — the maximum
        over all restored values wins, which preserves uniqueness.
        Unknown names are ignored so old snapshots load on newer trees.
        """
        for name, value in state.items():
            src = cls._registry.get(name)
            if src is None:
                continue
            src._next = max(src._next, value) if merge_max else value


class EventRecord:
    """A queued delivery: ``(time, priority, seq)`` ordering key plus target.

    Kept as a tiny class (not a namedtuple) with ``__slots__`` and rich
    comparison on the ordering key only, so heap operations never
    compare handler objects.
    """

    __slots__ = ("time", "priority", "seq", "handler", "event", "cause")

    def __init__(
        self,
        time: SimTime,
        priority: int,
        seq: int,
        handler: Optional[Handler],
        event: Optional[Event],
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.handler = handler
        self.event = event
        # Provenance slot (repro.obs.causal): local seq of the event whose
        # handler scheduled this one, or None for a root.  Stamped only by
        # the causal tracer's queue proxy — the bare path never writes it.
        self.cause = None

    def key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "EventRecord") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventRecord):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventRecord(t={self.time}, prio={self.priority}, seq={self.seq})"


# ----------------------------------------------------------------------
# EventRecord free-list pool
# ----------------------------------------------------------------------
# Allocation is a dominant cost of the pure-Python hot loop: every queued
# delivery creates one EventRecord and drops it right after dispatch.
# The kernel loops recycle records through this free list instead.
#
# Aliasing rule (see docs/PERFORMANCE.md): a record is released ONLY at
# a point where no observer can still hold it — the bare (uninstrumented)
# kernel paths release after dispatch; the instrumented path never
# releases, because trace/span observers receive the record's fields and
# may retain the event, and future observers could retain the record.
#
# Thread safety: list.append and list.pop are atomic under the GIL, so
# concurrent rank threads (ThreadsBackend) may share the pool; the
# acquire path tolerates losing a race with try/except IndexError.

_RECORD_POOL: List[EventRecord] = []
#: free-list size cap — beyond this, released records are left to the GC
_RECORD_POOL_MAX = 8192


def acquire_record(
    time: SimTime,
    priority: int,
    seq: int,
    handler: Optional[Handler],
    event: Optional[Event],
) -> EventRecord:
    """A filled EventRecord, recycled from the free list when possible."""
    try:
        record = _RECORD_POOL.pop()
    except IndexError:
        return EventRecord(time, priority, seq, handler, event)
    record.time = time
    record.priority = priority
    record.seq = seq
    record.handler = handler
    record.event = event
    return record


def release_record(record: EventRecord) -> None:
    """Return a dispatched record to the free list.

    Callers must guarantee nothing else references the record (the
    aliasing rule above).  Handler/event are cleared so the pool never
    pins components or payloads live.
    """
    record.handler = None
    record.event = None
    record.cause = None  # provenance must never leak across reuses
    pool = _RECORD_POOL
    if len(pool) < _RECORD_POOL_MAX:
        pool.append(record)


def record_pool_size() -> int:
    """Current free-list length (introspection for tests/diagnostics)."""
    return len(_RECORD_POOL)
