"""Event base classes and delivery priorities.

Everything that happens in a PySST simulation is an :class:`Event`
delivered to a handler at a specific simulated time.  Like SST, ties at
the same timestamp are broken by an integer *priority* (lower runs
first) and then by insertion order, which makes every run of a given
configuration bit-for-bit deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .units import SimTime

# Priority bands, mirroring SST's eventqueue priorities.  Lower value =
# delivered earlier among events with an equal timestamp.
PRIORITY_SYNC = 25  #: parallel-rank synchronisation actions
PRIORITY_STOP = 30  #: simulation stop actions
PRIORITY_CLOCK = 40  #: clock tick handlers
PRIORITY_EVENT = 50  #: ordinary link-delivered events
PRIORITY_FINAL = 90  #: end-of-simulation bookkeeping


class Event:
    """Base class for everything delivered over a :class:`~repro.core.link.Link`.

    Subclasses add payload fields; the engine itself only needs the
    object identity.  ``__slots__`` keeps per-event overhead low — a
    pure-Python PDES core lives or dies by allocation cost (see the
    repro scoping notes in DESIGN.md).
    """

    __slots__ = ()

    def clone(self) -> "Event":
        """Return a shallow copy of this event.

        Used when one logical event must be delivered to several
        receivers (e.g. a snooping bus).  Subclasses with mutable
        payloads should override.
        """
        cls = type(self)
        new = cls.__new__(cls)
        for slot_holder in cls.__mro__:
            for name in getattr(slot_holder, "__slots__", ()):
                if hasattr(self, name):
                    setattr(new, name, getattr(self, name))
        return new


class NullEvent(Event):
    """An event with no payload; useful as a pure wake-up token."""

    __slots__ = ()


class CallbackEvent(Event):
    """Wraps an arbitrary callback for one-shot scheduling.

    ``Simulation.schedule_callback`` uses this to let components request
    "call me back at time T" without declaring a self-link.
    """

    __slots__ = ("callback", "payload")

    def __init__(self, callback: Callable[[Any], None], payload: Any = None):
        self.callback = callback
        self.payload = payload

    def invoke(self) -> None:
        self.callback(self.payload)


#: Type of a component-side event handler.
Handler = Callable[[Event], None]


class EventRecord:
    """A queued delivery: ``(time, priority, seq)`` ordering key plus target.

    Kept as a tiny class (not a namedtuple) with ``__slots__`` and rich
    comparison on the ordering key only, so heap operations never
    compare handler objects.
    """

    __slots__ = ("time", "priority", "seq", "handler", "event")

    def __init__(
        self,
        time: SimTime,
        priority: int,
        seq: int,
        handler: Optional[Handler],
        event: Optional[Event],
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.handler = handler
        self.event = event

    def key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "EventRecord") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventRecord):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventRecord(t={self.time}, prio={self.priority}, seq={self.seq})"
