"""Event base classes and delivery priorities.

Everything that happens in a PySST simulation is an :class:`Event`
delivered to a handler at a specific simulated time.  Like SST, ties at
the same timestamp are broken by an integer *priority* (lower runs
first) and then by insertion order, which makes every run of a given
configuration bit-for-bit deterministic.
"""

from __future__ import annotations

import importlib
import pickle
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from .units import SimTime

# Priority bands, mirroring SST's eventqueue priorities.  Lower value =
# delivered earlier among events with an equal timestamp.
PRIORITY_SYNC = 25  #: parallel-rank synchronisation actions
PRIORITY_STOP = 30  #: simulation stop actions
PRIORITY_CLOCK = 40  #: clock tick handlers
PRIORITY_EVENT = 50  #: ordinary link-delivered events
PRIORITY_FINAL = 90  #: end-of-simulation bookkeeping


class Event:
    """Base class for everything delivered over a :class:`~repro.core.link.Link`.

    Subclasses add payload fields; the engine itself only needs the
    object identity.  ``__slots__`` keeps per-event overhead low — a
    pure-Python PDES core lives or dies by allocation cost (see the
    repro scoping notes in DESIGN.md).
    """

    __slots__ = ()

    def clone(self) -> "Event":
        """Return a shallow copy of this event.

        Used when one logical event must be delivered to several
        receivers (e.g. a snooping bus).  Subclasses with mutable
        payloads should override.
        """
        cls = type(self)
        new = cls.__new__(cls)
        try:
            slots = _SLOTS_BY_CLASS[cls]
        except KeyError:
            slots = _collect_slots(cls)
        for name in slots:
            try:
                setattr(new, name, getattr(self, name))
            except AttributeError:
                pass  # slot never assigned on the source
        return new


#: Per-class flattened slot list, filled on first clone() — walking the
#: MRO with hasattr/getattr per slot on every clone was O(mro x slots).
_SLOTS_BY_CLASS: Dict[Type["Event"], Tuple[str, ...]] = {}


def _collect_slots(cls: Type["Event"]) -> Tuple[str, ...]:
    names: List[str] = []
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):  # __slots__ = "name" is legal
            slots = (slots,)
        names.extend(slots)
    flattened = tuple(dict.fromkeys(names))  # dedupe, keep MRO order
    _SLOTS_BY_CLASS[cls] = flattened
    return flattened


class NullEvent(Event):
    """An event with no payload; useful as a pure wake-up token."""

    __slots__ = ()


class CallbackEvent(Event):
    """Wraps an arbitrary callback for one-shot scheduling.

    ``Simulation.schedule_callback`` uses this to let components request
    "call me back at time T" without declaring a self-link.
    """

    __slots__ = ("callback", "payload")

    def __init__(self, callback: Callable[[Any], None], payload: Any = None):
        self.callback = callback
        self.payload = payload

    def invoke(self) -> None:
        self.callback(self.payload)


#: Type of a component-side event handler.
Handler = Callable[[Event], None]


class IdSource:
    """A named, checkpointable global id counter.

    Model libraries hand out process-global ids (memory ``req_id``,
    network ``msg_id``, ...) so responses can be matched to outstanding
    requests.  A plain ``itertools.count`` cannot be captured or
    restored, which breaks engine checkpointing: a resumed run would
    re-issue ids that collide with ids already held by restored
    in-flight state.  ``IdSource`` is a drop-in replacement (``next()``
    works) whose value `repro.ckpt` snapshots and restores by name.
    """

    _registry: Dict[str, "IdSource"] = {}

    __slots__ = ("name", "_next")

    def __init__(self, name: str, start: int = 1):
        if name in IdSource._registry:
            raise ValueError(f"duplicate IdSource {name!r}")
        self.name = name
        self._next = start
        IdSource._registry[name] = self

    def __next__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def __iter__(self) -> "IdSource":
        return self

    def peek(self) -> int:
        """The id the next ``next()`` call will return."""
        return self._next

    @classmethod
    def capture_all(cls) -> Dict[str, int]:
        """Snapshot every registered counter's next value."""
        return {name: src._next for name, src in cls._registry.items()}

    @classmethod
    def restore_all(cls, state: Dict[str, int], *, merge_max: bool = False) -> None:
        """Restore counters captured by :meth:`capture_all`.

        With ``merge_max`` (used when merging shards from ranks that ran
        in separate processes and therefore advanced the same counter
        independently), a counter is only moved forward — the maximum
        over all restored values wins, which preserves uniqueness.
        Unknown names are ignored so old snapshots load on newer trees.
        """
        for name, value in state.items():
            src = cls._registry.get(name)
            if src is None:
                continue
            src._next = max(src._next, value) if merge_max else value


class EventRecord:
    """A queued delivery: ``(time, priority, seq)`` ordering key plus target.

    Kept as a tiny class (not a namedtuple) with ``__slots__`` and rich
    comparison on the ordering key only, so heap operations never
    compare handler objects.
    """

    __slots__ = ("time", "priority", "seq", "handler", "event", "cause")

    def __init__(
        self,
        time: SimTime,
        priority: int,
        seq: int,
        handler: Optional[Handler],
        event: Optional[Event],
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.handler = handler
        self.event = event
        # Provenance slot (repro.obs.causal): local seq of the event whose
        # handler scheduled this one, or None for a root.  Stamped only by
        # the causal tracer's queue proxy — the bare path never writes it.
        self.cause = None

    def key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "EventRecord") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventRecord):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventRecord(t={self.time}, prio={self.priority}, seq={self.seq})"


# ----------------------------------------------------------------------
# EventRecord free-list pool
# ----------------------------------------------------------------------
# Allocation is a dominant cost of the pure-Python hot loop: every queued
# delivery creates one EventRecord and drops it right after dispatch.
# The kernel loops recycle records through this free list instead.
#
# Aliasing rule (see docs/PERFORMANCE.md): a record is released ONLY at
# a point where no observer can still hold it — the bare (uninstrumented)
# kernel paths release after dispatch; the instrumented path never
# releases, because trace/span observers receive the record's fields and
# may retain the event, and future observers could retain the record.
#
# Thread safety: list.append and list.pop are atomic under the GIL, so
# concurrent rank threads (ThreadsBackend) may share the pool; the
# acquire path tolerates losing a race with try/except IndexError.

_RECORD_POOL: List[EventRecord] = []
#: free-list size cap — beyond this, released records are left to the GC
_RECORD_POOL_MAX = 8192


def acquire_record(
    time: SimTime,
    priority: int,
    seq: int,
    handler: Optional[Handler],
    event: Optional[Event],
) -> EventRecord:
    """A filled EventRecord, recycled from the free list when possible."""
    try:
        record = _RECORD_POOL.pop()
    except IndexError:
        return EventRecord(time, priority, seq, handler, event)
    record.time = time
    record.priority = priority
    record.seq = seq
    record.handler = handler
    record.event = event
    return record


def release_record(record: EventRecord) -> None:
    """Return a dispatched record to the free list.

    Callers must guarantee nothing else references the record (the
    aliasing rule above).  Handler/event are cleared so the pool never
    pins components or payloads live.
    """
    record.handler = None
    record.event = None
    record.cause = None  # provenance must never leak across reuses
    pool = _RECORD_POOL
    if len(pool) < _RECORD_POOL_MAX:
        pool.append(record)


def record_pool_size() -> int:
    """Current free-list length (introspection for tests/diagnostics)."""
    return len(_RECORD_POOL)


# ----------------------------------------------------------------------
# Flat event codec — the shared-memory exchange fast path
# ----------------------------------------------------------------------
# The shm transport (repro.core.shm) moves outbox entries between ranks
# as framed byte slots.  Pickling every event would reintroduce most of
# the pipe transport's serialization cost, so the common case — a
# library event whose payload is a handful of scalar slots — is encoded
# flat: class token (module:qualname) + one (tag, value) pair per slot.
# Any event whose class or slot values fall outside that shape falls
# back to a whole-event pickle, transparently.  Both sides of the codec
# run in processes forked from the same interpreter, so class resolution
# by importable name shares pickle's trust and compatibility model.

_EVK_PICKLE = 0  #: event blob kind: length-prefixed pickle
_EVK_FLAT = 1    #: event blob kind: flat slot encoding

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3      # fits in a signed 64-bit value
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6
_TAG_MISSING = 7  # slot never assigned on the source event

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
#: outbox entry header: time, priority, link_id, dest_rank, send_seq
_ENTRY_HEAD = struct.Struct("<qiiiq")

#: class -> (token bytes, slot tuple), or None when not flat-encodable
_FLAT_ENCODE_CACHE: Dict[type, Optional[Tuple[bytes, Tuple[str, ...]]]] = {}
#: token bytes -> (class, slot tuple)
_FLAT_DECODE_CACHE: Dict[bytes, Tuple[type, Tuple[str, ...]]] = {}


def _resolve_class(token: str) -> type:
    module_name, _, qualname = token.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _flat_class_info(cls: type) -> Optional[Tuple[bytes, Tuple[str, ...]]]:
    """(token, slots) when ``cls`` qualifies for flat encoding, else None.

    Qualifies = resolvable by ``module:qualname`` back to the same class
    (rules out dynamically created classes), fully ``__slots__``-based
    (no instance ``__dict__`` whose attributes the slot walk would
    drop), and at most 255 slots (the wire count is one byte).
    """
    try:
        return _FLAT_ENCODE_CACHE[cls]
    except KeyError:
        pass
    info: Optional[Tuple[bytes, Tuple[str, ...]]] = None
    token = f"{cls.__module__}:{cls.__qualname__}"
    try:
        resolved = _resolve_class(token)
    except Exception:
        resolved = None
    if resolved is cls and getattr(cls, "__dictoffset__", 1) == 0:
        slots = _SLOTS_BY_CLASS.get(cls) or _collect_slots(cls)
        if len(slots) <= 255:
            info = (token.encode("utf-8"), slots)
    _FLAT_ENCODE_CACHE[cls] = info
    return info


def encode_event(event: Any) -> bytes:
    """One event as a self-delimiting blob (flat fast path or pickle)."""
    info = _flat_class_info(type(event))
    if info is not None:
        token, slots = info
        out = bytearray((_EVK_FLAT,))
        out += _U16.pack(len(token))
        out += token
        out.append(len(slots))
        for name in slots:
            try:
                value = getattr(event, name)
            except AttributeError:
                out.append(_TAG_MISSING)
                continue
            vtype = type(value)
            if value is None:
                out.append(_TAG_NONE)
            elif vtype is bool:
                out.append(_TAG_TRUE if value else _TAG_FALSE)
            elif vtype is int and _INT64_MIN <= value <= _INT64_MAX:
                out.append(_TAG_INT)
                out += _I64.pack(value)
            elif vtype is float:
                out.append(_TAG_FLOAT)
                out += _F64.pack(value)
            elif vtype is str:
                raw = value.encode("utf-8")
                out.append(_TAG_STR)
                out += _U32.pack(len(raw))
                out += raw
            elif vtype is bytes:
                out.append(_TAG_BYTES)
                out += _U32.pack(len(value))
                out += value
            else:
                break  # non-flat slot value: fall through to pickle
        else:
            return bytes(out)
    blob = pickle.dumps(event, pickle.HIGHEST_PROTOCOL)
    return bytes((_EVK_PICKLE,)) + _U32.pack(len(blob)) + blob


def decode_event(buf: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Inverse of :func:`encode_event`; returns ``(event, next_offset)``."""
    kind = buf[offset]
    offset += 1
    if kind == _EVK_PICKLE:
        (length,) = _U32.unpack_from(buf, offset)
        offset += 4
        event = pickle.loads(buf[offset:offset + length])
        return event, offset + length
    if kind != _EVK_FLAT:
        raise ValueError(f"corrupt event blob: unknown kind {kind}")
    (token_len,) = _U16.unpack_from(buf, offset)
    offset += 2
    token = bytes(buf[offset:offset + token_len])
    offset += token_len
    n_slots = buf[offset]
    offset += 1
    try:
        cls, slots = _FLAT_DECODE_CACHE[token]
    except KeyError:
        cls = _resolve_class(token.decode("utf-8"))
        slots = _SLOTS_BY_CLASS.get(cls) or _collect_slots(cls)
        _FLAT_DECODE_CACHE[token] = (cls, slots)
    if n_slots != len(slots):
        raise ValueError(
            f"flat event {token.decode('utf-8')!r} carries {n_slots} slots, "
            f"local class has {len(slots)} — sender/receiver class skew")
    event = cls.__new__(cls)
    for name in slots:
        tag = buf[offset]
        offset += 1
        if tag == _TAG_MISSING:
            continue
        if tag == _TAG_NONE:
            value: Any = None
        elif tag == _TAG_FALSE:
            value = False
        elif tag == _TAG_TRUE:
            value = True
        elif tag == _TAG_INT:
            (value,) = _I64.unpack_from(buf, offset)
            offset += 8
        elif tag == _TAG_FLOAT:
            (value,) = _F64.unpack_from(buf, offset)
            offset += 8
        elif tag == _TAG_STR:
            (length,) = _U32.unpack_from(buf, offset)
            offset += 4
            value = bytes(buf[offset:offset + length]).decode("utf-8")
            offset += length
        elif tag == _TAG_BYTES:
            (length,) = _U32.unpack_from(buf, offset)
            offset += 4
            value = bytes(buf[offset:offset + length])
            offset += length
        else:
            raise ValueError(f"corrupt event blob: unknown slot tag {tag}")
        setattr(event, name, value)
    return event, offset


def encode_entries(entries: List[Tuple]) -> bytes:
    """Encode outbox entries ``(time, priority, link_id, dest_rank,
    send_seq, event)`` as one frame payload."""
    out = bytearray(_U32.pack(len(entries)))
    pack_head = _ENTRY_HEAD.pack
    for (time, priority, link_id, dest_rank, send_seq, event) in entries:
        out += pack_head(time, priority, link_id, dest_rank, send_seq)
        out += encode_event(event)
    return bytes(out)


def decode_entries(buf: bytes, offset: int = 0) -> Tuple[List[Tuple], int]:
    """Inverse of :func:`encode_entries`; returns ``(entries, next_offset)``."""
    (count,) = _U32.unpack_from(buf, offset)
    offset += 4
    unpack_head = _ENTRY_HEAD.unpack_from
    head_size = _ENTRY_HEAD.size
    entries: List[Tuple] = []
    append = entries.append
    for _ in range(count):
        time, priority, link_id, dest_rank, send_seq = unpack_head(buf, offset)
        offset += head_size
        event, offset = decode_event(buf, offset)
        append((time, priority, link_id, dest_rank, send_seq, event))
    return entries, offset
