"""Component library registry (SST's "element library" / ELI).

The config layer names component types as strings (``"memory.Cache"``);
the registry maps those names to Python classes so a serialized
:class:`~repro.config.graph.ConfigGraph` can be instantiated without the
config author importing model modules directly.

Models self-register at import time via the :func:`register` decorator::

    @register("memory.Cache")
    class Cache(Component):
        ...

:func:`resolve` performs lazy importing: a name like
``"memory.Cache"`` triggers ``import repro.memory`` on first lookup, so
simply naming a component in a config file is enough to load its
library — the same ergonomics as SST's element loading.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterable, Type

from .component import Component, SubComponent

_REGISTRY: Dict[str, Type[Component]] = {}

#: repro subpackages that will be imported on demand when a type name's
#: first path element matches.
_KNOWN_LIBRARIES = ("processor", "memory", "network", "miniapps", "power",
                    "resilience", "analysis", "cluster")


class RegistryError(KeyError):
    """Unknown or conflicting component type name."""


def register(type_name: str):
    """Class decorator: make ``cls`` instantiable by name from configs.

    Both :class:`Component` and :class:`SubComponent` types register
    here — the former are instantiated by the config builder, the
    latter resolved into declared slots (``slot()``) by name.
    """

    def decorator(cls: Type[Component]) -> Type[Component]:
        if not (isinstance(cls, type)
                and issubclass(cls, (Component, SubComponent))):
            raise TypeError(
                f"{cls!r} is not a Component or SubComponent subclass")
        existing = _REGISTRY.get(type_name)
        if existing is not None and existing is not cls:
            raise RegistryError(
                f"component type {type_name!r} already registered to {existing!r}"
            )
        _REGISTRY[type_name] = cls
        cls.TYPE_NAME = type_name  # type: ignore[attr-defined]
        return cls

    return decorator


def resolve(type_name: str) -> Type[Component]:
    """Look up a component class, lazily importing its library."""
    cls = _REGISTRY.get(type_name)
    if cls is not None:
        return cls
    library = type_name.split(".", 1)[0]
    if library in _KNOWN_LIBRARIES:
        importlib.import_module(f"repro.{library}")
        cls = _REGISTRY.get(type_name)
        if cls is not None:
            return cls
    raise RegistryError(
        f"unknown component type {type_name!r}; registered: {sorted(_REGISTRY)}"
    )


def registered_types() -> Iterable[str]:
    return sorted(_REGISTRY)


def load_all_libraries() -> None:
    """Import every known component library, populating the registry.

    Registration happens at class-definition time, so only libraries
    that have been imported appear in :func:`registered_types`; tools
    that enumerate the full catalogue (``repro component list``) call
    this first.
    """
    for library in _KNOWN_LIBRARIES:
        importlib.import_module(f"repro.{library}")


def is_registered(type_name: str) -> bool:
    return type_name in _REGISTRY
