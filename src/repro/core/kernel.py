"""Layer 1: the kernel event loop.

Every execution path in the engine — ``Simulation.run`` for sequential
runs, ``Simulation.run_step`` for a conservative-sync epoch window, and
the per-rank workers of the execution backends
(:mod:`repro.core.backends`) — drives the *same* pop/dispatch loop
defined here.  The loop itself is policy-free: limits, the exit
protocol, observability dispatch and the final statistics harvest are
threaded in through a :class:`RunContext`, so the sequential engine,
the threaded epoch step and a forked per-rank worker all execute
events identically.

Layering (see docs/ARCHITECTURE.md):

* **kernel** (this module) — pop the next :class:`EventRecord`, advance
  ``now``, dispatch through the compiled observability slot.
* **SyncStrategy** (:mod:`repro.core.sync`) — decides *how far* each
  rank may run (epoch windows, lookahead, cross-rank exchange).
* **ExecutionBackend** (:mod:`repro.core.backends`) — decides *where*
  each rank's kernel loop executes (inline, thread pool, forked
  process).

Checkpoint contract (:mod:`repro.ckpt`): snapshots are only taken
*between* kernel invocations — at conservative-sync epoch boundaries
for parallel runs, between ``max_time``-bounded segments for
sequential ones — never from inside a loop body.  Two loop-level facts
make restored runs bit-identical: (1) the dispatch mode (bare vs
instrumented) is recomputed at every entry from ``sim._instr``, so a
restore never has to persist the pooling decision — re-attaching the
same observers before resuming reproduces it; (2) the total event
order is ``(time, priority, seq)`` and the queue's ``seq`` counter is
part of the snapshot, so records pushed after a restore tie-break
exactly as they would have in the uninterrupted run.
"""

from __future__ import annotations

import time as _wall_time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Union

from . import units
from .event import release_record
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .simulation import RunResult, Simulation


@dataclass
class RunContext:
    """Everything one kernel-loop invocation needs, in one place.

    Threads run identity (seed, queue kind, rank), limits, the exit
    protocol and the post-run statistics harvest uniformly through the
    sequential engine, the per-rank epoch step and the process-backend
    workers, so none of them grow private variations of the loop.
    """

    #: base seed of the owning simulation (component streams key off it)
    seed: int = 1
    #: pending-event-set implementation name ("heap" / "binned")
    queue_kind: str = "heap"
    rank: int = 0
    num_ranks: int = 1
    #: inclusive simulated-time limit in ps (events *at* the limit run)
    limit: Optional[SimTime] = None
    max_events: Optional[int] = None
    #: disable the primary-component exit protocol (drain mode)
    ignore_exit: bool = False
    #: call ``sim.finish()`` when the loop ends on a terminal reason
    finalize: bool = True
    #: optional stats harvest hook, called with the simulation after a
    #: finalized run — the process backend ships its result across the
    #: rank boundary, the sequential engine ignores it.
    harvest: Optional[Callable[["Simulation"], Any]] = None

    @classmethod
    def for_sim(cls, sim: "Simulation", *,
                max_time: Optional[Union[str, int]] = None,
                max_events: Optional[int] = None,
                ignore_exit: bool = False,
                finalize: bool = True,
                harvest: Optional[Callable[["Simulation"], Any]] = None,
                ) -> "RunContext":
        """Build the context for a run of ``sim``, parsing ``max_time``."""
        limit = (units.parse_time(max_time, default_unit="ps")
                 if max_time is not None else None)
        return cls(seed=sim.seed, queue_kind=sim.queue_kind, rank=sim.rank,
                   num_ranks=sim.num_ranks, limit=limit,
                   max_events=max_events, ignore_exit=ignore_exit,
                   finalize=finalize, harvest=harvest)


def kernel_run(sim: "Simulation", ctx: RunContext) -> "RunResult":
    """Run ``sim``'s queue to exhaustion, exit, or a context limit.

    This is the full-service loop behind :meth:`Simulation.run`; the
    stop reason is one of ``exhausted``, ``exit``, ``max_time``,
    ``max_events`` or ``stopped``.

    The dispatch mode is precomputed at entry (hot-path contract): with
    no observers installed the loop runs *bare* — hoisted queue
    bindings, no per-event attribute probing, dispatched records
    recycled through the event-record pool.  Observers attached
    mid-run from inside a handler therefore take effect at the next
    ``run()``/``run_step()`` call in bare mode; removing the last
    observer mid-run is honoured immediately (the instrumented loop
    re-probes and falls through to the bare loop).  Records dispatched
    while instrumented are never pooled — observers may retain them
    (see docs/PERFORMANCE.md, the observer-vs-pool aliasing rule).

    Causal tracing (:mod:`repro.obs.causal`) rides the same switch: an
    attached tracer forces ``sim._instr`` non-None, and the compiled
    ``_instr`` closure notes each record and arms/clears the tracer's
    cause cell around dispatch.  The bare loop is never touched —
    ``--trace-causal`` off means zero added cost here.
    """
    from .simulation import RunResult, SimulationError

    if sim._running:
        raise SimulationError("run() re-entered")
    if not sim._setup_done:
        sim.setup()
    limit = ctx.limit
    sim._running = True
    sim._stop_requested = False
    reason = None
    start_wall = _wall_time.perf_counter()
    start_events = sim._events_executed
    # Hoisted loop state: queue methods, limits, and the precomputed
    # dispatch conditions (exit protocol on/off, events budget).
    queue = sim._queue
    peek = queue.peek_time
    pop = queue.pop
    release = release_record
    check_exit = not ctx.ignore_exit and bool(sim._primary_components)
    # Records budget (max_events counts popped records, as before);
    # float("inf") turns "no budget" into a single cheap comparison.
    budget = ctx.max_events if ctx.max_events is not None else float("inf")
    records = 0
    # Live-plane boundary marks (repro.obs.live): per-invocation, never
    # per-event, so bare-mode dispatch cost is unchanged.
    live = sim._live_publisher
    if live is not None:
        live.on_kernel_enter()
    try:
        while reason is None:
            if sim._instr is not None:
                # ---------------- instrumented loop -----------------
                # Identical per-event semantics to the pre-optimisation
                # loop: per-event _instr probe (observers may detach
                # mid-run), records counted on sim directly, no pooling.
                while True:
                    instr = sim._instr
                    if instr is None:
                        break  # last observer detached: go bare
                    next_time = peek()
                    if next_time is None:
                        reason = "exhausted"
                        break
                    if limit is not None and next_time > limit:
                        reason = "max_time"
                        sim.now = limit
                        break
                    record = pop()
                    sim.now = next_time
                    sim.last_event_time = next_time
                    # Counted before dispatch so heartbeat/telemetry
                    # callbacks observe the event that triggered them.
                    sim._events_executed += 1
                    records += 1
                    instr(record)
                    if sim._stop_requested:
                        reason = "stopped"
                        break
                    if check_exit and sim._primaries_pending == 0:
                        reason = "exit"
                        break
                    if records >= budget:
                        reason = "max_events"
                        break
            elif limit is None:
                # ---------------- bare loop, no time limit ----------
                executed = 0
                try:
                    while True:
                        try:
                            record = pop()
                        except IndexError:
                            reason = "exhausted"
                            break
                        now = record.time
                        sim.now = now
                        sim.last_event_time = now
                        executed += 1
                        handler = record.handler
                        if handler is not None:
                            handler(record.event)
                        release(record)
                        if sim._stop_requested:
                            reason = "stopped"
                            break
                        if check_exit and sim._primaries_pending == 0:
                            reason = "exit"
                            break
                        if executed + records >= budget:
                            reason = "max_events"
                            break
                finally:
                    records += executed
                    sim._events_executed += executed
            else:
                # ---------------- bare loop, time limit -------------
                executed = 0
                try:
                    while True:
                        next_time = peek()
                        if next_time is None:
                            reason = "exhausted"
                            break
                        if next_time > limit:
                            reason = "max_time"
                            sim.now = limit
                            break
                        record = pop()
                        sim.now = next_time
                        sim.last_event_time = next_time
                        executed += 1
                        handler = record.handler
                        if handler is not None:
                            handler(record.event)
                        release(record)
                        if sim._stop_requested:
                            reason = "stopped"
                            break
                        if check_exit and sim._primaries_pending == 0:
                            reason = "exit"
                            break
                        if executed + records >= budget:
                            reason = "max_events"
                            break
                finally:
                    records += executed
                    sim._events_executed += executed
    finally:
        sim._running = False
        if live is not None:
            live.on_kernel_exit()
    wall = _wall_time.perf_counter() - start_wall
    if ctx.finalize and reason in ("exhausted", "exit", "stopped", "max_time"):
        sim.finish()
        if ctx.harvest is not None:
            ctx.harvest(sim)
    return RunResult(
        reason=reason,
        end_time=sim.now,
        events_executed=sim._events_executed - start_events,
        wall_seconds=wall,
    )


def kernel_step(sim: "Simulation", until: SimTime) -> int:
    """Execute all events with ``time <= until`` (one epoch window).

    The epoch-window variant of the kernel loop behind
    :meth:`Simulation.run_step` and every execution backend's per-rank
    step.  Does not honour max_time or the exit protocol — the sync
    strategy coordinates those globally.  Returns the number of events
    executed; afterwards ``sim.now == max(until, last event time)``.
    """
    queue = sim._queue
    peek = queue.peek_time
    pop = queue.pop
    release = release_record
    start_executed = sim._events_executed
    live = sim._live_publisher
    if live is not None:
        live.on_kernel_enter()
    if sim._instr is not None:
        # Instrumented window: per-event probe (observers may detach
        # mid-window), no record pooling — observers may retain records.
        while True:
            next_time = peek()
            if next_time is None or next_time > until:
                break
            record = pop()
            sim.now = next_time
            sim.last_event_time = next_time
            sim._events_executed += 1
            instr = sim._instr
            if instr is not None:
                instr(record)
            else:
                handler = record.handler
                if handler is not None:
                    handler(record.event)
    else:
        # Bare window: hoisted bindings, dispatched records recycled.
        count = 0
        try:
            while True:
                next_time = peek()
                if next_time is None or next_time > until:
                    break
                record = pop()
                sim.now = next_time
                sim.last_event_time = next_time
                count += 1
                handler = record.handler
                if handler is not None:
                    handler(record.event)
                release(record)
        finally:
            sim._events_executed += count
    if sim.now < until:
        sim.now = until
    if live is not None:
        # No finally: if a handler raised, the rank dies RUNNING and the
        # watchdog's publish-age signal picks it up.
        live.on_kernel_exit()
    return sim._events_executed - start_executed


def harvest_stats(sim: "Simulation") -> Dict[str, Dict[str, Any]]:
    """Per-component statistic objects, keyed ``component -> stat name``.

    The uniform stats-harvest shape carried by :class:`RunContext` and
    shipped across the rank boundary by the process backend (statistic
    collectors are plain slotted objects, so they pickle cleanly).
    """
    return {name: dict(comp.stats.all())
            for name, comp in sim._components.items()}


def harvest_engine_stats(sim: "Simulation") -> Dict[str, Any]:
    """Engine-level statistics (``sync.*``, ``obs.*``) in harvest shape.

    The engine-stats companion to :func:`harvest_stats`: a flat
    ``name -> Statistic`` dict of ``sim.engine_stats``.  The process
    backend ships this across the rank boundary so worker-registered
    collectors (e.g. the rank-local telemetry counters) survive the
    worker's death; parent-side the adoption is *additive only* — names
    the parent already tracks (the ``sync.*`` metrics it maintains
    itself) are never overwritten by the worker's stale copies.
    """
    return dict(sim.engine_stats.all())
