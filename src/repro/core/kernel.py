"""Layer 1: the kernel event loop.

Every execution path in the engine — ``Simulation.run`` for sequential
runs, ``Simulation.run_step`` for a conservative-sync epoch window, and
the per-rank workers of the execution backends
(:mod:`repro.core.backends`) — drives the *same* pop/dispatch loop
defined here.  The loop itself is policy-free: limits, the exit
protocol, observability dispatch and the final statistics harvest are
threaded in through a :class:`RunContext`, so the sequential engine,
the threaded epoch step and a forked per-rank worker all execute
events identically.

Layering (see docs/ARCHITECTURE.md):

* **kernel** (this module) — pop the next :class:`EventRecord`, advance
  ``now``, dispatch through the compiled observability slot.
* **SyncStrategy** (:mod:`repro.core.sync`) — decides *how far* each
  rank may run (epoch windows, lookahead, cross-rank exchange).
* **ExecutionBackend** (:mod:`repro.core.backends`) — decides *where*
  each rank's kernel loop executes (inline, thread pool, forked
  process).
"""

from __future__ import annotations

import time as _wall_time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Union

from . import units
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .simulation import RunResult, Simulation


@dataclass
class RunContext:
    """Everything one kernel-loop invocation needs, in one place.

    Threads run identity (seed, queue kind, rank), limits, the exit
    protocol and the post-run statistics harvest uniformly through the
    sequential engine, the per-rank epoch step and the process-backend
    workers, so none of them grow private variations of the loop.
    """

    #: base seed of the owning simulation (component streams key off it)
    seed: int = 1
    #: pending-event-set implementation name ("heap" / "binned")
    queue_kind: str = "heap"
    rank: int = 0
    num_ranks: int = 1
    #: inclusive simulated-time limit in ps (events *at* the limit run)
    limit: Optional[SimTime] = None
    max_events: Optional[int] = None
    #: disable the primary-component exit protocol (drain mode)
    ignore_exit: bool = False
    #: call ``sim.finish()`` when the loop ends on a terminal reason
    finalize: bool = True
    #: optional stats harvest hook, called with the simulation after a
    #: finalized run — the process backend ships its result across the
    #: rank boundary, the sequential engine ignores it.
    harvest: Optional[Callable[["Simulation"], Any]] = None

    @classmethod
    def for_sim(cls, sim: "Simulation", *,
                max_time: Optional[Union[str, int]] = None,
                max_events: Optional[int] = None,
                ignore_exit: bool = False,
                finalize: bool = True,
                harvest: Optional[Callable[["Simulation"], Any]] = None,
                ) -> "RunContext":
        """Build the context for a run of ``sim``, parsing ``max_time``."""
        limit = (units.parse_time(max_time, default_unit="ps")
                 if max_time is not None else None)
        return cls(seed=sim.seed, queue_kind=sim.queue_kind, rank=sim.rank,
                   num_ranks=sim.num_ranks, limit=limit,
                   max_events=max_events, ignore_exit=ignore_exit,
                   finalize=finalize, harvest=harvest)


def kernel_run(sim: "Simulation", ctx: RunContext) -> "RunResult":
    """Run ``sim``'s queue to exhaustion, exit, or a context limit.

    This is the full-service loop behind :meth:`Simulation.run`; the
    stop reason is one of ``exhausted``, ``exit``, ``max_time``,
    ``max_events`` or ``stopped``.
    """
    from .simulation import RunResult, SimulationError

    if sim._running:
        raise SimulationError("run() re-entered")
    if not sim._setup_done:
        sim.setup()
    limit = ctx.limit
    sim._running = True
    sim._stop_requested = False
    reason = "exhausted"
    start_wall = _wall_time.perf_counter()
    start_events = sim._events_executed
    queue = sim._queue
    try:
        while queue:
            next_time = queue.peek_time()
            if limit is not None and next_time is not None and next_time > limit:
                reason = "max_time"
                sim.now = limit
                break
            record = queue.pop()
            sim.now = record.time
            sim.last_event_time = record.time
            # Counted before dispatch so heartbeat/telemetry
            # callbacks observe the event that triggered them.
            sim._events_executed += 1
            instr = sim._instr
            if instr is not None:
                instr(record)
            else:
                handler = record.handler
                if handler is not None:
                    handler(record.event)
            if sim._stop_requested:
                reason = "stopped"
                break
            if (not ctx.ignore_exit and sim._primary_components
                    and sim._primaries_pending == 0):
                reason = "exit"
                break
            if ctx.max_events is not None and \
                    sim._events_executed - start_events >= ctx.max_events:
                reason = "max_events"
                break
    finally:
        sim._running = False
    wall = _wall_time.perf_counter() - start_wall
    if ctx.finalize and reason in ("exhausted", "exit", "stopped", "max_time"):
        sim.finish()
        if ctx.harvest is not None:
            ctx.harvest(sim)
    return RunResult(
        reason=reason,
        end_time=sim.now,
        events_executed=sim._events_executed - start_events,
        wall_seconds=wall,
    )


def kernel_step(sim: "Simulation", until: SimTime) -> int:
    """Execute all events with ``time <= until`` (one epoch window).

    The epoch-window variant of the kernel loop behind
    :meth:`Simulation.run_step` and every execution backend's per-rank
    step.  Does not honour max_time or the exit protocol — the sync
    strategy coordinates those globally.  Returns the number of events
    executed; afterwards ``sim.now == max(until, last event time)``.
    """
    queue = sim._queue
    executed = 0
    while queue:
        next_time = queue.peek_time()
        if next_time is None or next_time > until:
            break
        record = queue.pop()
        sim.now = record.time
        sim.last_event_time = record.time
        executed += 1
        sim._events_executed += 1
        instr = sim._instr
        if instr is not None:
            instr(record)
        else:
            handler = record.handler
            if handler is not None:
                handler(record.event)
    if sim.now < until:
        sim.now = until
    return executed


def harvest_stats(sim: "Simulation") -> Dict[str, Dict[str, Any]]:
    """Per-component statistic objects, keyed ``component -> stat name``.

    The uniform stats-harvest shape carried by :class:`RunContext` and
    shipped across the rank boundary by the process backend (statistic
    collectors are plain slotted objects, so they pickle cleanly).
    """
    return {name: dict(comp.stats.all())
            for name, comp in sim._components.items()}


def harvest_engine_stats(sim: "Simulation") -> Dict[str, Any]:
    """Engine-level statistics (``sync.*``, ``obs.*``) in harvest shape.

    The engine-stats companion to :func:`harvest_stats`: a flat
    ``name -> Statistic`` dict of ``sim.engine_stats``.  The process
    backend ships this across the rank boundary so worker-registered
    collectors (e.g. the rank-local telemetry counters) survive the
    worker's death; parent-side the adoption is *additive only* — names
    the parent already tracks (the ``sync.*`` metrics it maintains
    itself) are never overwritten by the worker's stale copies.
    """
    return dict(sim.engine_stats.all())
