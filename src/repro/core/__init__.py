"""PySST core: the discrete-event engine and component framework.

This package is the reproduction of SST's central contribution — a
modular, component-based, (conservatively) parallel discrete-event
simulation core in which components interact only through
latency-bearing links.  Everything in :mod:`repro.processor`,
:mod:`repro.memory`, :mod:`repro.network`, :mod:`repro.power` and
:mod:`repro.miniapps` is built on these primitives.
"""

from .backends import (BACKENDS, ExecutionBackend, JobPool, RankStep,
                       default_jobs, make_backend, make_job_pool)
from .clock import Clock, ClockArbiter
from .component import Component, SubComponent, stable_seed
from .describe import (ParamSpec, PortSpec, SlotSpec, SpecError, StateSpec,
                       StatSpec, describe_component, param, port, slot, state,
                       stat, sweep_axes)
from .event import (PRIORITY_CLOCK, PRIORITY_EVENT, PRIORITY_FINAL,
                    PRIORITY_STOP, PRIORITY_SYNC, CallbackEvent, Event,
                    NullEvent)
from .eventqueue import (BinnedEventQueue, HeapEventQueue, make_queue)
from .kernel import RunContext, kernel_run, kernel_step
from .link import Link, LinkError, Port
from .params import ParamError, Params, UnusedParamsWarning
from .parallel import ParallelRunResult, ParallelSimulation
from .partition import (PartitionEdge, PartitionProfile, PartitionResult,
                        partition)
from .registry import register, registered_types, resolve
from .simulation import RunResult, Simulation, SimulationError
from .sync import (SYNC_STRATEGIES, AdaptiveConservativeSync, ConservativeSync,
                   SyncStrategy, make_sync)
from .statistics import Accumulator, Counter, Histogram, Statistic, StatisticGroup
from .tracelog import EventTraceLog, describe_handler
from .units import (SimTime, UnitError, bytes_time, format_bytes, format_time,
                    freq_to_period, parse_bandwidth, parse_freq_hz,
                    parse_size_bytes, parse_time)

__all__ = [
    "Accumulator",
    "AdaptiveConservativeSync",
    "BACKENDS",
    "BinnedEventQueue",
    "CallbackEvent",
    "Clock",
    "ClockArbiter",
    "Component",
    "ConservativeSync",
    "Counter",
    "Event",
    "EventTraceLog",
    "ExecutionBackend",
    "HeapEventQueue",
    "Histogram",
    "JobPool",
    "Link",
    "LinkError",
    "NullEvent",
    "ParamError",
    "ParamSpec",
    "Params",
    "ParallelRunResult",
    "ParallelSimulation",
    "PartitionEdge",
    "PartitionProfile",
    "PartitionResult",
    "PRIORITY_CLOCK",
    "PRIORITY_EVENT",
    "PRIORITY_FINAL",
    "PRIORITY_STOP",
    "PRIORITY_SYNC",
    "PortSpec",
    "RankStep",
    "RunContext",
    "RunResult",
    "SimTime",
    "Simulation",
    "SimulationError",
    "SlotSpec",
    "SpecError",
    "SYNC_STRATEGIES",
    "StateSpec",
    "StatSpec",
    "Statistic",
    "StatisticGroup",
    "SubComponent",
    "SyncStrategy",
    "UnitError",
    "UnusedParamsWarning",
    "bytes_time",
    "default_jobs",
    "describe_component",
    "describe_handler",
    "format_bytes",
    "format_time",
    "freq_to_period",
    "kernel_run",
    "kernel_step",
    "make_backend",
    "make_job_pool",
    "make_queue",
    "make_sync",
    "param",
    "parse_bandwidth",
    "parse_freq_hz",
    "parse_size_bytes",
    "parse_time",
    "partition",
    "port",
    "register",
    "registered_types",
    "resolve",
    "slot",
    "stable_seed",
    "stat",
    "state",
    "sweep_axes",
]
