"""Links: the only way components communicate.

SST's central architectural invariant — preserved here — is that
components interact *exclusively* by sending events over links, and
every link has a non-zero minimum latency.  Because a component cannot
affect another in less than the link latency, a partition of the
component graph can be simulated conservatively in parallel with a
lookahead equal to the smallest latency of any partition-crossing link
(see :mod:`repro.core.parallel`).

A :class:`Link` joins two :class:`Port` objects.  Components call
``self.send(port_name, event)``; delivery happens at
``now + link.latency + extra_delay`` by invoking the handler the
receiving component registered for its port.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .event import PRIORITY_EVENT, Event
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .component import Component
    from .simulation import Simulation


class LinkError(RuntimeError):
    """Misuse of the link/port API (unconnected port, double connect...)."""


class Port:
    """A named attachment point on a component.

    Created lazily by :meth:`Component.port`; joined to a peer by
    :meth:`Simulation.connect`.  The handler is looked up at delivery
    time, so components may register handlers in ``setup()`` after the
    graph is wired.
    """

    __slots__ = ("component", "name", "endpoint", "handler")

    def __init__(self, component: "Component", name: str):
        self.component = component
        self.name = name
        self.endpoint: Optional[LinkEndpoint] = None
        self.handler: Optional[Callable[[Event], None]] = None

    @property
    def connected(self) -> bool:
        return self.endpoint is not None

    def full_name(self) -> str:
        return f"{self.component.name}.{self.name}"

    def deliver(self, event: Event) -> None:
        """Invoked by the engine when an event arrives at this port."""
        if self.handler is None:
            raise LinkError(
                f"event arrived at port {self.full_name()!r} but no handler is registered"
            )
        self.handler(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "connected" if self.connected else "unconnected"
        return f"Port({self.full_name()}, {state})"


class LinkEndpoint:
    """One side of a link: knows how to deliver to the *other* side.

    ``send`` normally pushes straight onto the owning simulation's event
    queue.  When the peer lives on another parallel rank, the endpoint
    is re-targeted by the parallel engine (``set_remote``) and sends go
    to the rank outbox instead.
    """

    __slots__ = ("link", "local_port", "peer_port", "_sim", "_remote_send")

    def __init__(self, link: "Link", local_port: Port, sim: "Simulation"):
        self.link = link
        self.local_port = local_port
        self.peer_port: Optional[Port] = None
        self._sim = sim
        # Callable(time, priority, event) used instead of the local queue
        # when the peer is on a different rank.
        self._remote_send: Optional[Callable[[SimTime, int, Event], None]] = None

    def send(self, event: Event, extra_delay: SimTime = 0,
             priority: int = PRIORITY_EVENT) -> SimTime:
        """Schedule ``event`` for the peer at ``now + latency + extra_delay``.

        Returns the delivery time.
        """
        if extra_delay < 0:
            raise LinkError("extra_delay must be non-negative")
        sim = self._sim
        when = sim.now + self.link.latency + extra_delay
        remote = self._remote_send
        if remote is not None:
            remote(when, priority, event)
        else:
            peer = self.peer_port
            if peer is None:
                raise LinkError(
                    f"send on half-connected link {self.link.name!r} "
                    f"from port {self.local_port.full_name()!r}"
                )
            # Inlined sim._push: latency >= 1 and extra_delay >= 0
            # guarantee when > now, so the past-check is unnecessary.
            sim._queue.push(when, priority, peer.deliver, event)
        return when

    def set_remote(self, sender: Callable[[SimTime, int, Event], None]) -> None:
        """Re-target cross-rank sends to ``sender`` (or back to a saved one).

        The parallel engine points this at the rank outbox; the causal
        tracer (:mod:`repro.obs.causal`) additionally wraps the outbox
        sender to record link/send-seq provenance, restoring the
        original on detach via this same method.
        """
        self._remote_send = sender

    @property
    def latency(self) -> SimTime:
        return self.link.latency


class Link:
    """A bidirectional, latency-bearing connection between two ports."""

    __slots__ = ("name", "latency", "endpoints")

    def __init__(self, name: str, latency: SimTime):
        if latency <= 0:
            raise LinkError(
                f"link {name!r}: latency must be >= 1 ps — zero-latency links break "
                "conservative parallel simulation (DESIGN.md, key invariants)"
            )
        self.name = name
        self.latency = latency
        self.endpoints: list[LinkEndpoint] = []

    @staticmethod
    def connect(name: str, latency: SimTime, port_a: Port, port_b: Port,
                sim_a: "Simulation", sim_b: Optional["Simulation"] = None) -> "Link":
        """Wire two ports together (possibly on different rank simulations)."""
        if port_a.connected:
            raise LinkError(f"port {port_a.full_name()!r} is already connected")
        if port_b.connected:
            raise LinkError(f"port {port_b.full_name()!r} is already connected")
        if port_a is port_b:
            raise LinkError(f"cannot connect port {port_a.full_name()!r} to itself")
        link = Link(name, latency)
        end_a = LinkEndpoint(link, port_a, sim_a)
        end_b = LinkEndpoint(link, port_b, sim_b if sim_b is not None else sim_a)
        end_a.peer_port = port_b
        end_b.peer_port = port_a
        port_a.endpoint = end_a
        port_b.endpoint = end_b
        link.endpoints = [end_a, end_b]
        return link

    @staticmethod
    def self_loop(name: str, latency: SimTime, port: Port, sim: "Simulation") -> "Link":
        """A self-link: events a component sends to itself after a delay.

        SST components use self-links as programmable timers; PySST also
        offers :meth:`Simulation.schedule_callback` for the same job.
        """
        if port.connected:
            raise LinkError(f"port {port.full_name()!r} is already connected")
        link = Link(name, latency)
        end = LinkEndpoint(link, port, sim)
        end.peer_port = port
        port.endpoint = end
        link.endpoints = [end]
        return link

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name!r}, latency={self.latency}ps)"
