"""Declarative component specs: typed ports, declared state, statistics.

SST's component framework earns its keep by letting a model *declare*
its interface once and have every engine service — wiring validation,
checkpointing, statistics, telemetry — consume the declaration.  This
module supplies the three descriptor families the PySST
:class:`~repro.core.component.Component` base collects at class-creation
time:

* :func:`port` / :class:`PortSpec` — a named, documented port with an
  optional expected event class and a receive handler bound by
  decorator, by explicit name, or by the ``on_<port>`` convention.
  The config layer (:func:`repro.config.build`) validates every link
  endpoint against these at graph-build time, so a typo'd port name
  fails when the machine is assembled instead of at the first send.
* :func:`state` / :class:`StateSpec` — a mutable run-state attribute
  with a default, an optional ``save=False`` flag for values that
  cannot be pickled (live generators, open files) and a paired
  ``reconstruct=`` hook that `repro.ckpt` calls after a restore, and a
  ``gauge=True`` flag that surfaces the value to the telemetry layer.
* :func:`stat` (``stat.counter`` / ``stat.accumulator`` /
  ``stat.histogram``) / :class:`StatSpec` — a registered statistic,
  instantiated automatically in ``Component.__init__`` so subclasses
  stop hand-plumbing :class:`~repro.core.statistics.StatisticGroup`.
* :func:`param` / :class:`ParamSpec` — a typed constructor parameter
  with a default and optional ``choices``; parsed from the component's
  :class:`~repro.core.params.Params` at construction, documented by
  ``component describe``, and — when ``choices`` is given — exported as
  a sweep dimension by :func:`sweep_axes` for `repro.dse` studies.
* :func:`slot` / :class:`SlotSpec` — a declared *subcomponent slot*
  (SST's subcomponent API): a named policy/strategy hole filled at
  build time by a registered
  :class:`~repro.core.component.SubComponent` type selected by name
  from Params.  Slots are validated like ports at graph-build time and
  the resolved subcomponent's declared state and statistics ride every
  engine service (checkpointing, telemetry, conformance) through its
  parent.

Everything here runs at class creation or component construction —
never on the event hot path.  See ``docs/COMPONENTS.md`` for the
authoring guide and a worked example.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Optional, Type

_MISSING = object()

#: ``<i>``-style placeholder segments in indexed port-family names
#: (``cpu<i>``, ``dim<d>_pos``) match any decimal index.
_PLACEHOLDER = re.compile(r"<[^<>]*>")


class SpecError(TypeError):
    """A component's declarations are inconsistent."""


# ----------------------------------------------------------------------
# ports
# ----------------------------------------------------------------------

class PortSpec:
    """A declared port: documentation plus engine-checkable facts.

    Declared as a class attribute; the attribute name is the port name
    unless ``name=`` overrides it (required for indexed families such
    as ``cpu<i>``, whose names are not identifiers).

    On an instance, attribute access resolves to the live
    :class:`~repro.core.link.Port` object (scalar ports only).
    """

    __slots__ = ("attr", "name", "doc", "required", "event",
                 "handler_name", "_regex")

    def __init__(self, doc: str = "", *, name: Optional[str] = None,
                 required: bool = True, event: Optional[type] = None,
                 handler: Optional[str] = None):
        self.attr: Optional[str] = None
        self.name = name
        self.doc = doc
        self.required = required
        self.event = event
        self.handler_name = handler
        self._regex: Optional[re.Pattern] = None
        if name is not None:
            self._compile(name)

    def _compile(self, name: str) -> None:
        if _PLACEHOLDER.search(name):
            # Escape the literal segments, then turn each <placeholder>
            # into a decimal-index matcher.
            pattern = re.escape(_PLACEHOLDER.sub("\0", name)).replace(
                "\0", r"\d+")
            self._regex = re.compile(f"^{pattern}$")

    def __set_name__(self, owner: type, attr: str) -> None:
        self.attr = attr
        if self.name is None:
            self.name = attr
            self._compile(attr)

    # -- declaration-side API ------------------------------------------
    def handler(self, fn: Callable) -> Callable:
        """Decorator form: mark ``fn`` as this port's receive handler."""
        self.handler_name = fn.__name__
        return fn

    @property
    def indexed(self) -> bool:
        """True for port families (``cpu<i>``) matched by index."""
        return self._regex is not None

    def matches(self, port_name: str) -> bool:
        """Does a concrete port name satisfy this declaration?"""
        if self._regex is not None:
            return self._regex.match(port_name) is not None
        return port_name == self.name

    # -- engine-side API ------------------------------------------------
    def resolve_handler(self, component: Any) -> Optional[Callable]:
        """The bound receive handler on ``component``, if declared.

        Resolution order: an explicit/decorator-recorded handler name,
        then the ``on_<port>`` naming convention.  Indexed families
        return None — their per-index closures are bound by the
        subclass (see ``Component.bind_indexed_ports``).
        """
        if self.indexed:
            return None
        if self.handler_name is not None:
            fn = getattr(component, self.handler_name, None)
            if fn is None:
                raise SpecError(
                    f"{type(component).__name__}: port {self.name!r} names "
                    f"handler {self.handler_name!r} which does not exist"
                )
            return fn
        fn = getattr(component, f"on_{self.name}", None)
        return fn if callable(fn) else None

    def __get__(self, obj: Any, owner: Optional[type] = None) -> Any:
        if obj is None:
            return self
        if self.indexed:
            raise AttributeError(
                f"indexed port family {self.name!r} has no single Port; "
                f"use component.port('{self.name.replace('<', '').replace('>', '')}...')"
            )
        return obj.port(self.name)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "doc": self.doc,
            "required": self.required,
            "indexed": self.indexed,
            "event": self.event.__name__ if self.event is not None else None,
            "handler": self.handler_name or
                       (f"on_{self.name}" if not self.indexed else None),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PortSpec {self.name!r}>"


def port(doc: str = "", *, name: Optional[str] = None, required: bool = True,
         event: Optional[type] = None,
         handler: Optional[str] = None) -> PortSpec:
    """Declare a port (see :class:`PortSpec`).

    >>> class MyCache(Component):
    ...     cpu = port("upstream requests", event=MemRequest)
    ...     mem = port("downstream memory", event=MemResponse)
    ...
    ...     @cpu.handler
    ...     def on_request(self, event): ...
    """
    return PortSpec(doc, name=name, required=required, event=event,
                    handler=handler)


# ----------------------------------------------------------------------
# state
# ----------------------------------------------------------------------

class StateSpec:
    """A declared mutable run-state attribute.

    Non-data descriptor: the first read materialises the default into
    the instance ``__dict__`` (after which plain attribute access costs
    nothing — the descriptor is off the hot path), and assignments are
    ordinary attribute writes.  Declared state is consumed by:

    * ``repro.ckpt`` — captured by the default
      ``Component.capture_state`` unless ``save=False``; after a
      restore, specs carrying ``reconstruct=`` have that method invoked
      (in declaration order) to rebuild unpicklable live objects from
      the already-applied picklable state.
    * ``repro.obs`` — ``gauge=True`` values appear in
      :meth:`Component.telemetry_gauges` and are sampled by
      :class:`~repro.analysis.timeseries.StatSampler` and the telemetry
      heartbeat alongside registered statistics.
    * the ``component describe`` CLI and config serialization
      (``describe=True``), which document the declared state per type.
    """

    __slots__ = ("attr", "doc", "default", "factory", "save",
                 "reconstruct", "gauge")

    def __init__(self, default: Any = _MISSING, *, factory: Optional[Callable] = None,
                 save: bool = True, reconstruct: Optional[str] = None,
                 gauge: bool = False, doc: str = ""):
        if factory is not None and default is not _MISSING:
            raise SpecError("state(): pass default or factory, not both")
        self.attr: Optional[str] = None
        self.doc = doc
        self.default = default
        self.factory = factory
        self.save = save
        self.reconstruct = reconstruct
        self.gauge = gauge

    def __set_name__(self, owner: type, attr: str) -> None:
        self.attr = attr

    def __get__(self, obj: Any, owner: Optional[type] = None) -> Any:
        if obj is None:
            return self
        try:
            return obj.__dict__[self.attr]
        except KeyError:
            pass
        if self.factory is not None:
            value = self.factory()
        elif self.default is not _MISSING:
            value = self.default
        else:
            raise AttributeError(
                f"{type(obj).__name__}.{self.attr} has no default and was "
                f"never assigned"
            )
        obj.__dict__[self.attr] = value
        return value

    def describe(self) -> Dict[str, Any]:
        if self.factory is not None:
            default = f"{getattr(self.factory, '__name__', self.factory)}()"
        elif self.default is not _MISSING:
            default = repr(self.default)
        else:
            default = None
        return {
            "name": self.attr,
            "doc": self.doc,
            "default": default,
            "save": self.save,
            "reconstruct": self.reconstruct,
            "gauge": self.gauge,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StateSpec {self.attr!r}>"


def state(default: Any = _MISSING, *, save: bool = True,
          reconstruct: Optional[str] = None, gauge: bool = False,
          doc: str = "") -> StateSpec:
    """Declare a run-state attribute (see :class:`StateSpec`).

    ``default`` may be a value or a zero-argument callable (``dict``,
    ``list``, a lambda) — callables are treated as per-instance
    factories, so mutable defaults are safe.
    """
    if callable(default) and default is not _MISSING:
        return StateSpec(factory=default, save=save, reconstruct=reconstruct,
                         gauge=gauge, doc=doc)
    return StateSpec(default, save=save, reconstruct=reconstruct,
                     gauge=gauge, doc=doc)


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------

class StatSpec:
    """A declared statistic, registered automatically at construction.

    The attribute name minus a leading ``s_`` is the registered name
    unless ``name=`` overrides it; ``Component.__init__`` instantiates
    every declared statistic into ``self.<attr>`` (same objects as
    ``self.stats.get(name)``), preserving the library's ``self.s_hits``
    fast-access idiom without any per-subclass plumbing.
    """

    __slots__ = ("attr", "kind", "name", "doc", "kwargs")

    def __init__(self, kind: str, name: Optional[str] = None, *,
                 doc: str = "", **kwargs: Any):
        if kind not in ("counter", "accumulator", "histogram"):
            raise SpecError(f"unknown statistic kind {kind!r}")
        self.attr: Optional[str] = None
        self.kind = kind
        self.name = name
        self.doc = doc
        self.kwargs = kwargs

    def __set_name__(self, owner: type, attr: str) -> None:
        self.attr = attr
        if self.name is None:
            self.name = attr[2:] if attr.startswith("s_") else attr

    def instantiate(self, group: Any) -> Any:
        factory = getattr(group, self.kind)
        return factory(self.name, **self.kwargs)

    def __get__(self, obj: Any, owner: Optional[type] = None) -> Any:
        if obj is None:
            return self
        try:
            return obj.__dict__[self.attr]
        except KeyError:  # pragma: no cover - stats are created in __init__
            raise AttributeError(self.attr) from None

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "doc": self.doc,
                **{k: v for k, v in self.kwargs.items()}}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StatSpec {self.kind} {self.name!r}>"


class _StatFactory:
    """The ``stat`` namespace: ``stat.counter`` / ``.accumulator`` / ``.histogram``."""

    @staticmethod
    def counter(name: Optional[str] = None, *, doc: str = "") -> StatSpec:
        return StatSpec("counter", name, doc=doc)

    @staticmethod
    def accumulator(name: Optional[str] = None, *, doc: str = "") -> StatSpec:
        return StatSpec("accumulator", name, doc=doc)

    @staticmethod
    def histogram(name: Optional[str] = None, *, low: float = 0.0,
                  bin_width: float = 1.0, n_bins: int = 32,
                  doc: str = "") -> StatSpec:
        return StatSpec("histogram", name, doc=doc, low=low,
                        bin_width=bin_width, n_bins=n_bins)


stat = _StatFactory()


# ----------------------------------------------------------------------
# typed constructor parameters
# ----------------------------------------------------------------------

#: ``kind`` -> Params accessor used to parse a declared parameter.
_PARAM_ACCESSORS = {
    "str": "find_str",
    "int": "find_int",
    "float": "find_float",
    "bool": "find_bool",
    "time": "find_time",
    "period": "find_period",
    "freq": "find_freq_hz",
    "size": "find_size_bytes",
    "bandwidth": "find_bandwidth",
}


class ParamSpec:
    """A declared, typed constructor parameter.

    ``Component.__init__`` (and ``SubComponent.__init__``) parses every
    declared parameter out of the instance's
    :class:`~repro.core.params.Params` with the accessor matching
    ``kind`` and assigns the result to ``self.<attr>`` before the
    subclass body runs.  ``choices`` both validates the configured
    value and exports the parameter as a sweep dimension through
    :func:`sweep_axes`.
    """

    __slots__ = ("attr", "name", "doc", "default", "kind", "choices")

    def __init__(self, default: Any, *, kind: Optional[str] = None,
                 choices: Optional[tuple] = None, doc: str = "",
                 name: Optional[str] = None):
        if kind is None:
            if isinstance(default, bool):
                kind = "bool"
            elif isinstance(default, int):
                kind = "int"
            elif isinstance(default, float):
                kind = "float"
            else:
                kind = "str"
        if kind not in _PARAM_ACCESSORS:
            raise SpecError(
                f"param(): unknown kind {kind!r} "
                f"(one of {sorted(_PARAM_ACCESSORS)})")
        self.attr: Optional[str] = None
        self.name = name
        self.doc = doc
        self.default = default
        self.kind = kind
        self.choices = tuple(choices) if choices is not None else None

    def __set_name__(self, owner: type, attr: str) -> None:
        self.attr = attr
        if self.name is None:
            self.name = attr

    def parse(self, params: Any) -> Any:
        """Fetch + type this parameter from a Params instance."""
        value = getattr(params, _PARAM_ACCESSORS[self.kind])(
            self.name, self.default)
        if self.choices is not None and value not in self.choices:
            from .params import ParamError

            raise ParamError(
                f"parameter {self.name!r}={value!r} not one of "
                f"{list(self.choices)}")
        return value

    def __get__(self, obj: Any, owner: Optional[type] = None) -> Any:
        if obj is None:
            return self
        try:
            return obj.__dict__[self.attr]
        except KeyError:
            return self.default

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "doc": self.doc,
            "kind": self.kind,
            "default": self.default,
            "choices": list(self.choices) if self.choices else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ParamSpec {self.name!r}>"


def param(default: Any, *, kind: Optional[str] = None,
          choices: Optional[tuple] = None, doc: str = "",
          name: Optional[str] = None) -> ParamSpec:
    """Declare a typed constructor parameter (see :class:`ParamSpec`).

    >>> class Scheduler(Component):
    ...     nodes = param(16, doc="cluster node count")
    ...     mode = param("poisson", choices=("poisson", "burst"))
    """
    return ParamSpec(default, kind=kind, choices=choices, doc=doc, name=name)


# ----------------------------------------------------------------------
# subcomponent slots
# ----------------------------------------------------------------------

class SlotSpec:
    """A declared subcomponent slot (SST's subcomponent API).

    The attribute name is both the Params key selecting the registered
    subcomponent type (``{"policy": "cluster.EASYBackfill"}``) and the
    sub-parameter scope (``policy.<key>`` params reach the
    subcomponent).  ``Component.__init__`` resolves the configured type
    through the registry, checks it against ``base`` (and ``choices``,
    when given) and instantiates it; the config builder performs the
    same validation *before* any component is instantiated, so a typo'd
    policy name fails at graph-build time with the component and slot
    named.
    """

    __slots__ = ("attr", "doc", "base", "default", "choices", "required")

    def __init__(self, doc: str = "", *, base: Optional[type] = None,
                 default: Optional[str] = None,
                 choices: Optional[tuple] = None, required: bool = True):
        self.attr: Optional[str] = None
        self.doc = doc
        self.base = base
        self.default = default
        self.choices = tuple(choices) if choices is not None else None
        if default is None and required:
            raise SpecError("slot(): a required slot needs a default "
                            "registered type name")
        self.required = required

    def __set_name__(self, owner: type, attr: str) -> None:
        self.attr = attr

    def configured_type(self, params: Any) -> Optional[str]:
        """The registered type name this slot resolves to under ``params``.

        ``params`` may be a :class:`~repro.core.params.Params` or any
        mapping (the config builder passes the raw conf dict).
        """
        value = params.get(self.attr, self.default)
        return None if value is None else str(value)

    def check(self, type_name: str, sub_cls: type) -> None:
        """Validate a resolved subcomponent class against this slot.

        Raises :class:`SpecError` on a base-class or choices mismatch;
        the caller decides whether that surfaces as a config or a
        construction error.
        """
        if self.choices is not None and type_name not in self.choices:
            raise SpecError(
                f"slot {self.attr!r}: type {type_name!r} not one of "
                f"{list(self.choices)}")
        if self.base is not None and not (isinstance(sub_cls, type)
                                          and issubclass(sub_cls, self.base)):
            raise SpecError(
                f"slot {self.attr!r}: type {type_name!r} ({sub_cls!r}) is "
                f"not a {self.base.__name__} subclass")

    def __get__(self, obj: Any, owner: Optional[type] = None) -> Any:
        if obj is None:
            return self
        # The resolved subcomponent lives in the instance __dict__ and
        # shadows this non-data descriptor; reaching here means the
        # slot was never filled (required=False without a default).
        return None

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.attr,
            "doc": self.doc,
            "base": self.base.__name__ if self.base is not None else None,
            "default": self.default,
            "choices": list(self.choices) if self.choices else None,
            "required": self.required,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SlotSpec {self.attr!r}>"


def slot(doc: str = "", *, base: Optional[type] = None,
         default: Optional[str] = None, choices: Optional[tuple] = None,
         required: bool = True) -> SlotSpec:
    """Declare a subcomponent slot (see :class:`SlotSpec`).

    >>> class Scheduler(Component):
    ...     policy = slot("queue policy", base=SchedPolicy,
    ...                   default="cluster.FCFS",
    ...                   choices=("cluster.FCFS", "cluster.EASYBackfill"))
    """
    return SlotSpec(doc, base=base, default=default, choices=choices,
                    required=required)


# ----------------------------------------------------------------------
# class-level introspection
# ----------------------------------------------------------------------

def collect_specs(cls: type) -> Dict[str, Dict[str, Any]]:
    """MRO-ordered spec tables for a component class.

    Returns ``{"ports": {port_name: PortSpec}, "state": {attr:
    StateSpec}, "stats": {attr: StatSpec}, "params": {attr: ParamSpec},
    "slots": {attr: SlotSpec}}`` with base-class declarations first and
    subclass re-declarations overriding.
    """
    ports: Dict[str, PortSpec] = {}
    states: Dict[str, StateSpec] = {}
    stats: Dict[str, StatSpec] = {}
    params: Dict[str, ParamSpec] = {}
    slots: Dict[str, SlotSpec] = {}
    for klass in reversed(cls.__mro__):
        for attr, value in vars(klass).items():
            if isinstance(value, PortSpec):
                ports[value.name] = value
            elif isinstance(value, StateSpec):
                states[attr] = value
            elif isinstance(value, StatSpec):
                stats[attr] = value
            elif isinstance(value, ParamSpec):
                params[attr] = value
            elif isinstance(value, SlotSpec):
                slots[attr] = value
    return {"ports": ports, "state": states, "stats": stats,
            "params": params, "slots": slots}


def sweep_axes(cls: type) -> Dict[str, tuple]:
    """Sweep dimensions derived from a component's declarations.

    Every declared :func:`param` carrying ``choices`` contributes an
    axis, as does every :func:`slot` (its axis values are the
    registered type names it accepts).  The result maps the Params key
    to the value tuple, in declaration order, ready to feed a
    `repro.dse`-style grid::

        axes = sweep_axes(Scheduler)          # {"policy": (...), ...}
        for point in itertools.product(*axes.values()):
            overrides = dict(zip(axes, point))
    """
    axes: Dict[str, tuple] = {}
    for attr, spec in getattr(cls, "_param_specs", {}).items():
        if spec.choices:
            axes[spec.name] = tuple(spec.choices)
    for attr, spec in getattr(cls, "_slot_specs", {}).items():
        if spec.choices:
            axes[attr] = tuple(spec.choices)
    return axes


def describe_component(cls: type) -> Dict[str, Any]:
    """JSON-ready description of a component class's declarations.

    Used by ``python -m repro component describe`` and by
    :func:`repro.config.serialize.to_dict` with ``describe=True``.
    """
    ports = getattr(cls, "_port_specs", {})
    states = getattr(cls, "_state_specs", {})
    stats = getattr(cls, "_stat_specs", {})
    params = getattr(cls, "_param_specs", {})
    slots = getattr(cls, "_slot_specs", {})
    doc = (cls.__doc__ or "").strip().splitlines()
    return {
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "type_name": getattr(cls, "TYPE_NAME", None),
        "summary": doc[0] if doc else "",
        "ports": [spec.describe() for spec in ports.values()],
        "state": [spec.describe() for spec in states.values()],
        "stats": [spec.describe() for spec in stats.values()],
        "params": [spec.describe() for spec in params.values()],
        "slots": [spec.describe() for spec in slots.values()],
        "legacy_ports": (
            dict(cls.PORTS) if not ports and getattr(cls, "PORTS", None)
            else None),
    }


def validate_port_name(cls: type, port_name: str) -> bool:
    """Graph-build-time check: is ``port_name`` declared on ``cls``?

    Classes that declare no port specs (legacy / out-of-tree) accept
    anything, as does a class opting out via
    ``ALLOW_UNDECLARED_PORTS = True``.
    """
    specs = getattr(cls, "_port_specs", None)
    if not specs or getattr(cls, "ALLOW_UNDECLARED_PORTS", False):
        return True
    return any(spec.matches(port_name) for spec in specs.values())
