"""Pending-event set implementations.

The simulator's hot loop is ``pop smallest-timestamp record / execute /
push successors``, so the queue dominates engine throughput.  Two
interchangeable implementations are provided:

* :class:`HeapEventQueue` — a binary heap (``heapq``).  O(log n), low
  constant factor, the default.
* :class:`BinnedEventQueue` — a calendar-style queue with fixed-width
  time bins and an overflow heap.  O(1) amortised for workloads whose
  event horizon is short relative to the bin width (clocked component
  graphs), but degrades when timestamps are spread widely.

``benchmarks/bench_engine_throughput.py`` carries the ablation between
the two (experiment ENG-1 in DESIGN.md).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional

from .event import Event, EventRecord, Handler, acquire_record
from .units import SimTime


class EventQueueBase:
    """Interface shared by all pending-event set implementations."""

    def push(
        self,
        time: SimTime,
        priority: int,
        handler: Optional[Handler],
        event: Optional[Event],
    ) -> EventRecord:
        raise NotImplementedError

    def push_record(self, record: EventRecord) -> None:
        raise NotImplementedError

    def pop(self) -> EventRecord:
        raise NotImplementedError

    def peek_time(self) -> Optional[SimTime]:
        """Timestamp of the earliest record, or None when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- checkpoint support ------------------------------------------------
    # The insertion-sequence counter is part of the determinism contract:
    # a restored queue must hand out exactly the seq values the original
    # would have, so `repro.ckpt` captures it explicitly (the max pending
    # seq underestimates it whenever the newest records have already been
    # popped).

    @property
    def seq(self) -> int:
        """The next insertion sequence number this queue will assign."""
        raise NotImplementedError

    def snapshot_records(self) -> List[EventRecord]:
        """All pending records, non-destructively, in no particular order."""
        raise NotImplementedError

    def restore_records(self, records: List[EventRecord], seq: int) -> None:
        """Replace the queue's contents and seq counter wholesale.

        Existing records are discarded (a rebuild pushes setup-time
        events that the snapshot's records supersede).  ``records`` must
        already carry their final seq values.
        """
        raise NotImplementedError


class HeapEventQueue(EventQueueBase):
    """Binary-heap pending-event set (the default engine queue)."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[EventRecord] = []
        self._seq = 0

    def push(
        self,
        time: SimTime,
        priority: int,
        handler: Optional[Handler],
        event: Optional[Event],
    ) -> EventRecord:
        record = acquire_record(time, priority, self._seq, handler, event)
        self._seq += 1
        heapq.heappush(self._heap, record)
        return record

    def push_record(self, record: EventRecord) -> None:
        # Records arriving from another rank already carry a sequence
        # number; keep the local counter ahead of it so later local
        # pushes sort after.
        if record.seq >= self._seq:
            self._seq = record.seq + 1
        heapq.heappush(self._heap, record)

    def pop(self) -> EventRecord:
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[SimTime]:
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def seq(self) -> int:
        return self._seq

    def snapshot_records(self) -> List[EventRecord]:
        return list(self._heap)

    def restore_records(self, records: List[EventRecord], seq: int) -> None:
        self._heap = list(records)
        heapq.heapify(self._heap)
        self._seq = seq


class BinnedEventQueue(EventQueueBase):
    """Calendar-queue variant: fixed-width bins plus an overflow heap.

    Records within ``horizon = bin_width * n_bins`` of the current front
    go into per-bin FIFO deques (sorted lazily on first pop from the
    bin); records beyond the horizon land in an overflow heap that is
    drained as the calendar advances.

    Parameters
    ----------
    bin_width:
        Bin granularity in picoseconds.  A good choice is the GCD of
        the clock periods in the design (e.g. 1000 for a 1 GHz system).
    n_bins:
        Number of bins in the rotating calendar window.
    """

    __slots__ = ("_bin_width", "_n_bins", "_bins", "_base", "_overflow", "_seq", "_count")

    def __init__(self, bin_width: SimTime = 1000, n_bins: int = 256) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        self._bin_width = bin_width
        self._n_bins = n_bins
        self._bins: Dict[int, List[EventRecord]] = {}
        self._base = 0  # index of the first bin in the active window
        self._overflow: List[EventRecord] = []
        self._seq = 0
        self._count = 0

    def _bin_index(self, time: SimTime) -> int:
        return time // self._bin_width

    def push(
        self,
        time: SimTime,
        priority: int,
        handler: Optional[Handler],
        event: Optional[Event],
    ) -> EventRecord:
        record = acquire_record(time, priority, self._seq, handler, event)
        self._seq += 1
        self.push_record(record)
        return record

    def push_record(self, record: EventRecord) -> None:
        if record.seq >= self._seq:
            self._seq = record.seq + 1
        index = self._bin_index(record.time)
        if index >= self._base + self._n_bins:
            heapq.heappush(self._overflow, record)
        else:
            self._bins.setdefault(index, []).append(record)
        self._count += 1

    def _advance(self) -> None:
        """Move the window forward until the front bin is non-empty."""
        while True:
            if self._bins:
                lowest = min(self._bins)
                if lowest >= self._base:
                    self._base = lowest
            if self._overflow:
                over_index = self._bin_index(self._overflow[0].time)
                if not self._bins or over_index <= min(self._bins):
                    self._base = over_index
            # Drain overflow records that now fall inside the window.
            horizon = self._base + self._n_bins
            moved = False
            while self._overflow and self._bin_index(self._overflow[0].time) < horizon:
                record = heapq.heappop(self._overflow)
                self._bins.setdefault(self._bin_index(record.time), []).append(record)
                moved = True
            if not moved:
                return

    def pop(self) -> EventRecord:
        if self._count == 0:
            raise IndexError("pop from empty BinnedEventQueue")
        self._advance()
        lowest = min(self._bins)
        bucket = self._bins[lowest]
        # Lazy sort: a bin is sorted only when the window front reaches it.
        if len(bucket) > 1:
            bucket.sort(reverse=True)  # pop() from the end = smallest first
            record = bucket.pop()
        else:
            record = bucket.pop()
        if not bucket:
            del self._bins[lowest]
        self._count -= 1
        return record

    def peek_time(self) -> Optional[SimTime]:
        if self._count == 0:
            return None
        self._advance()
        lowest = min(self._bins)
        return min(r.time for r in self._bins[lowest])

    def __len__(self) -> int:
        return self._count

    @property
    def seq(self) -> int:
        return self._seq

    def snapshot_records(self) -> List[EventRecord]:
        records = [r for bucket in self._bins.values() for r in bucket]
        records.extend(self._overflow)
        return records

    def restore_records(self, records: List[EventRecord], seq: int) -> None:
        self._bins = {}
        self._overflow = []
        self._base = 0
        self._count = 0
        for record in records:
            self.push_record(record)
        self._seq = seq


#: Registry used by Simulation(queue="...") and the ENG-1 ablation bench.
QUEUE_TYPES = {
    "heap": HeapEventQueue,
    "binned": BinnedEventQueue,
}


def make_queue(kind: str = "heap", **kwargs) -> EventQueueBase:
    """Instantiate a pending-event set by name (``"heap"`` or ``"binned"``)."""
    try:
        factory = QUEUE_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown event queue type {kind!r}; options: {sorted(QUEUE_TYPES)}")
    return factory(**kwargs)
