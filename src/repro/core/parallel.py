"""Conservative parallel discrete-event engine.

SST runs one MPI rank per partition of the component graph and uses a
conservative, barrier-synchronised protocol: because components interact
only over links with latency >= L_min (the smallest latency of any link
that crosses a rank boundary), every rank may safely simulate
``lookahead = L_min`` past the globally earliest pending event before
exchanging cross-rank events and re-synchronising.

PySST reproduces that protocol faithfully.  Two execution backends are
provided:

* ``serial``  — ranks execute their epoch windows one after another in
  the calling thread.  Zero concurrency, 100% determinism; this is the
  reference backend used by the equivalence tests.
* ``threads`` — ranks execute each epoch concurrently in a thread pool.
  Determinism is preserved (event exchange is sorted), but the CPython
  GIL means this demonstrates *protocol* scaling, not wall-clock
  scaling — exactly the "PDES core far too slow in Python" caveat in
  DESIGN.md.  Epoch counts, exchanged-event counts and lookahead
  sensitivity (the quantities benchmarked by ENG-2) are backend
  independent.

The per-rank sub-simulations are ordinary :class:`Simulation` objects;
cross-rank links are ordinary :class:`Link` objects whose endpoints are
re-targeted at rank outboxes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from . import units
from .component import Component
from .event import Event, EventRecord
from .link import Link, LinkError, Port
from .simulation import Simulation, SimulationError
from .units import SimTime

_INF = float("inf")


@dataclass
class ParallelRunResult:
    """Outcome of a :meth:`ParallelSimulation.run` call."""

    reason: str  #: "exhausted" | "exit" | "max_time"
    end_time: SimTime
    events_executed: int
    epochs: int
    remote_events: int  #: events exchanged across rank boundaries
    lookahead: SimTime
    wall_seconds: float
    per_rank_events: List[int] = field(default_factory=list)


class _CrossRankLink:
    """Bookkeeping for one link whose endpoints live on different ranks."""

    __slots__ = ("link_id", "name", "latency", "port_a", "port_b",
                 "rank_a", "rank_b")

    def __init__(self, link_id: int, name: str, latency: SimTime,
                 port_a: Port, rank_a: int, port_b: Port, rank_b: int):
        self.link_id = link_id
        self.name = name
        self.latency = latency
        self.port_a = port_a
        self.port_b = port_b
        self.rank_a = rank_a
        self.rank_b = rank_b


class ParallelSimulation:
    """A multi-rank conservative PDES composed of per-rank Simulations.

    Usage mirrors :class:`Simulation` but components are created against
    a specific rank::

        psim = ParallelSimulation(num_ranks=4, seed=3)
        a = Producer(psim.rank_sim(0), "a", params)
        b = Consumer(psim.rank_sim(3), "b", params)
        psim.connect(a, "out", b, "in", latency="50ns")
        result = psim.run(max_time="1ms")
    """

    def __init__(self, num_ranks: int, *, seed: int = 1, queue: str = "heap",
                 backend: str = "serial", verbose: bool = False):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if backend not in ("serial", "threads"):
            raise ValueError(f"unknown backend {backend!r}")
        self.num_ranks = num_ranks
        self.backend = backend
        self.seed = seed
        self._sims = [
            Simulation(queue=queue, seed=seed, rank=r, num_ranks=num_ranks,
                       verbose=verbose)
            for r in range(num_ranks)
        ]
        # outboxes[src_rank] = list of (time, priority, link_id, dest_rank,
        #                               send_seq, event)
        self._outboxes: List[List[Tuple[SimTime, int, int, int, int, Event]]] = [
            [] for _ in range(num_ranks)
        ]
        self._send_seq = [0] * num_ranks
        self._cross_links: Dict[int, _CrossRankLink] = {}
        self._next_link_id = 0
        self._lookahead: Optional[SimTime] = None
        self._setup_done = False
        self._pool: Optional[ThreadPoolExecutor] = None
        # counters for ENG-2
        self.total_epochs = 0
        self.total_remote_events = 0

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def rank_sim(self, rank: int) -> Simulation:
        """The per-rank :class:`Simulation` components are created against."""
        return self._sims[rank]

    def rank_of(self, component: Component) -> int:
        return component.sim.rank

    def connect(self, comp_a: Component, port_a: str, comp_b: Component,
                port_b: str, *, latency: Union[str, int] = "1ps",
                name: Optional[str] = None) -> None:
        """Wire two components; cross-rank links are proxied automatically."""
        rank_a = self.rank_of(comp_a)
        rank_b = self.rank_of(comp_b)
        lat = units.parse_time(latency, default_unit="ps")
        if rank_a == rank_b:
            self._sims[rank_a].connect(comp_a, port_a, comp_b, port_b,
                                       latency=lat, name=name)
            return
        pa = comp_a.port(port_a)
        pb = comp_b.port(port_b)
        if pa.connected or pb.connected:
            raise LinkError(
                f"port already connected: {pa.full_name()} / {pb.full_name()}"
            )
        link_name = name or f"{pa.full_name()}--{pb.full_name()}"
        link = Link.connect(link_name, lat, pa, pb,
                            self._sims[rank_a], self._sims[rank_b])
        link_id = self._next_link_id
        self._next_link_id += 1
        cross = _CrossRankLink(link_id, link_name, lat, pa, rank_a, pb, rank_b)
        self._cross_links[link_id] = cross
        # Retarget each endpoint at its rank's outbox.
        end_a, end_b = link.endpoints
        end_a.set_remote(self._make_remote_sender(rank_a, rank_b, link_id))
        end_b.set_remote(self._make_remote_sender(rank_b, rank_a, link_id))
        if self._lookahead is None or lat < self._lookahead:
            self._lookahead = lat

    def _make_remote_sender(self, src_rank: int, dest_rank: int, link_id: int):
        outbox = self._outboxes[src_rank]

        def sender(when: SimTime, priority: int, event: Event) -> None:
            seq = self._send_seq[src_rank]
            self._send_seq[src_rank] = seq + 1
            outbox.append((when, priority, link_id, dest_rank, seq, event))

        return sender

    @property
    def lookahead(self) -> SimTime:
        """Conservative sync window: min latency among cross-rank links.

        With no cross-rank links the ranks are independent and the
        window is unbounded (represented as a large constant).
        """
        return self._lookahead if self._lookahead is not None else units.PS_PER_SEC

    @property
    def cross_link_count(self) -> int:
        return len(self._cross_links)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self) -> None:
        if self._setup_done:
            return
        self._setup_done = True
        for sim in self._sims:
            sim.setup()

    def finish(self) -> None:
        for sim in self._sims:
            sim.finish()

    # ------------------------------------------------------------------
    # epoch machinery
    # ------------------------------------------------------------------
    def _global_next_time(self) -> float:
        """Earliest pending work anywhere: queued events or undelivered sends."""
        lowest: float = _INF
        for sim in self._sims:
            t = sim.next_event_time()
            if t is not None and t < lowest:
                lowest = t
        for outbox in self._outboxes:
            for entry in outbox:
                if entry[0] < lowest:
                    lowest = entry[0]
        return lowest

    def _exchange(self) -> int:
        """Deliver all outbox events to their destination rank queues.

        Deliveries are sorted on a global deterministic key so that the
        receiving queue's tie-breaking is independent of rank execution
        order (and therefore of the backend).
        """
        pending: List[Tuple[SimTime, int, int, int, int, Event]] = []
        for outbox in self._outboxes:
            pending.extend(outbox)
            outbox.clear()
        if not pending:
            return 0
        pending.sort(key=lambda e: (e[0], e[1], e[2], e[4]))
        for when, priority, link_id, dest_rank, _seq, event in pending:
            cross = self._cross_links[link_id]
            dest_port = cross.port_b if dest_rank == cross.rank_b else cross.port_a
            dest_sim = self._sims[dest_rank]
            dest_sim._queue.push(when, priority, dest_port.deliver, event)
        self.total_remote_events += len(pending)
        return len(pending)

    def _primaries_exist(self) -> bool:
        return any(sim._primary_components for sim in self._sims)

    def _primaries_pending(self) -> int:
        return sum(sim.primaries_pending for sim in self._sims)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self, max_time: Optional[Union[str, int]] = None,
            max_epochs: Optional[int] = None) -> ParallelRunResult:
        """Run the conservative epoch loop to completion or a limit."""
        import time as _wall

        if not self._setup_done:
            self.setup()
        limit = units.parse_time(max_time, default_unit="ps") if max_time is not None else None
        lookahead = self.lookahead
        start_wall = _wall.perf_counter()
        start_events = [sim.events_executed for sim in self._sims]
        epochs = 0
        reason = "exhausted"
        if self.backend == "threads" and self._pool is None and self.num_ranks > 1:
            self._pool = ThreadPoolExecutor(max_workers=self.num_ranks)
        try:
            while True:
                if max_epochs is not None and epochs >= max_epochs:
                    reason = "max_epochs"
                    break
                # Deliver any cross-rank events first (including sends made
                # during setup()) so the safe window sees a complete queue.
                self._exchange()
                global_min = self._global_next_time()
                if global_min == _INF:
                    reason = "exhausted"
                    break
                if limit is not None and global_min > limit:
                    reason = "max_time"
                    break
                # Safe window: any send made while executing t >= global_min
                # arrives at >= global_min + lookahead, i.e. after epoch_end.
                epoch_end = int(global_min) + lookahead - 1
                if limit is not None:
                    epoch_end = min(epoch_end, limit)
                self._run_epoch(epoch_end)
                epochs += 1
                if self._primaries_exist() and self._primaries_pending() == 0:
                    reason = "exit"
                    break
        finally:
            self.total_epochs += epochs
        # Report the time of the last real event; align rank clocks to it.
        end_time = max(sim.last_event_time for sim in self._sims)
        for sim in self._sims:
            if sim.now < end_time:
                sim.now = end_time
        self.finish()
        wall = _wall.perf_counter() - start_wall
        per_rank = [
            sim.events_executed - s0 for sim, s0 in zip(self._sims, start_events)
        ]
        return ParallelRunResult(
            reason=reason,
            end_time=end_time,
            events_executed=sum(per_rank),
            epochs=epochs,
            remote_events=self.total_remote_events,
            lookahead=lookahead,
            wall_seconds=wall,
            per_rank_events=per_rank,
        )

    def _run_epoch(self, epoch_end: SimTime) -> None:
        if self.backend == "threads" and self._pool is not None:
            futures = [
                self._pool.submit(sim.run_step, epoch_end) for sim in self._sims
            ]
            for f in futures:
                f.result()  # re-raise worker exceptions
        else:
            for sim in self._sims:
                sim.run_step(epoch_end)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Merged statistics from every rank (component names are unique)."""
        merged: Dict[str, Any] = {}
        for sim in self._sims:
            for key, stat in sim.stats().items():
                if key in merged:
                    merged[key].merge(stat)
                else:
                    merged[key] = stat
        return merged

    def stat_values(self) -> Dict[str, float]:
        return {key: stat.value() for key, stat in self.stats().items()}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelSimulation":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
