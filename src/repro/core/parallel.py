"""Conservative parallel discrete-event engine.

SST runs one MPI rank per partition of the component graph and uses a
conservative, barrier-synchronised protocol: because components interact
only over links with latency >= L_min (the smallest latency of any link
that crosses a rank boundary), every rank may safely simulate
``lookahead = L_min`` past the globally earliest pending event before
exchanging cross-rank events and re-synchronising.

PySST reproduces that protocol faithfully, split across three explicit
layers (see docs/ARCHITECTURE.md):

* the **kernel loop** (:mod:`repro.core.kernel`) executes one rank's
  events inside a window;
* the **sync strategy** (:mod:`repro.core.sync`) computes epoch windows
  and orders the cross-rank exchange deterministically;
* the **execution backend** (:mod:`repro.core.backends`) decides where
  the per-rank kernels run: ``serial`` (reference, calling thread),
  ``threads`` (GIL-bound, protocol scaling only) or ``processes``
  (forked per-rank workers exchanging serialized event batches over
  pipes — true multi-core scaling).

:class:`ParallelSimulation` composes the three: it owns the per-rank
:class:`Simulation` objects and the cross-rank link table, drives the
epoch loop, and folds per-rank results into engine statistics and
epoch observers.  The per-rank sub-simulations are ordinary
:class:`Simulation` objects; cross-rank links are ordinary
:class:`Link` objects whose endpoints are re-targeted at rank outboxes.
"""

from __future__ import annotations

import time as _wall_time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from . import units
from .backends import (BACKENDS, ExecutionBackend, RankStep, make_backend,
                       outbox_count)
from .component import Component
from .event import Event, EventRecord
from .link import Link, LinkError, Port
from .simulation import Simulation, SimulationError
from .sync import SyncStrategy, make_sync
from .units import SimTime

_INF = float("inf")

#: processes-backend data-plane transports (see repro.core.backends)
TRANSPORTS = ("pipe", "shm")


@dataclass
class ParallelRunResult:
    """Outcome of a :meth:`ParallelSimulation.run` call."""

    reason: str  #: "exhausted" | "exit" | "max_time"
    end_time: SimTime
    events_executed: int
    epochs: int
    remote_events: int  #: events exchanged across rank boundaries
    lookahead: SimTime
    wall_seconds: float
    per_rank_events: List[int] = field(default_factory=list)
    #: wall time spent executing rank epoch windows, summed over ranks
    exec_seconds: float = 0.0
    #: wall time ranks spent waiting at the epoch barrier (sum over
    #: ranks of slowest-rank-time minus own time, per epoch)
    barrier_wait_seconds: float = 0.0
    #: wall time spent sorting/delivering cross-rank events
    exchange_seconds: float = 0.0
    #: per-rank cumulative barrier-wait seconds
    per_rank_barrier_wait: List[float] = field(default_factory=list)
    #: fraction of the granted epoch windows (sum of per-epoch widths)
    #: the run actually advanced through — low values mean the sync
    #: windows are forcing many near-empty epochs
    lookahead_utilization: float = 0.0
    #: transport payload bytes moved by the cross-rank exchange
    #: (both directions; 0 for in-process backends)
    exchange_bytes: int = 0
    #: events executed per wall-clock second (engine throughput)
    events_per_second: float = field(init=False)

    def __post_init__(self) -> None:
        self.events_per_second = (
            self.events_executed / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (embedded in run manifests)."""
        return {
            "reason": self.reason,
            "end_time_ps": self.end_time,
            "events_executed": self.events_executed,
            "epochs": self.epochs,
            "remote_events": self.remote_events,
            "lookahead_ps": self.lookahead,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
            "per_rank_events": list(self.per_rank_events),
            "exec_seconds": self.exec_seconds,
            "barrier_wait_seconds": self.barrier_wait_seconds,
            "exchange_seconds": self.exchange_seconds,
            "per_rank_barrier_wait": list(self.per_rank_barrier_wait),
            "lookahead_utilization": self.lookahead_utilization,
            "exchange_bytes": self.exchange_bytes,
        }


@dataclass
class EpochInfo:
    """One conservative-sync epoch, as seen by epoch observers.

    Passed to callbacks registered via
    :meth:`ParallelSimulation.add_epoch_observer` — the parallel-engine
    analogue of the sequential heartbeat hook (telemetry, progress and
    trace exporters attach here).
    """

    index: int  #: epoch number within this run (0-based)
    window_start: SimTime  #: global earliest pending event this epoch
    window_end: SimTime  #: inclusive end of the safe window
    exchanged_events: int  #: cross-rank events delivered before the epoch
    exchange_seconds: float
    wall_seconds: float  #: wall time of the whole epoch execution phase
    per_rank_events: List[int]
    per_rank_wall: List[float]
    per_rank_barrier_wait: List[float]
    events_total: int  #: cumulative events executed so far in this run
    now: SimTime  #: engine sim-time high-water mark after the epoch
    #: transport payload bytes this epoch's exchange moved (both
    #: directions; 0 for in-process backends)
    exchange_bytes: int = 0

    @property
    def window_width(self) -> SimTime:
        """Simulated width of this epoch's safe window (ps, inclusive)."""
        return self.window_end - self.window_start + 1


class _CrossRankLink:
    """Bookkeeping for one link whose endpoints live on different ranks."""

    __slots__ = ("link_id", "name", "latency", "port_a", "port_b",
                 "rank_a", "rank_b")

    def __init__(self, link_id: int, name: str, latency: SimTime,
                 port_a: Port, rank_a: int, port_b: Port, rank_b: int):
        self.link_id = link_id
        self.name = name
        self.latency = latency
        self.port_a = port_a
        self.port_b = port_b
        self.rank_a = rank_a
        self.rank_b = rank_b


class ParallelSimulation:
    """A multi-rank conservative PDES composed of per-rank Simulations.

    Usage mirrors :class:`Simulation` but components are created against
    a specific rank::

        psim = ParallelSimulation(num_ranks=4, seed=3)
        a = Producer(psim.rank_sim(0), "a", params)
        b = Consumer(psim.rank_sim(3), "b", params)
        psim.connect(a, "out", b, "in", latency="50ns")
        result = psim.run(max_time="1ms")
    """

    def __init__(self, num_ranks: int, *, seed: int = 1, queue: str = "heap",
                 backend: str = "serial", verbose: bool = False,
                 clock_arbiter: Optional[bool] = None,
                 transport: str = "pipe", sync: str = "conservative"):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; options: {sorted(BACKENDS)}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; options: {list(TRANSPORTS)}"
            )
        self.num_ranks = num_ranks
        self.backend = backend
        #: processes-backend data plane: "pipe" (pickled batches) or
        #: "shm" (shared-memory rings; in-process backends ignore it)
        self.transport = transport
        self.sync_name = sync
        self.seed = seed
        self.queue_kind = queue
        #: partitioner strategy label; set by config.build_parallel for
        #: run manifests, None for hand-built graphs.
        self.partition_strategy: Optional[str] = None
        # Every rank shares the base seed (component streams key off it,
        # which is what makes sequential/parallel statistics identical)
        # but receives a distinct engine-level stream via seed-sequence
        # spawn — see Simulation.engine_rng.
        rank_seeds = np.random.SeedSequence(seed).spawn(num_ranks)
        self._sims = [
            Simulation(queue=queue, seed=seed, rank=r, num_ranks=num_ranks,
                       rank_seed=int(rank_seeds[r].generate_state(1)[0]),
                       verbose=verbose, clock_arbiter=clock_arbiter)
            for r in range(num_ranks)
        ]
        # Per-rank conservative-sync metrics, kept in each rank's
        # engine-level StatisticGroup so ParallelSimulation.sync_stats()
        # can fold them together with Statistic.merge().
        self._sync_stats = []
        for sim in self._sims:
            es = sim.engine_stats
            self._sync_stats.append({
                "epochs": es.counter("sync.epochs"),
                "epoch_events": es.accumulator("sync.epoch_events"),
                "exec_s": es.accumulator("sync.exec_s"),
                "barrier_wait_s": es.accumulator("sync.barrier_wait_s"),
                "remote_sends": es.counter("sync.remote_sends"),
            })
        self._epoch_observers: List[Callable[[EpochInfo], None]] = []
        # outboxes[src_rank][dest_rank] = list of (time, priority, link_id,
        # dest_rank, send_seq, event) — batched per destination so each
        # epoch flushes one batch per receiving rank (one pickled pipe
        # write under the processes backend) instead of per-event sends.
        self._outboxes: List[List[List[Tuple[SimTime, int, int, int, int, Event]]]] = [
            [[] for _ in range(num_ranks)] for _ in range(num_ranks)
        ]
        # One mutable cell per source rank so sender closures bump the
        # shared per-rank sequence without attribute traffic on self.
        self._send_seq: List[List[int]] = [[0] for _ in range(num_ranks)]
        self._cross_links: Dict[int, _CrossRankLink] = {}
        self._next_link_id = 0
        #: epoch-window / exchange policy (layer 2)
        self._sync = make_sync(sync)
        #: execution substrate (layer 3); created per run(), closed in
        #: its finally block so failed runs never leak pools/workers.
        self._backend: Optional[ExecutionBackend] = None
        #: rank-local observability plan (duck-typed; in practice a
        #: :class:`repro.obs.rank_stream.RankStreamPlan`).  Instruments
        #: that know how to survive the process boundary register here;
        #: the processes backend re-attaches a rank-local recorder from
        #: it inside every forked worker and harvests results back at
        #: finalize.  None = nothing to re-attach (per-event observers
        #: are then detached with a RankObservabilityWarning).
        self.rank_plan: Optional[Any] = None
        #: live-plane handle (duck-typed; in practice a
        #: :class:`repro.obs.live.LiveMetrics`).  Set by attach(); run()
        #: notifies it once with the stop reason so the run slot is
        #: marked done even before finalize tears the plane down.
        self.live: Optional[Any] = None
        self._setup_done = False
        #: set when a processes-backend run stopped on a limit: the
        #: worker queues died with the workers, so resuming is invalid.
        self._unresumable: Optional[str] = None
        # counters for ENG-2
        self.total_epochs = 0
        self.total_remote_events = 0
        # --- checkpointing (repro.ckpt) -------------------------------
        #: the ConfigGraph this engine was built from (config.build_parallel)
        self.config_graph = None
        #: lineage set by repro.ckpt.restore(); recorded in run manifests
        self.checkpoint_lineage: Optional[Dict[str, Any]] = None
        #: snapshot directories written by run(checkpoint_every=...)
        self.checkpoints_written: List[str] = []

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def rank_sim(self, rank: int) -> Simulation:
        """The per-rank :class:`Simulation` components are created against."""
        return self._sims[rank]

    def rank_of(self, component: Component) -> int:
        return component.sim.rank

    def connect(self, comp_a: Component, port_a: str, comp_b: Component,
                port_b: str, *, latency: Union[str, int] = "1ps",
                name: Optional[str] = None) -> None:
        """Wire two components; cross-rank links are proxied automatically."""
        rank_a = self.rank_of(comp_a)
        rank_b = self.rank_of(comp_b)
        lat = units.parse_time(latency, default_unit="ps")
        if rank_a == rank_b:
            self._sims[rank_a].connect(comp_a, port_a, comp_b, port_b,
                                       latency=lat, name=name)
            return
        pa = comp_a.port(port_a)
        pb = comp_b.port(port_b)
        if pa.connected or pb.connected:
            raise LinkError(
                f"port already connected: {pa.full_name()} / {pb.full_name()}"
            )
        link_name = name or f"{pa.full_name()}--{pb.full_name()}"
        link = Link.connect(link_name, lat, pa, pb,
                            self._sims[rank_a], self._sims[rank_b])
        link_id = self._next_link_id
        self._next_link_id += 1
        cross = _CrossRankLink(link_id, link_name, lat, pa, rank_a, pb, rank_b)
        self._cross_links[link_id] = cross
        # Retarget each endpoint at its rank's outbox.
        end_a, end_b = link.endpoints
        end_a.set_remote(self._make_remote_sender(rank_a, rank_b, link_id))
        end_b.set_remote(self._make_remote_sender(rank_b, rank_a, link_id))
        self._sync.note_cross_link(lat, rank_a, rank_b)

    def _make_remote_sender(self, src_rank: int, dest_rank: int, link_id: int):
        # Hot path: capture the destination bucket's append and the
        # source rank's sequence cell directly — the closure touches no
        # attributes of self per send.
        append = self._outboxes[src_rank][dest_rank].append
        seq_cell = self._send_seq[src_rank]

        def sender(when: SimTime, priority: int, event: Event) -> None:
            seq = seq_cell[0]
            seq_cell[0] = seq + 1
            append((when, priority, link_id, dest_rank, seq, event))

        return sender

    @property
    def lookahead(self) -> SimTime:
        """Conservative sync window: min latency among cross-rank links.

        With no cross-rank links the ranks are independent and the
        window is unbounded (represented as a large constant).
        Delegates to the sync strategy, which owns the bound.
        """
        return self._sync.lookahead

    @property
    def sync_strategy(self) -> SyncStrategy:
        """The epoch-window/exchange policy object (layer 2)."""
        return self._sync

    @property
    def cross_link_count(self) -> int:
        return len(self._cross_links)

    def cross_endpoints(self, rank: int):
        """Yield ``(link_id, cross_link, endpoint)`` for ``rank``'s side
        of every cross-rank link.

        The endpoint is the :class:`~repro.core.link.LinkEndpoint` whose
        ``send()`` has been retargeted at this rank's outbox
        (:meth:`_make_remote_sender`).  Observability instruments — the
        causal tracer (:mod:`repro.obs.causal`) interposes on outbound
        sends here — should wrap via ``endpoint.set_remote`` and restore
        the original sender on detach.
        """
        for link_id, cross in self._cross_links.items():
            for end_rank, port in ((cross.rank_a, cross.port_a),
                                   (cross.rank_b, cross.port_b)):
                if end_rank == rank:
                    yield link_id, cross, port.endpoint

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self) -> None:
        if self._setup_done:
            return
        self._setup_done = True
        for sim in self._sims:
            sim.setup()

    def finish(self) -> None:
        for sim in self._sims:
            sim.finish()

    # ------------------------------------------------------------------
    # epoch machinery
    # ------------------------------------------------------------------
    def _drain_outboxes(self) -> None:
        """Hand undelivered outbox entries (setup-time sends) to the
        sync strategy, recording per-rank remote-send statistics."""
        for rank, by_dest in enumerate(self._outboxes):
            total = 0
            for bucket in by_dest:
                if bucket:
                    total += len(bucket)
                    self._sync.add_pending(list(bucket))
                    bucket.clear()
            if total:
                self._sync_stats[rank]["remote_sends"].add(total)

    def _primaries_exist(self) -> bool:
        return any(sim._primary_components for sim in self._sims)

    def _primaries_pending(self) -> int:
        return sum(sim.primaries_pending for sim in self._sims)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def add_epoch_observer(self, fn: Callable[[EpochInfo], None]) -> None:
        """Call ``fn(EpochInfo)`` after every conservative-sync epoch.

        The parallel analogue of :meth:`Simulation.add_heartbeat`:
        telemetry recorders, progress reporters and trace exporters
        attach here.  Costs nothing per event, one call per epoch.
        """
        if fn not in self._epoch_observers:
            self._epoch_observers.append(fn)

    def remove_epoch_observer(self, fn: Callable[[EpochInfo], None]) -> None:
        try:
            self._epoch_observers.remove(fn)
        except ValueError:
            pass

    def run(self, max_time: Optional[Union[str, int]] = None,
            max_epochs: Optional[int] = None, *,
            checkpoint_every: Optional[Union[str, int]] = None,
            checkpoint_dir: Optional[str] = None) -> ParallelRunResult:
        """Run the conservative epoch loop to completion or a limit.

        Orchestrates the three layers: the sync strategy computes each
        safe window and orders the exchange, the execution backend runs
        every rank's kernel through the window, and this loop folds the
        per-rank :class:`~repro.core.backends.RankStep` results into
        engine statistics, epoch observers and the final result.  The
        backend is created per run and closed in a ``finally`` block,
        so a model exception mid-epoch can never leak a thread pool or
        worker processes.

        With ``checkpoint_every`` (simulated-time interval), a
        `repro.ckpt` snapshot is written into ``checkpoint_dir`` at the
        first conservative-sync epoch boundary on or past each interval
        mark — the natural globally consistent point: every rank has
        executed all events in the window and undelivered cross-rank
        sends sit in the sync strategy's pending set.  Works on all
        backends; under ``processes`` each rank worker writes its own
        shard and the parent commits the manifest.
        """
        perf = _wall_time.perf_counter

        if self._unresumable:
            raise SimulationError(
                f"cannot resume a processes-backend run stopped on "
                f"{self._unresumable!r}: per-rank queues died with the "
                f"worker processes.  Run to completion, or use the "
                f"'serial'/'threads' backend for resumable limited runs."
            )
        if not self._setup_done:
            self.setup()
        limit = units.parse_time(max_time, default_unit="ps") if max_time is not None else None
        ckpt_interval: Optional[SimTime] = None
        ckpt_next: Optional[SimTime] = None
        ckpt_seq = len(self.checkpoints_written)
        if checkpoint_every is not None:
            if checkpoint_dir is None:
                raise SimulationError("checkpoint_every requires checkpoint_dir")
            ckpt_interval = units.parse_time(checkpoint_every, default_unit="ps")
            if ckpt_interval <= 0:
                raise SimulationError("checkpoint_every must be positive")
            # First boundary strictly after the current high-water mark,
            # so a resumed run doesn't immediately re-snapshot.
            start_now = max(sim.now for sim in self._sims)
            ckpt_next = (start_now // ckpt_interval + 1) * ckpt_interval
        sync = self._sync
        lookahead = sync.lookahead
        start_wall = perf()
        start_events = [sim.events_executed for sim in self._sims]
        epochs = 0
        reason = "exhausted"
        exec_seconds = 0.0
        exchange_seconds = 0.0
        barrier_wait_total = 0.0
        per_rank_barrier = [0.0] * self.num_ranks
        first_window: Optional[SimTime] = None
        run_events = 0
        window_total = 0  #: sum of granted epoch window widths (ps)
        exchange_bytes_total = 0
        backend = make_backend(self.backend, self)
        self._backend = backend
        try:
            backend.start()
            # Adopt sends made during setup() (t=0) and refresh the
            # per-rank horizon so the first safe window sees everything.
            self._drain_outboxes()
            sync.next_times = backend.initial_next_times()
            try:
                while True:
                    if max_epochs is not None and epochs >= max_epochs:
                        reason = "max_epochs"
                        break
                    global_min = sync.global_min()
                    if global_min == _INF:
                        reason = "exhausted"
                        break
                    if limit is not None and global_min > limit:
                        reason = "max_time"
                        break
                    if first_window is None:
                        first_window = int(global_min)
                    ex_t0 = perf()
                    deliveries, exchanged = sync.exchange(self.num_ranks)
                    ex_dt = perf() - ex_t0
                    exchange_seconds += ex_dt
                    self.total_remote_events += exchanged
                    epoch_end = sync.window_end(global_min, limit)
                    window_total += epoch_end - int(global_min) + 1
                    ep_t0 = perf()
                    steps = backend.step(epoch_end, deliveries)
                    ep_dt = perf() - ep_t0
                    exec_seconds += ep_dt
                    ep_bytes = backend.last_exchange_bytes
                    exchange_bytes_total += ep_bytes
                    sync.absorb(steps)
                    per_rank_wall = [s.wall_seconds for s in steps]
                    per_rank_ev = [s.events for s in steps]
                    slowest = max(per_rank_wall) if per_rank_wall else 0.0
                    run_events += sum(per_rank_ev)
                    for r, stats in enumerate(self._sync_stats):
                        waited = slowest - per_rank_wall[r]
                        per_rank_barrier[r] += waited
                        barrier_wait_total += waited
                        stats["epochs"].add()
                        stats["epoch_events"].add(per_rank_ev[r])
                        stats["exec_s"].add(per_rank_wall[r])
                        stats["barrier_wait_s"].add(waited)
                        sent = outbox_count(steps[r].outbox)
                        if sent:
                            stats["remote_sends"].add(sent)
                    if self._epoch_observers:
                        info = EpochInfo(
                            index=epochs,
                            window_start=int(global_min),
                            window_end=epoch_end,
                            exchanged_events=exchanged,
                            exchange_seconds=ex_dt,
                            wall_seconds=ep_dt,
                            per_rank_events=per_rank_ev,
                            per_rank_wall=per_rank_wall,
                            per_rank_barrier_wait=[slowest - w for w in per_rank_wall],
                            events_total=run_events,
                            now=max(s.now for s in steps),
                            exchange_bytes=ep_bytes,
                        )
                        for fn in self._epoch_observers:
                            fn(info)
                    if ckpt_next is not None and epoch_end >= ckpt_next:
                        from ..ckpt import snapshot_parallel

                        path = snapshot_parallel(
                            self, f"{checkpoint_dir}/ckpt-{ckpt_seq:04d}",
                            backend=backend)
                        self.checkpoints_written.append(str(path))
                        ckpt_seq += 1
                        while ckpt_next <= epoch_end:
                            ckpt_next += ckpt_interval
                    epochs += 1
                    if (self._primaries_exist()
                            and sum(s.primaries_pending for s in steps) == 0):
                        reason = "exit"
                        break
            finally:
                self.total_epochs += epochs
            # Success path: pull out-of-process rank state (statistics,
            # clocks, event counts) back into the parent simulations.
            backend.finalize()
            if backend.name == "processes" and reason in ("max_time", "max_epochs"):
                self._unresumable = reason
        finally:
            # Never leak the execution substrate, even when a model
            # exception unwinds the epoch loop mid-run.
            self.close()
        # Report the time of the last real event; align rank clocks to it.
        end_time = max(sim.last_event_time for sim in self._sims)
        for sim in self._sims:
            if sim.now < end_time:
                sim.now = end_time
        self.finish()
        if self.live is not None:
            try:
                self.live.on_run_end(reason)
            except Exception:  # live plane must never fail a run
                pass
        wall = perf() - start_wall
        per_rank = [
            sim.events_executed - s0 for sim, s0 in zip(self._sims, start_events)
        ]
        utilization = 0.0
        if epochs and window_total and first_window is not None:
            span = max(0, end_time - first_window) + 1
            utilization = min(1.0, span / window_total)
        return ParallelRunResult(
            reason=reason,
            end_time=end_time,
            events_executed=sum(per_rank),
            epochs=epochs,
            remote_events=self.total_remote_events,
            lookahead=lookahead,
            wall_seconds=wall,
            per_rank_events=per_rank,
            exec_seconds=exec_seconds,
            barrier_wait_seconds=barrier_wait_total,
            exchange_seconds=exchange_seconds,
            per_rank_barrier_wait=per_rank_barrier,
            lookahead_utilization=utilization,
            exchange_bytes=exchange_bytes_total,
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self, *, include_engine: bool = False) -> Dict[str, Any]:
        """Merged statistics from every rank (component names are unique).

        ``include_engine=True`` folds the merged per-rank sync metrics
        in under ``_engine.<name>`` keys; the default leaves them out so
        component-stat comparisons against a sequential run still hold.
        """
        merged: Dict[str, Any] = {}
        for sim in self._sims:
            for key, stat in sim.stats().items():
                if key in merged:
                    merged[key].merge(stat)
                else:
                    merged[key] = stat
        if include_engine:
            for name, stat in self.sync_stats().items():
                merged[f"_engine.{name}"] = stat
        return merged

    def stat_values(self) -> Dict[str, float]:
        return {key: stat.value() for key, stat in self.stats().items()}

    def sync_stats(self) -> Dict[str, Any]:
        """Conservative-sync metrics merged across ranks.

        Every rank registers the same ``sync.*`` statistic names, so the
        fold uses :meth:`Statistic.merge` on fresh empty copies (the
        per-rank collectors are left untouched and re-mergeable).
        """
        merged: Dict[str, Any] = {}
        for sim in self._sims:
            for name, stat in sim.engine_stats.all().items():
                if name not in merged:
                    merged[name] = stat.copy_empty()
                merged[name].merge(stat)
        return merged

    def sync_stat_values(self) -> Dict[str, float]:
        return {key: stat.value() for key, stat in self.sync_stats().items()}

    def close(self) -> None:
        """Release the execution substrate (pool / worker processes)."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    @property
    def _pool(self):
        """Back-compat shim for code that poked the old thread pool.

        The pool now lives on the threads execution backend; outside a
        run (or under other backends) there is none and this is None.
        """
        return getattr(self._backend, "_pool", None)

    def __enter__(self) -> "ParallelSimulation":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
