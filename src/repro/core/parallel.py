"""Conservative parallel discrete-event engine.

SST runs one MPI rank per partition of the component graph and uses a
conservative, barrier-synchronised protocol: because components interact
only over links with latency >= L_min (the smallest latency of any link
that crosses a rank boundary), every rank may safely simulate
``lookahead = L_min`` past the globally earliest pending event before
exchanging cross-rank events and re-synchronising.

PySST reproduces that protocol faithfully.  Two execution backends are
provided:

* ``serial``  — ranks execute their epoch windows one after another in
  the calling thread.  Zero concurrency, 100% determinism; this is the
  reference backend used by the equivalence tests.
* ``threads`` — ranks execute each epoch concurrently in a thread pool.
  Determinism is preserved (event exchange is sorted), but the CPython
  GIL means this demonstrates *protocol* scaling, not wall-clock
  scaling — exactly the "PDES core far too slow in Python" caveat in
  DESIGN.md.  Epoch counts, exchanged-event counts and lookahead
  sensitivity (the quantities benchmarked by ENG-2) are backend
  independent.

The per-rank sub-simulations are ordinary :class:`Simulation` objects;
cross-rank links are ordinary :class:`Link` objects whose endpoints are
re-targeted at rank outboxes.
"""

from __future__ import annotations

import time as _wall_time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from . import units
from .component import Component
from .event import Event, EventRecord
from .link import Link, LinkError, Port
from .simulation import Simulation, SimulationError
from .units import SimTime

_INF = float("inf")


@dataclass
class ParallelRunResult:
    """Outcome of a :meth:`ParallelSimulation.run` call."""

    reason: str  #: "exhausted" | "exit" | "max_time"
    end_time: SimTime
    events_executed: int
    epochs: int
    remote_events: int  #: events exchanged across rank boundaries
    lookahead: SimTime
    wall_seconds: float
    per_rank_events: List[int] = field(default_factory=list)
    #: wall time spent executing rank epoch windows, summed over ranks
    exec_seconds: float = 0.0
    #: wall time ranks spent waiting at the epoch barrier (sum over
    #: ranks of slowest-rank-time minus own time, per epoch)
    barrier_wait_seconds: float = 0.0
    #: wall time spent sorting/delivering cross-rank events
    exchange_seconds: float = 0.0
    #: per-rank cumulative barrier-wait seconds
    per_rank_barrier_wait: List[float] = field(default_factory=list)
    #: fraction of the theoretical epoch budget (epochs * lookahead)
    #: the run actually advanced through — low values mean the
    #: conservative window is forcing many near-empty epochs
    lookahead_utilization: float = 0.0
    #: events executed per wall-clock second (engine throughput)
    events_per_second: float = field(init=False)

    def __post_init__(self) -> None:
        self.events_per_second = (
            self.events_executed / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (embedded in run manifests)."""
        return {
            "reason": self.reason,
            "end_time_ps": self.end_time,
            "events_executed": self.events_executed,
            "epochs": self.epochs,
            "remote_events": self.remote_events,
            "lookahead_ps": self.lookahead,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
            "per_rank_events": list(self.per_rank_events),
            "exec_seconds": self.exec_seconds,
            "barrier_wait_seconds": self.barrier_wait_seconds,
            "exchange_seconds": self.exchange_seconds,
            "per_rank_barrier_wait": list(self.per_rank_barrier_wait),
            "lookahead_utilization": self.lookahead_utilization,
        }


@dataclass
class EpochInfo:
    """One conservative-sync epoch, as seen by epoch observers.

    Passed to callbacks registered via
    :meth:`ParallelSimulation.add_epoch_observer` — the parallel-engine
    analogue of the sequential heartbeat hook (telemetry, progress and
    trace exporters attach here).
    """

    index: int  #: epoch number within this run (0-based)
    window_start: SimTime  #: global earliest pending event this epoch
    window_end: SimTime  #: inclusive end of the safe window
    exchanged_events: int  #: cross-rank events delivered before the epoch
    exchange_seconds: float
    wall_seconds: float  #: wall time of the whole epoch execution phase
    per_rank_events: List[int]
    per_rank_wall: List[float]
    per_rank_barrier_wait: List[float]
    events_total: int  #: cumulative events executed so far in this run
    now: SimTime  #: engine sim-time high-water mark after the epoch


class _CrossRankLink:
    """Bookkeeping for one link whose endpoints live on different ranks."""

    __slots__ = ("link_id", "name", "latency", "port_a", "port_b",
                 "rank_a", "rank_b")

    def __init__(self, link_id: int, name: str, latency: SimTime,
                 port_a: Port, rank_a: int, port_b: Port, rank_b: int):
        self.link_id = link_id
        self.name = name
        self.latency = latency
        self.port_a = port_a
        self.port_b = port_b
        self.rank_a = rank_a
        self.rank_b = rank_b


class ParallelSimulation:
    """A multi-rank conservative PDES composed of per-rank Simulations.

    Usage mirrors :class:`Simulation` but components are created against
    a specific rank::

        psim = ParallelSimulation(num_ranks=4, seed=3)
        a = Producer(psim.rank_sim(0), "a", params)
        b = Consumer(psim.rank_sim(3), "b", params)
        psim.connect(a, "out", b, "in", latency="50ns")
        result = psim.run(max_time="1ms")
    """

    def __init__(self, num_ranks: int, *, seed: int = 1, queue: str = "heap",
                 backend: str = "serial", verbose: bool = False):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if backend not in ("serial", "threads"):
            raise ValueError(f"unknown backend {backend!r}")
        self.num_ranks = num_ranks
        self.backend = backend
        self.seed = seed
        self.queue_kind = queue
        #: partitioner strategy label; set by config.build_parallel for
        #: run manifests, None for hand-built graphs.
        self.partition_strategy: Optional[str] = None
        self._sims = [
            Simulation(queue=queue, seed=seed, rank=r, num_ranks=num_ranks,
                       verbose=verbose)
            for r in range(num_ranks)
        ]
        # Per-rank conservative-sync metrics, kept in each rank's
        # engine-level StatisticGroup so ParallelSimulation.sync_stats()
        # can fold them together with Statistic.merge().
        self._sync_stats = []
        for sim in self._sims:
            es = sim.engine_stats
            self._sync_stats.append({
                "epochs": es.counter("sync.epochs"),
                "epoch_events": es.accumulator("sync.epoch_events"),
                "exec_s": es.accumulator("sync.exec_s"),
                "barrier_wait_s": es.accumulator("sync.barrier_wait_s"),
                "remote_sends": es.counter("sync.remote_sends"),
            })
        self._epoch_observers: List[Callable[[EpochInfo], None]] = []
        # outboxes[src_rank] = list of (time, priority, link_id, dest_rank,
        #                               send_seq, event)
        self._outboxes: List[List[Tuple[SimTime, int, int, int, int, Event]]] = [
            [] for _ in range(num_ranks)
        ]
        self._send_seq = [0] * num_ranks
        self._cross_links: Dict[int, _CrossRankLink] = {}
        self._next_link_id = 0
        self._lookahead: Optional[SimTime] = None
        self._setup_done = False
        self._pool: Optional[ThreadPoolExecutor] = None
        # counters for ENG-2
        self.total_epochs = 0
        self.total_remote_events = 0

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def rank_sim(self, rank: int) -> Simulation:
        """The per-rank :class:`Simulation` components are created against."""
        return self._sims[rank]

    def rank_of(self, component: Component) -> int:
        return component.sim.rank

    def connect(self, comp_a: Component, port_a: str, comp_b: Component,
                port_b: str, *, latency: Union[str, int] = "1ps",
                name: Optional[str] = None) -> None:
        """Wire two components; cross-rank links are proxied automatically."""
        rank_a = self.rank_of(comp_a)
        rank_b = self.rank_of(comp_b)
        lat = units.parse_time(latency, default_unit="ps")
        if rank_a == rank_b:
            self._sims[rank_a].connect(comp_a, port_a, comp_b, port_b,
                                       latency=lat, name=name)
            return
        pa = comp_a.port(port_a)
        pb = comp_b.port(port_b)
        if pa.connected or pb.connected:
            raise LinkError(
                f"port already connected: {pa.full_name()} / {pb.full_name()}"
            )
        link_name = name or f"{pa.full_name()}--{pb.full_name()}"
        link = Link.connect(link_name, lat, pa, pb,
                            self._sims[rank_a], self._sims[rank_b])
        link_id = self._next_link_id
        self._next_link_id += 1
        cross = _CrossRankLink(link_id, link_name, lat, pa, rank_a, pb, rank_b)
        self._cross_links[link_id] = cross
        # Retarget each endpoint at its rank's outbox.
        end_a, end_b = link.endpoints
        end_a.set_remote(self._make_remote_sender(rank_a, rank_b, link_id))
        end_b.set_remote(self._make_remote_sender(rank_b, rank_a, link_id))
        if self._lookahead is None or lat < self._lookahead:
            self._lookahead = lat

    def _make_remote_sender(self, src_rank: int, dest_rank: int, link_id: int):
        outbox = self._outboxes[src_rank]

        def sender(when: SimTime, priority: int, event: Event) -> None:
            seq = self._send_seq[src_rank]
            self._send_seq[src_rank] = seq + 1
            outbox.append((when, priority, link_id, dest_rank, seq, event))

        return sender

    @property
    def lookahead(self) -> SimTime:
        """Conservative sync window: min latency among cross-rank links.

        With no cross-rank links the ranks are independent and the
        window is unbounded (represented as a large constant).
        """
        return self._lookahead if self._lookahead is not None else units.PS_PER_SEC

    @property
    def cross_link_count(self) -> int:
        return len(self._cross_links)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self) -> None:
        if self._setup_done:
            return
        self._setup_done = True
        for sim in self._sims:
            sim.setup()

    def finish(self) -> None:
        for sim in self._sims:
            sim.finish()

    # ------------------------------------------------------------------
    # epoch machinery
    # ------------------------------------------------------------------
    def _global_next_time(self) -> float:
        """Earliest pending work anywhere: queued events or undelivered sends."""
        lowest: float = _INF
        for sim in self._sims:
            t = sim.next_event_time()
            if t is not None and t < lowest:
                lowest = t
        for outbox in self._outboxes:
            for entry in outbox:
                if entry[0] < lowest:
                    lowest = entry[0]
        return lowest

    def _exchange(self) -> int:
        """Deliver all outbox events to their destination rank queues.

        Deliveries are sorted on a global deterministic key so that the
        receiving queue's tie-breaking is independent of rank execution
        order (and therefore of the backend).
        """
        pending: List[Tuple[SimTime, int, int, int, int, Event]] = []
        for rank, outbox in enumerate(self._outboxes):
            if outbox:
                self._sync_stats[rank]["remote_sends"].add(len(outbox))
                pending.extend(outbox)
                outbox.clear()
        if not pending:
            return 0
        pending.sort(key=lambda e: (e[0], e[1], e[2], e[4]))
        for when, priority, link_id, dest_rank, _seq, event in pending:
            cross = self._cross_links[link_id]
            dest_port = cross.port_b if dest_rank == cross.rank_b else cross.port_a
            dest_sim = self._sims[dest_rank]
            dest_sim._queue.push(when, priority, dest_port.deliver, event)
        self.total_remote_events += len(pending)
        return len(pending)

    def _primaries_exist(self) -> bool:
        return any(sim._primary_components for sim in self._sims)

    def _primaries_pending(self) -> int:
        return sum(sim.primaries_pending for sim in self._sims)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def add_epoch_observer(self, fn: Callable[[EpochInfo], None]) -> None:
        """Call ``fn(EpochInfo)`` after every conservative-sync epoch.

        The parallel analogue of :meth:`Simulation.add_heartbeat`:
        telemetry recorders, progress reporters and trace exporters
        attach here.  Costs nothing per event, one call per epoch.
        """
        if fn not in self._epoch_observers:
            self._epoch_observers.append(fn)

    def remove_epoch_observer(self, fn: Callable[[EpochInfo], None]) -> None:
        try:
            self._epoch_observers.remove(fn)
        except ValueError:
            pass

    def run(self, max_time: Optional[Union[str, int]] = None,
            max_epochs: Optional[int] = None) -> ParallelRunResult:
        """Run the conservative epoch loop to completion or a limit."""
        perf = _wall_time.perf_counter

        if not self._setup_done:
            self.setup()
        limit = units.parse_time(max_time, default_unit="ps") if max_time is not None else None
        lookahead = self.lookahead
        start_wall = perf()
        start_events = [sim.events_executed for sim in self._sims]
        epochs = 0
        reason = "exhausted"
        exec_seconds = 0.0
        exchange_seconds = 0.0
        barrier_wait_total = 0.0
        per_rank_barrier = [0.0] * self.num_ranks
        first_window: Optional[SimTime] = None
        run_events = 0
        if self.backend == "threads" and self._pool is None and self.num_ranks > 1:
            self._pool = ThreadPoolExecutor(max_workers=self.num_ranks)
        try:
            while True:
                if max_epochs is not None and epochs >= max_epochs:
                    reason = "max_epochs"
                    break
                # Deliver any cross-rank events first (including sends made
                # during setup()) so the safe window sees a complete queue.
                ex_t0 = perf()
                exchanged = self._exchange()
                ex_dt = perf() - ex_t0
                exchange_seconds += ex_dt
                global_min = self._global_next_time()
                if global_min == _INF:
                    reason = "exhausted"
                    break
                if limit is not None and global_min > limit:
                    reason = "max_time"
                    break
                if first_window is None:
                    first_window = int(global_min)
                # Safe window: any send made while executing t >= global_min
                # arrives at >= global_min + lookahead, i.e. after epoch_end.
                epoch_end = int(global_min) + lookahead - 1
                if limit is not None:
                    epoch_end = min(epoch_end, limit)
                ep_t0 = perf()
                per_rank_wall, per_rank_ev = self._run_epoch(epoch_end)
                ep_dt = perf() - ep_t0
                exec_seconds += ep_dt
                slowest = max(per_rank_wall) if per_rank_wall else 0.0
                run_events += sum(per_rank_ev)
                for r, stats in enumerate(self._sync_stats):
                    waited = slowest - per_rank_wall[r]
                    per_rank_barrier[r] += waited
                    barrier_wait_total += waited
                    stats["epochs"].add()
                    stats["epoch_events"].add(per_rank_ev[r])
                    stats["exec_s"].add(per_rank_wall[r])
                    stats["barrier_wait_s"].add(waited)
                if self._epoch_observers:
                    info = EpochInfo(
                        index=epochs,
                        window_start=int(global_min),
                        window_end=epoch_end,
                        exchanged_events=exchanged,
                        exchange_seconds=ex_dt,
                        wall_seconds=ep_dt,
                        per_rank_events=per_rank_ev,
                        per_rank_wall=per_rank_wall,
                        per_rank_barrier_wait=[slowest - w for w in per_rank_wall],
                        events_total=run_events,
                        now=max(sim.now for sim in self._sims),
                    )
                    for fn in self._epoch_observers:
                        fn(info)
                epochs += 1
                if self._primaries_exist() and self._primaries_pending() == 0:
                    reason = "exit"
                    break
        finally:
            self.total_epochs += epochs
        # Report the time of the last real event; align rank clocks to it.
        end_time = max(sim.last_event_time for sim in self._sims)
        for sim in self._sims:
            if sim.now < end_time:
                sim.now = end_time
        self.finish()
        wall = perf() - start_wall
        per_rank = [
            sim.events_executed - s0 for sim, s0 in zip(self._sims, start_events)
        ]
        utilization = 0.0
        if epochs and lookahead and first_window is not None:
            span = max(0, end_time - first_window) + 1
            utilization = min(1.0, span / (epochs * lookahead))
        return ParallelRunResult(
            reason=reason,
            end_time=end_time,
            events_executed=sum(per_rank),
            epochs=epochs,
            remote_events=self.total_remote_events,
            lookahead=lookahead,
            wall_seconds=wall,
            per_rank_events=per_rank,
            exec_seconds=exec_seconds,
            barrier_wait_seconds=barrier_wait_total,
            exchange_seconds=exchange_seconds,
            per_rank_barrier_wait=per_rank_barrier,
            lookahead_utilization=utilization,
        )

    def _run_epoch(self, epoch_end: SimTime) -> Tuple[List[float], List[int]]:
        """Run one epoch window on every rank.

        Returns per-rank (wall seconds, events executed).  Per-rank wall
        time is measured inside the worker so the threads backend sees
        true concurrent durations; barrier wait is derived from the
        spread between the slowest rank and each other rank.
        """
        perf = _wall_time.perf_counter

        def timed_step(sim: Simulation) -> Tuple[float, int]:
            t0 = perf()
            n = sim.run_step(epoch_end)
            return perf() - t0, n

        if self.backend == "threads" and self._pool is not None:
            futures = [self._pool.submit(timed_step, sim) for sim in self._sims]
            timings = [f.result() for f in futures]  # re-raise worker exceptions
        else:
            timings = [timed_step(sim) for sim in self._sims]
        return [t for t, _ in timings], [n for _, n in timings]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self, *, include_engine: bool = False) -> Dict[str, Any]:
        """Merged statistics from every rank (component names are unique).

        ``include_engine=True`` folds the merged per-rank sync metrics
        in under ``_engine.<name>`` keys; the default leaves them out so
        component-stat comparisons against a sequential run still hold.
        """
        merged: Dict[str, Any] = {}
        for sim in self._sims:
            for key, stat in sim.stats().items():
                if key in merged:
                    merged[key].merge(stat)
                else:
                    merged[key] = stat
        if include_engine:
            for name, stat in self.sync_stats().items():
                merged[f"_engine.{name}"] = stat
        return merged

    def stat_values(self) -> Dict[str, float]:
        return {key: stat.value() for key, stat in self.stats().items()}

    def sync_stats(self) -> Dict[str, Any]:
        """Conservative-sync metrics merged across ranks.

        Every rank registers the same ``sync.*`` statistic names, so the
        fold uses :meth:`Statistic.merge` on fresh empty copies (the
        per-rank collectors are left untouched and re-mergeable).
        """
        merged: Dict[str, Any] = {}
        for sim in self._sims:
            for name, stat in sim.engine_stats.all().items():
                if name not in merged:
                    merged[name] = stat.copy_empty()
                merged[name].merge(stat)
        return merged

    def sync_stat_values(self) -> Dict[str, float]:
        return {key: stat.value() for key, stat in self.sync_stats().items()}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelSimulation":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
