"""Registered statistics.

Components never print results; they register named statistics which the
:class:`~repro.core.simulation.Simulation` harvests at the end of a run
(SST's StatisticOutput architecture).  Three collector shapes cover the
models in this repository:

* :class:`Counter`      — a monotonically increasing count.
* :class:`Accumulator`  — count / sum / min / max / sum-of-squares, from
  which mean and variance derive.
* :class:`Histogram`    — fixed-width binned distribution with under/
  overflow bins.

All collectors share a tiny interface (``name``, ``value()``,
``as_dict()``, ``merge()``) so the parallel engine can combine per-rank
statistics, and so output writers can serialise any of them uniformly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional


class Statistic:
    """Base class: a named, mergeable result collector."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def value(self) -> float:
        """The single headline number for this statistic."""
        raise NotImplementedError

    def as_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def merge(self, other: "Statistic") -> None:
        """Fold another collector of the same type/name into this one."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def copy_empty(self) -> "Statistic":
        """A fresh zeroed collector of the same type/name/shape.

        Used to merge same-named collectors from several sources (e.g.
        per-rank engine metrics) without mutating any of them.
        """
        raise NotImplementedError

    def _check_merge(self, other: "Statistic") -> None:
        if type(other) is not type(self):
            raise TypeError(f"cannot merge {type(other).__name__} into {type(self).__name__}")
        if other.name != self.name:
            raise ValueError(f"cannot merge statistic {other.name!r} into {self.name!r}")

    def state_dict(self) -> Dict[str, Any]:
        """Every data slot of this collector, as plain values.

        Walks ``__slots__`` over the MRO so subtypes need no per-type
        code.  Mutable slot values (histogram bins) are copied out, so
        the returned dict is a true snapshot.
        """
        state: Dict[str, Any] = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot in state:
                    continue
                value = getattr(self, slot)
                state[slot] = list(value) if isinstance(value, list) else value
        return state

    def load_state(self, state: Dict[str, Any]) -> None:
        """Overwrite this collector's slots from :meth:`state_dict` output."""
        for slot, value in state.items():
            setattr(self, slot, list(value) if isinstance(value, list) else value)


def adopt_state(local: Statistic, remote: Statistic) -> None:
    """Copy ``remote``'s collected values into ``local`` **in place**.

    Unlike ``merge`` this overwrites rather than folds, and unlike
    rebinding it preserves object identity — components hold direct
    references to their collectors, so adopting in place keeps
    ``comp.s_foo is comp.stats.get("foo")`` true.  Used when a parent
    process adopts worker statistics and when `repro.ckpt` restores a
    statistics group into a freshly rebuilt simulation.
    """
    if type(local) is not type(remote):
        raise TypeError(
            f"cannot adopt {type(remote).__name__} state into {type(local).__name__}"
        )
    local.load_state(remote.state_dict())


class Counter(Statistic):
    """A monotonically increasing event count."""

    __slots__ = ("count",)

    def __init__(self, name: str):
        super().__init__(name)
        self.count = 0

    def add(self, n: int = 1) -> None:
        self.count += n

    def value(self) -> float:
        return float(self.count)

    def as_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name, "count": self.count}

    def merge(self, other: Statistic) -> None:
        self._check_merge(other)
        assert isinstance(other, Counter)
        self.count += other.count

    def reset(self) -> None:
        self.count = 0

    def copy_empty(self) -> "Counter":
        return Counter(self.name)


class Accumulator(Statistic):
    """Streaming count/sum/min/max/sum-of-squares accumulator."""

    __slots__ = ("count", "total", "total_sq", "minimum", "maximum")

    def __init__(self, name: str):
        super().__init__(name)
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (clamped at 0 against rounding)."""
        if self.count == 0:
            return 0.0
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def value(self) -> float:
        return self.total

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "accumulator",
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "stddev": self.stddev,
        }

    def merge(self, other: Statistic) -> None:
        self._check_merge(other)
        assert isinstance(other, Accumulator)
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def copy_empty(self) -> "Accumulator":
        return Accumulator(self.name)


class Histogram(Statistic):
    """Fixed-width binned distribution with underflow/overflow bins."""

    __slots__ = ("low", "bin_width", "n_bins", "bins", "underflow", "overflow", "count", "total")

    def __init__(self, name: str, low: float = 0.0, bin_width: float = 1.0, n_bins: int = 32):
        super().__init__(name)
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        self.low = low
        self.bin_width = bin_width
        self.n_bins = n_bins
        self.bins: List[int] = [0] * n_bins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def add(self, value: float, weight: int = 1) -> None:
        self.count += weight
        self.total += value * weight
        if value < self.low:
            self.underflow += weight
            return
        index = int((value - self.low) / self.bin_width)
        if index >= self.n_bins:
            self.overflow += weight
        else:
            self.bins[index] += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bin_edges(self) -> List[float]:
        return [self.low + i * self.bin_width for i in range(self.n_bins + 1)]

    def percentile(self, fraction: float) -> float:
        """Percentile with linear interpolation inside the matched bin.

        Mass in the underflow bin clamps to ``low``; any request landing
        in (or beyond) the overflow bin returns the top edge
        ``low + n_bins * bin_width`` — including the all-overflow case —
        so the result is continuous and monotonic in ``fraction``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        running = self.underflow
        if target <= running and self.underflow:
            return self.low
        for i, n in enumerate(self.bins):
            if n and running + n >= target:
                within = (target - running) / n
                return self.low + (i + within) * self.bin_width
            running += n
        return self.low + self.n_bins * self.bin_width

    def value(self) -> float:
        return self.mean

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "low": self.low,
            "bin_width": self.bin_width,
            "bins": list(self.bins),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    def merge(self, other: Statistic) -> None:
        self._check_merge(other)
        assert isinstance(other, Histogram)
        if (other.low, other.bin_width, other.n_bins) != (self.low, self.bin_width, self.n_bins):
            raise ValueError(f"histogram {self.name!r}: incompatible binning for merge")
        for i, n in enumerate(other.bins):
            self.bins[i] += n
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        self.total += other.total

    def reset(self) -> None:
        self.bins = [0] * self.n_bins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def copy_empty(self) -> "Histogram":
        return Histogram(self.name, self.low, self.bin_width, self.n_bins)


class StatisticGroup:
    """Per-component registry of statistics, flattened by the Simulation.

    Names are scoped as ``<component name>.<stat name>`` when harvested.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, Statistic] = {}

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter(name))

    def accumulator(self, name: str) -> Accumulator:
        return self._register(name, Accumulator(name))

    def histogram(self, name: str, low: float = 0.0, bin_width: float = 1.0,
                  n_bins: int = 32) -> Histogram:
        return self._register(name, Histogram(name, low, bin_width, n_bins))

    def _register(self, name: str, stat: Statistic) -> Any:
        if name in self._stats:
            existing = self._stats[name]
            if type(existing) is not type(stat):
                raise ValueError(f"statistic {name!r} re-registered with a different type")
            return existing
        self._stats[name] = stat
        return stat

    def get(self, name: str) -> Optional[Statistic]:
        return self._stats.get(name)

    def all(self) -> Dict[str, Statistic]:
        return dict(self._stats)

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __len__(self) -> int:
        return len(self._stats)
