"""Layer 3: execution backends — where each rank's kernel loop runs.

An :class:`ExecutionBackend` executes one conservative-sync epoch on
every rank of a :class:`~repro.core.parallel.ParallelSimulation` and
reports a :class:`RankStep` per rank.  Three substrates are provided:

* :class:`SerialBackend`    — ranks step one after another in the
  calling thread.  Zero concurrency, 100% determinism; the reference
  backend used by the equivalence tests.
* :class:`ThreadsBackend`   — ranks step concurrently in a thread pool.
  Deterministic (the exchange is globally sorted), but the CPython GIL
  means this demonstrates *protocol* scaling, not wall-clock scaling.
* :class:`ProcessesBackend` — true multi-process PDES: one forked
  worker per rank, exchanging serialized event batches over pipes.
  This is the backend that scales past the GIL.  Requirements and
  caveats:

  - the ``fork`` start method (Linux/macOS); workers inherit the fully
    wired per-rank simulations, so nothing but events and statistics
    ever crosses the process boundary;
  - events sent over cross-rank links must be picklable (slotted
    payload-only events are; events carrying live object references
    are not, and raise a descriptive error);
  - per-event observers (trace/span/heartbeat) are detached inside the
    workers, but observability survives the boundary through the
    rank-local plan (``psim.rank_plan``, duck-typed — see
    :mod:`repro.obs.rank_stream`): workers re-attach a lightweight
    recorder that writes per-rank JSONL shards or ships bounded record
    batches back over the pipes, and profiler buckets plus rank
    counters harvest back at ``finalize()``.  Observers no plan entry
    covers raise a one-time :class:`RankObservabilityWarning` instead
    of being silently dropped.  Parent-side epoch observers —
    telemetry, progress, Chrome trace epoch lanes — keep working
    regardless;
  - parent-side component *objects* are not synchronized back, but
    their registered statistics are (adopted in ``finalize()``), so
    ``stat_values()`` equivalence holds across all backends.

The same substrate names power :class:`JobPool`, the coarse-grained
variant used by :func:`repro.dse.sweep` to evaluate independent design
points in parallel.
"""

from __future__ import annotations

import os
import pickle
import time as _wall_time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from .kernel import harvest_engine_stats, harvest_stats, kernel_step
from .simulation import SimulationError
from .statistics import adopt_state
from .sync import OutboxEntry
from .units import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .parallel import ParallelSimulation
    from .simulation import Simulation


class RankObservabilityWarning(UserWarning):
    """A per-event observer was detached at the process-fork boundary.

    Raised (once per unique observer set) by :class:`ProcessesBackend`
    when a rank simulation carries trace/span/heartbeat observers that
    no rank-local plan covers: their sinks live in the parent process,
    so inside the forked worker they would silently record into memory
    that dies with the worker.  Attach through ``repro.obs`` (profiler,
    telemetry with a metrics path) to get rank-local re-attachment, and
    use ``python -m repro obs merge`` on the per-rank shards for the
    merged post-hoc view.
    """


def _describe_observer(fn: Any) -> str:
    """Human-readable identity of an observer callback for warnings."""
    qual = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None)
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{getattr(fn, '__name__', qual)}"
    return qual or repr(fn)


@dataclass
class RankStep:
    """What one rank reports after executing one epoch window."""

    wall_seconds: float
    events: int
    #: cross-rank sends made during this window (undelivered), batched
    #: per destination rank: ``outbox[dest_rank] -> [OutboxEntry, ...]``.
    #: Empty list when the rank sent nothing this window.
    outbox: List[List[OutboxEntry]]
    #: earliest event still queued on this rank, or None when drained
    next_time: Optional[SimTime]
    #: primary components on this rank still holding the run open
    primaries_pending: int
    last_event_time: SimTime
    now: SimTime
    #: bounded batch of rank-local telemetry records riding the pipe
    #: alongside the step result (processes backend, shard-less mode);
    #: drained by the parent before the step reaches the sync strategy.
    obs_records: Optional[List[Dict[str, Any]]] = None


def outbox_count(outbox: List[List[OutboxEntry]]) -> int:
    """Total entries across a per-destination outbox (0 for empty)."""
    if not outbox:
        return 0
    return sum(len(bucket) for bucket in outbox)


def drain_outbox(psim: "ParallelSimulation", rank: int) -> List[List[OutboxEntry]]:
    """Snapshot-and-clear ``rank``'s per-destination outbox.

    Returns the per-destination nested lists when anything was sent this
    window, or ``[]`` (falsy) when the rank was silent.  Buckets are
    cleared in place — the sender closures hold references to them.
    """
    by_dest = psim._outboxes[rank]
    if not any(by_dest):
        return []
    drained = [list(bucket) for bucket in by_dest]
    for bucket in by_dest:
        bucket.clear()
    return drained


def deliver_cross_rank(psim: "ParallelSimulation", rank: int,
                       entries: Sequence[OutboxEntry]) -> None:
    """Push exchanged entries into ``rank``'s queue, in the given order.

    Entries arrive pre-sorted on the global deterministic key (see
    :meth:`~repro.core.sync.ConservativeSync.exchange`); the local queue
    assigns fresh sequence numbers in that order, which keeps
    tie-breaking backend independent.  Destination ports are resolved
    from the link id, so this works identically in-process and inside a
    forked worker (which inherited the same cross-link table).
    """
    sim = psim._sims[rank]
    queue = sim._queue
    cross = psim._cross_links
    causal = sim._causal
    if causal is None:
        for when, priority, link_id, dest_rank, _seq, event in entries:
            link = cross[link_id]
            port = link.port_b if dest_rank == link.rank_b else link.port_a
            queue.push(when, priority, port.deliver, event)
        return
    # Causal tracing (repro.obs.causal): record each arrival's local
    # node id against its (link, send_seq) identity so the analyzer can
    # stitch the cross-rank edge back to the sender's cause node.
    for when, priority, link_id, dest_rank, send_seq, event in entries:
        link = cross[link_id]
        port = link.port_b if dest_rank == link.rank_b else link.port_a
        record = queue.push(when, priority, port.deliver, event)
        causal.on_cross_recv(record.seq, link_id, send_seq, when, priority)


def _timed_step(sim: "Simulation", epoch_end: SimTime) -> RankStep:
    """Run one rank's kernel window and package the result.

    Wall time is measured inside the worker so concurrent backends see
    true per-rank durations; the outbox is drained by the caller (it
    lives on the ParallelSimulation, per source rank).
    """
    perf = _wall_time.perf_counter
    t0 = perf()
    events = kernel_step(sim, epoch_end)
    wall = perf() - t0
    return RankStep(wall_seconds=wall, events=events, outbox=[],
                    next_time=sim.next_event_time(),
                    primaries_pending=sim.primaries_pending,
                    last_event_time=sim.last_event_time, now=sim.now)


class ExecutionBackend:
    """Interface: execute epoch windows for every rank of a parallel run."""

    name = "base"

    #: bytes moved by the most recent :meth:`step`'s exchange (transport
    #: payload both directions); 0 for in-process backends, surfaced per
    #: epoch through :class:`~repro.core.parallel.EpochInfo`.
    last_exchange_bytes: int = 0

    def __init__(self, psim: "ParallelSimulation"):
        self.psim = psim

    def start(self) -> None:
        """Acquire execution resources (pools, workers).  Idempotent."""

    def initial_next_times(self) -> List[Optional[SimTime]]:
        """Per-rank earliest queued event before the first epoch."""
        return [sim.next_event_time() for sim in self.psim._sims]

    def step(self, epoch_end: SimTime,
             deliveries: List[List[OutboxEntry]]) -> List[RankStep]:
        """Deliver this epoch's exchanged events, run every rank through
        ``epoch_end`` (inclusive), and report per-rank results."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Synchronize any out-of-process rank state back to the parent.

        Called once after a run's epoch loop completes normally; a
        no-op for in-process backends."""

    def snapshot_rank(self, rank: int, shard_path: str) -> Dict[str, Any]:
        """Write ``rank``'s engine state as a checkpoint shard file.

        Called by :func:`repro.ckpt.snapshot_parallel` at an epoch
        boundary (outboxes drained into the sync strategy, no rank
        mid-window), which is the only point where per-rank state is
        globally consistent.  The state must be captured *where the
        live rank lives*: in-process backends capture directly, the
        processes backend delegates to the worker that owns the rank.
        Returns the shard metadata dict (``sha256``, ``size``) recorded
        in the snapshot manifest.
        """
        from ..ckpt.state import capture_sim_state
        from ..ckpt.snapshot import write_shard

        psim = self.psim
        state = capture_sim_state(psim._sims[rank],
                                  send_seq=psim._send_seq[rank][0])
        meta = write_shard(shard_path, state)
        meta["now"] = state["meta"]["now"]
        return meta

    def close(self) -> None:
        """Release execution resources.  Safe to call repeatedly."""


class SerialBackend(ExecutionBackend):
    """Ranks step one after another in the calling thread (reference)."""

    name = "serial"

    def step(self, epoch_end: SimTime,
             deliveries: List[List[OutboxEntry]]) -> List[RankStep]:
        psim = self.psim
        for rank, entries in enumerate(deliveries):
            if entries:
                deliver_cross_rank(psim, rank, entries)
        steps = []
        for rank, sim in enumerate(psim._sims):
            result = _timed_step(sim, epoch_end)
            result.outbox = drain_outbox(psim, rank)
            steps.append(result)
        return steps


class ThreadsBackend(ExecutionBackend):
    """Ranks step concurrently in a thread pool (protocol scaling only).

    The CPython GIL serialises handler execution, so this demonstrates
    the sync protocol rather than wall-clock speedup; epoch counts and
    exchanged-event counts are identical to the serial backend.
    """

    name = "threads"

    def __init__(self, psim: "ParallelSimulation"):
        super().__init__(psim)
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        if self._pool is None and self.psim.num_ranks > 1:
            self._pool = ThreadPoolExecutor(max_workers=self.psim.num_ranks)

    def step(self, epoch_end: SimTime,
             deliveries: List[List[OutboxEntry]]) -> List[RankStep]:
        psim = self.psim
        # Deliveries and outbox drains stay in the calling thread; only
        # the kernel windows run concurrently.
        for rank, entries in enumerate(deliveries):
            if entries:
                deliver_cross_rank(psim, rank, entries)
        if self._pool is None:
            steps = [_timed_step(sim, epoch_end) for sim in psim._sims]
        else:
            futures = [self._pool.submit(_timed_step, sim, epoch_end)
                       for sim in psim._sims]
            steps = [f.result() for f in futures]  # re-raise worker exceptions
        for rank, result in enumerate(steps):
            result.outbox = drain_outbox(psim, rank)
        return steps

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _send_msg(conn, msg: Any) -> None:
    """One pickled batch per pipe write (highest pickle protocol).

    Every exchange message — the epoch's whole per-destination entry
    batch included — crosses the pipe as a single ``send_bytes`` of one
    pre-pickled buffer, rather than leaving framing and (older-protocol)
    pickling to ``Connection.send``.
    """
    conn.send_bytes(pickle.dumps(msg, pickle.HIGHEST_PROTOCOL))


def _recv_msg(conn) -> Any:
    return pickle.loads(conn.recv_bytes())


class ProcessesBackend(ExecutionBackend):
    """One forked worker process per rank, event batches over pipes or
    shared memory.

    The parent process runs the sync strategy and the epoch loop; each
    worker owns one rank's :class:`Simulation` (inherited fully wired
    via fork) and runs its kernel windows on command.  Only exchanged
    events, step metadata and the final statistics harvest cross the
    process boundary.

    Two data-plane transports (``ParallelSimulation(transport=...)``):

    * ``"pipe"`` — one pickled batch per pipe write (the historical
      path, and the fallback when ``multiprocessing.shared_memory`` is
      unavailable);
    * ``"shm"`` — per-rank shared-memory ring buffers carrying
      flat-encoded entries, with counter-spin epoch barriers
      (:mod:`repro.core.shm`).  Control commands — snapshots, the final
      harvest, shutdown, errors — stay on the pipes under either
      transport.
    """

    name = "processes"

    def __init__(self, psim: "ParallelSimulation"):
        super().__init__(psim)
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise SimulationError(
                "the 'processes' backend requires the fork start method "
                "(Linux/macOS); use backend='threads' or 'serial' here"
            )
        self._ctx = mp.get_context("fork")
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self.transport = getattr(psim, "transport", "pipe")
        self._exchange: Optional[Any] = None

    def start(self) -> None:
        if self._procs:
            return
        self._warn_uncovered_observers()
        if self.transport == "shm" and self._exchange is None:
            from .shm import ShmExchange

            # Created before the fork so every worker inherits the
            # mapped segment — nothing is re-attached by name.
            self._exchange = ShmExchange(self.psim.num_ranks)
        # Fork AFTER setup(): workers inherit wired graphs, queued
        # setup events and registered primaries.  The parent keeps the
        # setup-time outbox entries (workers clear their copies).
        for rank in range(self.psim.num_ranks):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self.psim, rank, child_conn, self._exchange),
                name=f"repro-rank{rank}", daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _warn_uncovered_observers(self) -> None:
        """Satellite guard: detaching an observer must not be silent.

        Workers strip every per-event observer at the fork boundary.
        Observers attached through ``repro.obs`` carry a
        ``__rank_local__`` marker ("profile" re-attaches always; "span"
        re-attaches when the rank plan has a record sink) and keep
        working rank-locally; anything else is about to lose its data,
        so name it in a structured one-time warning.
        """
        plan = getattr(self.psim, "rank_plan", None)
        span_sink = bool(plan is not None
                         and getattr(plan, "has_record_sink", False))
        doomed: List[str] = []
        for rank, sim in enumerate(self.psim._sims):
            candidates: List[Any] = []
            if sim._trace_fn is not None:
                candidates.append(sim._trace_fn)
            candidates.extend(sim._trace_observers)
            candidates.extend(sim._span_observers)
            candidates.extend(sim._heartbeats)
            for fn in candidates:
                marker = getattr(fn, "__rank_local__", None)
                if marker == "profile" or (marker == "span" and span_sink):
                    continue
                doomed.append(f"rank {rank}: {_describe_observer(fn)}")
        if doomed:
            warnings.warn(
                "processes backend: detaching per-event observers that "
                "cannot be re-attached rank-locally — "
                + "; ".join(sorted(set(doomed)))
                + ".  Their sinks live in the parent process and would "
                "record into memory that dies with the workers.  Attach "
                "a TelemetryRecorder with a metrics path to capture "
                "per-rank JSONL shards instead, then merge post-hoc "
                "with 'python -m repro obs merge <metrics.jsonl>'.",
                RankObservabilityWarning,
                stacklevel=3,
            )

    def step(self, epoch_end: SimTime,
             deliveries: List[List[OutboxEntry]]) -> List[RankStep]:
        if self._exchange is not None:
            steps = self._step_shm(epoch_end, deliveries)
        else:
            steps = self._step_pipe(epoch_end, deliveries)
        plan = getattr(self.psim, "rank_plan", None)
        if plan is not None:
            # Bounded rank-local record batches ride the transport
            # alongside the step results (shard-less mode); hand them to
            # the plan before the sync strategy ever sees the steps.
            for rank, step in enumerate(steps):
                if step.obs_records:
                    plan.deliver(rank, step.obs_records)
                    step.obs_records = None
        return steps

    def _step_pipe(self, epoch_end: SimTime,
                   deliveries: List[List[OutboxEntry]]) -> List[RankStep]:
        sent = 0
        for conn, entries in zip(self._conns, deliveries):
            blob = pickle.dumps(("step", epoch_end, entries),
                                pickle.HIGHEST_PROTOCOL)
            conn.send_bytes(blob)
            sent += len(blob)
        self.last_exchange_bytes = sent
        steps = []
        for rank in range(self.psim.num_ranks):
            raw = self._recv_raw(rank)
            self.last_exchange_bytes += len(raw)
            msg = pickle.loads(raw)
            if msg[0] == "error":
                raise msg[1]
            steps.append(msg[1])
        return steps

    def _step_shm(self, epoch_end: SimTime,
                  deliveries: List[List[OutboxEntry]]) -> List[RankStep]:
        from .event import encode_entries
        from .shm import decode_step

        exchange = self._exchange
        num_ranks = self.psim.num_ranks
        before = exchange.bytes_posted + exchange.bytes_collected
        for rank in range(num_ranks):
            exchange.post(rank, epoch_end, encode_entries(deliveries[rank]),
                          alive_check=self._procs[rank].is_alive)
        steps = []
        for rank in range(num_ranks):
            blob = exchange.collect(rank,
                                    alive_check=self._procs[rank].is_alive)
            if blob is None:
                # the worker flagged a failure; the exception itself is
                # waiting on the control pipe
                self._recv(rank)
                raise SimulationError(  # pragma: no cover - _recv raises
                    f"rank {rank} flagged an error without details")
            steps.append(decode_step(blob, num_ranks))
        self.last_exchange_bytes = (exchange.bytes_posted
                                    + exchange.bytes_collected - before)
        return steps

    def finalize(self) -> None:
        """Adopt worker-side results into the parent-side simulations.

        Workers run ``finish()`` (so component finish hooks see their
        true final state) and ship their statistic collectors back; the
        parent copies collector state into its own objects in place, so
        existing references (``component.stats``, merged harvests)
        observe the worker's results.  Component attributes other than
        statistics are *not* synchronized — use stats, that's what they
        are for.
        """
        if not self._procs:
            return
        for conn in self._conns:
            _send_msg(conn, ("finish",))
        for rank in range(self.psim.num_ranks):
            payload = self._recv(rank)
            sim = self.psim._sims[rank]
            sim.now = payload["now"]
            sim.last_event_time = payload["last_event_time"]
            sim._events_executed = payload["events_executed"]
            sim._primaries_pending = payload["primaries_pending"]
            # comp.finish() already ran worker-side with live state;
            # running it again on the stale parent copy would corrupt
            # the adopted statistics.
            sim._finished = True
            for comp_name, stats in payload["stats"].items():
                group = sim._components[comp_name].stats.all()
                for stat_name, remote in stats.items():
                    _adopt_stat(group[stat_name], remote)
            # Engine stats are adopted *additively only*: names the
            # parent already tracks (sync.* — maintained parent-side
            # during the epoch loop) keep their live values; names only
            # the worker registered (obs.* rank-telemetry counters) are
            # adopted wholesale so harvest_stats-style merging sees
            # them.  _register returns the existing collector untouched
            # when the name is taken, which is exactly that rule.
            for name, remote in (payload.get("engine_stats") or {}).items():
                sim.engine_stats._register(name, remote)
            plan = getattr(self.psim, "rank_plan", None)
            if plan is not None:
                plan.absorb(rank, payload.get("obs"))

    def snapshot_rank(self, rank: int, shard_path: str) -> Dict[str, Any]:
        """Ask the worker that owns ``rank`` to write its own shard.

        The parent's rank simulations are stale copies under this
        backend (frozen at fork time); the live state is in the worker,
        so the shard is captured and written worker-side and only the
        checksum metadata crosses the pipe.
        """
        _send_msg(self._conns[rank], ("snapshot", shard_path))
        return self._recv(rank)

    def worker_pid(self, rank: int) -> Optional[int]:
        """The pid of the forked worker that owns ``rank`` (or None)."""
        if rank < len(self._procs):
            return self._procs[rank].pid
        return None

    def request_stack_dump(self, rank: int, dump_path: str, *,
                           timeout_s: float = 2.0) -> Optional[str]:
        """Extract a stack dump from rank ``rank``'s worker via SIGUSR1.

        Only works when the run's plan carried ``live_dump_base`` (the
        worker registered the faulthandler signal at startup — see
        :func:`repro.obs.live.watchdog.enable_stack_dump_signal`).  The
        pipe command channel is deliberately not used: a wedged worker
        never returns to the command loop, while the signal path dumps
        from any state.
        """
        from ..obs.live.watchdog import request_stack_dump

        pid = self.worker_pid(rank)
        if pid is None:
            return None
        return request_stack_dump(pid, dump_path, timeout_s=timeout_s)

    def _recv_raw(self, rank: int) -> bytes:
        try:
            return self._conns[rank].recv_bytes()
        except (EOFError, OSError) as exc:
            raise SimulationError(
                f"rank {rank} worker process died unexpectedly"
            ) from exc

    def _recv(self, rank: int):
        msg = pickle.loads(self._recv_raw(rank))
        if msg[0] == "error":
            raise msg[1]
        return msg[1]

    def close(self) -> None:
        for conn in self._conns:
            try:
                _send_msg(conn, ("close",))
            except (OSError, ValueError, BrokenPipeError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        self._procs = []
        self._conns = []
        if self._exchange is not None:
            self._exchange.close(unlink=True)
            self._exchange = None


def _adopt_stat(local, remote) -> None:
    """Copy a worker statistic's state into the parent's collector.

    In-place state copy (not object replacement) so references held by
    the parent component — ``self.received`` and friends — observe the
    adopted values too.  Delegates to
    :func:`repro.core.statistics.adopt_state`, the same primitive the
    checkpoint layer uses to adopt snapshot statistics.
    """
    try:
        adopt_state(local, remote)
    except TypeError as exc:
        raise SimulationError(str(exc)) from None


def _worker_main(psim: "ParallelSimulation", rank: int, conn,
                 exchange: Any = None) -> None:
    """Per-rank worker loop (runs in a forked child process).

    With ``exchange`` (a :class:`~repro.core.shm.ShmExchange` inherited
    through fork), epoch steps arrive as shared-memory counter bumps and
    results return on the rank's up ring; the pipe is polled while
    idle-spinning so control commands (snapshot / finish / close) keep
    working mid-run.  Without it, everything — steps included — arrives
    on the pipe.
    """
    import traceback

    sim = psim._sims[rank]
    # Per-event observers cannot usefully cross the process boundary
    # (their sinks — files, aggregation dicts — live in the parent);
    # detach them so the kernel loop takes the bare path.  The parent
    # warned about any observer the rank plan does not cover.
    sim._trace_fn = None
    sim._trace_observers = []
    sim._span_observers = []
    sim._heartbeats = {}
    sim._rebuild_instr()
    # Re-attach the rank-local recorder the plan describes (JSONL shard
    # or pipe batches, span buckets, heartbeats).  Observability must
    # never kill a worker: creation failures degrade to a bare rank.
    recorder = None
    plan = getattr(psim, "rank_plan", None)
    if plan is not None:
        try:
            recorder = plan.worker_recorder(psim, rank)
        except Exception:  # pragma: no cover - defensive
            import sys
            import traceback as _tb
            print(f"repro: rank {rank} telemetry recorder failed to "
                  f"start; continuing without it:\n{_tb.format_exc()}",
                  file=sys.stderr)
            recorder = None
        # Watchdog stack dumps: register SIGUSR1 -> faulthandler so the
        # parent can extract this worker's stack even while it is wedged
        # inside a handler.
        dump_base = getattr(plan, "live_dump_base", None)
        if dump_base:
            try:
                from ..obs.live.watchdog import enable_stack_dump_signal
                enable_stack_dump_signal(f"{dump_base}.stack.rank{rank}")
            except Exception:  # pragma: no cover - defensive
                pass
    # Setup-time sends were captured by the parent at fork; drop the
    # inherited copies so they are not delivered twice.
    for by_dest in psim._outboxes:
        for bucket in by_dest:
            bucket.clear()

    def send_error(exc: BaseException) -> None:
        try:
            _send_msg(conn, ("error", exc))
        except Exception:  # unpicklable exception: ship the traceback text
            _send_msg(conn, ("error", SimulationError(
                f"rank {rank} worker failed:\n{traceback.format_exc()}"
            )))

    def run_step_pipe(epoch_end, entries) -> None:
        try:
            deliver_cross_rank(psim, rank, entries)
            result = _timed_step(sim, epoch_end)
        except Exception as exc:
            send_error(exc)
            return
        result.outbox = drain_outbox(psim, rank)
        nonlocal recorder
        if recorder is not None:
            try:
                recorder.on_step(result, epoch_end)
            except Exception:  # pragma: no cover - defensive
                recorder = None
        try:
            _send_msg(conn, ("ok", result))
        except Exception as exc:
            send_error(SimulationError(
                f"rank {rank}: a cross-rank event is not "
                f"serializable (events crossing ranks under the "
                f"processes backend must be picklable): {exc}"
            ))

    def run_step_shm() -> None:
        """One shm-transport epoch: deliveries off the down ring, kernel
        window, result onto the up ring (errors: flag + pipe)."""
        from .event import decode_entries
        from .shm import encode_step

        nonlocal recorder
        try:
            epoch_end = exchange.epoch_end(rank)
            entries, _ = decode_entries(exchange.read_deliveries(rank))
            deliver_cross_rank(psim, rank, entries)
            result = _timed_step(sim, epoch_end)
            result.outbox = drain_outbox(psim, rank)
            if recorder is not None:
                try:
                    recorder.on_step(result, epoch_end)
                except Exception:  # pragma: no cover - defensive
                    recorder = None
            payload = encode_step(result)
        except pickle.PicklingError as exc:
            send_error(SimulationError(
                f"rank {rank}: a cross-rank event is not serializable "
                f"(events crossing ranks must be flat-encodable or "
                f"picklable): {exc}"))
            exchange.fail(rank)
            return
        except Exception as exc:
            send_error(exc)
            exchange.fail(rank)
            return
        exchange.complete(rank, payload)

    def handle_control(msg) -> bool:
        """Dispatch one pipe control command; False = stop the worker."""
        cmd = msg[0]
        if cmd == "snapshot":
            _, shard_path = msg
            try:
                from ..ckpt.state import capture_sim_state
                from ..ckpt.snapshot import write_shard

                state = capture_sim_state(
                    sim, send_seq=psim._send_seq[rank][0])
                meta = write_shard(shard_path, state)
                meta["now"] = state["meta"]["now"]
                _send_msg(conn, ("ok", meta))
            except Exception as exc:
                send_error(exc)
        elif cmd == "finish":
            nonlocal recorder
            try:
                sim.finish()
                obs_payload = None
                if recorder is not None:
                    try:
                        obs_payload = recorder.finish()
                    except Exception:  # pragma: no cover - defensive
                        obs_payload = None
                    recorder = None
                payload = {
                    "stats": harvest_stats(sim),
                    "engine_stats": harvest_engine_stats(sim),
                    "obs": obs_payload,
                    "events_executed": sim._events_executed,
                    "now": sim.now,
                    "last_event_time": sim.last_event_time,
                    "primaries_pending": sim.primaries_pending,
                }
                _send_msg(conn, ("ok", payload))
            except Exception as exc:
                send_error(exc)
        elif cmd == "close":
            return False
        return True

    try:
        if exchange is None:
            while True:
                try:
                    msg = _recv_msg(conn)
                except (EOFError, OSError):
                    return
                if msg[0] == "step":
                    run_step_pipe(msg[1], msg[2])
                elif not handle_control(msg):
                    return
        else:
            # shm transport: steps arrive as counter bumps; the pipe is
            # polled between spins so control commands still land.
            last_cmd = 0
            spins = 0
            while True:
                if exchange.cmd_seq(rank) > last_cmd:
                    last_cmd += 1
                    spins = 0
                    run_step_shm()
                    continue
                try:
                    if conn.poll(0):
                        msg = _recv_msg(conn)
                        spins = 0
                        if not handle_control(msg):
                            return
                        continue
                except (EOFError, OSError):
                    return
                spins += 1
                _wall_time.sleep(0 if spins < 100 else 0.0002)
    finally:
        if exchange is not None:
            exchange.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


#: Registry used by ParallelSimulation(backend="...") and the CLI.
BACKENDS: Dict[str, Callable[["ParallelSimulation"], ExecutionBackend]] = {
    "serial": SerialBackend,
    "threads": ThreadsBackend,
    "processes": ProcessesBackend,
}


def make_backend(name: str, psim: "ParallelSimulation") -> ExecutionBackend:
    """Instantiate an execution backend by name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; options: {sorted(BACKENDS)}"
        ) from None
    return factory(psim)


# ----------------------------------------------------------------------
# Coarse-grained job pools (the dse.sweep substrate)
# ----------------------------------------------------------------------

def default_jobs() -> int:
    """Usable CPU count (affinity-aware), >= 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class JobPool:
    """Evaluate independent jobs on one of the engine's substrates.

    The coarse-grained sibling of :class:`ExecutionBackend`: where a
    backend parallelises ranks *within* one simulation, a job pool
    parallelises *whole simulations* (design-space sweep points).  The
    substrate names match (``serial`` / ``threads`` / ``processes``),
    and ``processes`` is again the one that scales past the GIL.
    """

    name = "base"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """``[fn(x) for x in items]`` on this pool's substrate, in order."""
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "JobPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialJobPool(JobPool):
    name = "serial"

    def map(self, fn, items):
        return [fn(item) for item in items]


class ThreadsJobPool(JobPool):
    name = "threads"

    def __init__(self, jobs: int):
        self._pool = ThreadPoolExecutor(max_workers=jobs)

    def map(self, fn, items):
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessesJobPool(JobPool):
    """Fork-based process pool; jobs and results must be picklable."""

    name = "processes"

    def __init__(self, jobs: int):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise SimulationError(
                "the 'processes' job pool requires the fork start method"
            )
        self._pool = mp.get_context("fork").Pool(processes=jobs)

    def map(self, fn, items):
        return self._pool.map(fn, list(items))

    def close(self) -> None:
        self._pool.close()
        self._pool.join()


def make_job_pool(backend: str = "serial",
                  jobs: Optional[int] = None) -> JobPool:
    """Instantiate a job pool by substrate name.

    ``jobs`` defaults to the usable CPU count; the serial pool ignores
    it.  One job per design point is the intended granularity.
    """
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend == "serial" or jobs == 1 and backend != "processes":
        return SerialJobPool()
    if backend == "threads":
        return ThreadsJobPool(jobs)
    if backend == "processes":
        return ProcessesJobPool(jobs)
    raise ValueError(
        f"unknown job-pool backend {backend!r}; options: "
        f"{sorted(BACKENDS)}"
    )
