"""Component-graph partitioning for parallel simulation.

Before a parallel run, the component graph must be split across ranks.
The quality of the split matters twice: *balance* determines how evenly
work is spread, and *edge cut* determines how many events cross rank
boundaries (each crossing is serialised through the epoch exchange).
The minimum latency among cut links also fixes the conservative
lookahead, so a partitioner that avoids cutting low-latency links
directly buys longer epochs.

Four strategies (experiment ENG-2 ablates them):

* ``linear``      — contiguous slices in insertion order.  Matches SST's
  default "self partitioner" behaviour; excellent for configs built
  topology-major (e.g. a torus built plane by plane).
* ``round_robin`` — node *i* to rank ``i % n``.  Worst-case cut; the
  control baseline.
* ``bfs``         — grow regions breadth-first until a weight quota is
  reached; keeps neighbourhoods together without geometry knowledge.
* ``kl``          — ``bfs`` followed by Kernighan–Lin-style boundary
  refinement passes that greedily move nodes to reduce the weighted cut
  while respecting a balance tolerance.

All strategies also accept a :class:`PartitionProfile` of *observed*
feedback from a previous run (per-component work multipliers from the
imbalance report, per-link traffic from the causal tracer's cut-edge
report) which is folded into the configured node and edge weights
before partitioning — the profile-guided repartitioning loop driven by
``python -m repro obs partition-advise``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

NodeId = Hashable


@dataclass(frozen=True)
class PartitionEdge:
    """An undirected edge of the component graph.

    ``weight`` models expected traffic (events/unit time); ``latency``
    is the link latency in ps (drives the lookahead of a cut).
    """

    u: NodeId
    v: NodeId
    weight: float = 1.0
    latency: int = 1


@dataclass
class PartitionResult:
    """Assignment of nodes to ranks, plus quality metrics."""

    assignment: Dict[NodeId, int]
    num_ranks: int
    edge_cut: float  #: sum of weights of edges crossing ranks
    cut_edges: int  #: number of edges crossing ranks
    min_cut_latency: Optional[int]  #: smallest latency among cut edges (lookahead)
    imbalance: float  #: max rank weight / ideal rank weight

    def rank_of(self, node: NodeId) -> int:
        return self.assignment[node]

    def ranks(self) -> List[List[NodeId]]:
        """Nodes grouped per rank, preserving assignment-dict order."""
        groups: List[List[NodeId]] = [[] for _ in range(self.num_ranks)]
        for node, rank in self.assignment.items():
            groups[rank].append(node)
        return groups


@dataclass
class PartitionProfile:
    """Observed-run feedback folded into a :func:`partition` call.

    Built from a recorded run's telemetry (see
    :mod:`repro.obs.advise`): per-rank busy time becomes per-component
    work multipliers — components that lived on straggler ranks look
    heavier, so balance-aware strategies spread them out — and the
    causal tracer's cut-edge report becomes extra edge weight, so the
    KL refinement pulls the endpoints of observed-chatty cut links onto
    one rank.  Multipliers scale the configured node weights; traffic
    adds to the configured edge weights (keyed by the unordered
    endpoint pair).
    """

    #: node -> observed work multiplier (missing nodes default to 1.0)
    node_multipliers: Dict[NodeId, float] = field(default_factory=dict)
    #: frozenset({u, v}) -> observed traffic weight added to the edge
    edge_traffic: Dict[FrozenSet[NodeId], float] = field(default_factory=dict)

    def scaled_node_weights(
        self, node_weight: Dict[NodeId, float]
    ) -> Dict[NodeId, float]:
        return {n: w * self.node_multipliers.get(n, 1.0)
                for n, w in node_weight.items()}

    def weighted_edges(
        self, edges: List[PartitionEdge]
    ) -> List[PartitionEdge]:
        if not self.edge_traffic:
            return edges
        out: List[PartitionEdge] = []
        for e in edges:
            extra = self.edge_traffic.get(frozenset((e.u, e.v)), 0.0)
            if extra:
                e = PartitionEdge(u=e.u, v=e.v, weight=e.weight + extra,
                                  latency=e.latency)
            out.append(e)
        return out


STRATEGIES = ("linear", "round_robin", "bfs", "kl")


def partition(
    nodes: Sequence[NodeId],
    edges: Iterable[PartitionEdge],
    num_ranks: int,
    strategy: str = "linear",
    weights: Optional[Dict[NodeId, float]] = None,
    balance_tolerance: float = 1.10,
    refine_passes: int = 4,
    profile: Optional[PartitionProfile] = None,
) -> PartitionResult:
    """Partition ``nodes`` into ``num_ranks`` groups.

    Parameters
    ----------
    nodes:
        All component ids, in configuration order (order matters for
        the ``linear`` strategy).
    edges:
        Undirected links between components.
    weights:
        Per-node work estimate (default 1.0 each).
    balance_tolerance:
        For ``kl``: maximum allowed (rank weight / ideal weight).
    profile:
        Observed-run feedback (:class:`PartitionProfile`) multiplied
        onto node weights and added onto edge weights before
        partitioning.  The returned result's quality metrics are
        computed against the profiled weights.
    """
    nodes = list(nodes)
    edge_list = list(edges)
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if num_ranks > len(nodes) and nodes:
        raise ValueError(
            f"cannot split {len(nodes)} nodes across {num_ranks} ranks"
        )
    node_weight = {n: (weights or {}).get(n, 1.0) for n in nodes}
    known = set(nodes)
    for e in edge_list:
        if e.u not in known or e.v not in known:
            raise ValueError(f"edge {e.u!r}--{e.v!r} references unknown node")
    if profile is not None:
        node_weight = profile.scaled_node_weights(node_weight)
        edge_list = profile.weighted_edges(edge_list)

    if num_ranks == 1:
        assignment = {n: 0 for n in nodes}
    elif strategy == "linear":
        assignment = _linear(nodes, node_weight, num_ranks)
    elif strategy == "round_robin":
        assignment = {n: i % num_ranks for i, n in enumerate(nodes)}
    elif strategy == "bfs":
        assignment = _bfs_grow(nodes, edge_list, node_weight, num_ranks)
    elif strategy == "kl":
        assignment = _bfs_grow(nodes, edge_list, node_weight, num_ranks)
        assignment = _kl_refine(
            assignment, nodes, edge_list, node_weight, num_ranks,
            balance_tolerance, refine_passes,
        )
    else:
        raise ValueError(f"unknown partition strategy {strategy!r}; options: {STRATEGIES}")

    return evaluate(assignment, edge_list, node_weight, num_ranks)


def evaluate(
    assignment: Dict[NodeId, int],
    edges: Iterable[PartitionEdge],
    node_weight: Optional[Dict[NodeId, float]] = None,
    num_ranks: Optional[int] = None,
) -> PartitionResult:
    """Compute quality metrics for an arbitrary assignment."""
    edge_list = list(edges)
    if num_ranks is None:
        num_ranks = (max(assignment.values()) + 1) if assignment else 1
    node_weight = node_weight or {n: 1.0 for n in assignment}
    cut_weight = 0.0
    cut_count = 0
    min_latency: Optional[int] = None
    for e in edge_list:
        if assignment[e.u] != assignment[e.v]:
            cut_weight += e.weight
            cut_count += 1
            if min_latency is None or e.latency < min_latency:
                min_latency = e.latency
    rank_weights = [0.0] * num_ranks
    for node, rank in assignment.items():
        rank_weights[rank] += node_weight.get(node, 1.0)
    total = sum(rank_weights)
    ideal = total / num_ranks if num_ranks else 0.0
    imbalance = (max(rank_weights) / ideal) if ideal > 0 else 1.0
    return PartitionResult(
        assignment=assignment,
        num_ranks=num_ranks,
        edge_cut=cut_weight,
        cut_edges=cut_count,
        min_cut_latency=min_latency,
        imbalance=imbalance,
    )


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

def _linear(nodes: Sequence[NodeId], node_weight: Dict[NodeId, float],
            num_ranks: int) -> Dict[NodeId, int]:
    total = sum(node_weight[n] for n in nodes)
    ideal = total / num_ranks
    assignment: Dict[NodeId, int] = {}
    rank = 0
    acc = 0.0
    for n in nodes:
        # Close a slice when it has met its quota and ranks remain.
        if acc >= ideal and rank < num_ranks - 1:
            rank += 1
            acc = 0.0
        assignment[n] = rank
        acc += node_weight[n]
    return assignment


def _build_graph(nodes: Sequence[NodeId], edges: List[PartitionEdge]) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    for e in edges:
        if graph.has_edge(e.u, e.v):
            graph[e.u][e.v]["weight"] += e.weight
        else:
            graph.add_edge(e.u, e.v, weight=e.weight)
    return graph


def _bfs_grow(nodes: Sequence[NodeId], edges: List[PartitionEdge],
              node_weight: Dict[NodeId, float], num_ranks: int) -> Dict[NodeId, int]:
    graph = _build_graph(nodes, edges)
    total = sum(node_weight.values())
    ideal = total / num_ranks
    assignment: Dict[NodeId, int] = {}
    unassigned = list(nodes)  # preserves deterministic order
    unassigned_set = set(nodes)
    for rank in range(num_ranks):
        if not unassigned_set:
            break
        remaining_ranks = num_ranks - rank
        quota = ideal if rank < num_ranks - 1 else float("inf")
        # Seed from the first unassigned node (deterministic).
        seed = next(n for n in unassigned if n in unassigned_set)
        frontier = [seed]
        acc = 0.0
        seen = {seed}
        while frontier and (acc < quota or remaining_ranks == 1):
            node = frontier.pop(0)
            if node not in unassigned_set:
                continue
            assignment[node] = rank
            unassigned_set.discard(node)
            acc += node_weight[node]
            if acc >= quota and remaining_ranks > 1:
                break
            for nbr in graph.neighbors(node):
                if nbr in unassigned_set and nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
            # If the region ran out of frontier but quota is unmet,
            # jump to the next unassigned node (disconnected graphs).
            if not frontier and acc < quota:
                jump = next((n for n in unassigned if n in unassigned_set), None)
                if jump is not None:
                    frontier.append(jump)
                    seen.add(jump)
    # Anything left (can happen with tight quotas) goes to the last rank.
    for n in unassigned:
        if n in unassigned_set:
            assignment[n] = num_ranks - 1
            unassigned_set.discard(n)
    return assignment


def _kl_refine(assignment: Dict[NodeId, int], nodes: Sequence[NodeId],
               edges: List[PartitionEdge], node_weight: Dict[NodeId, float],
               num_ranks: int, balance_tolerance: float,
               passes: int) -> Dict[NodeId, int]:
    graph = _build_graph(nodes, edges)
    assignment = dict(assignment)
    total = sum(node_weight.values())
    ideal = total / num_ranks
    limit = ideal * balance_tolerance
    rank_weights = [0.0] * num_ranks
    for n, r in assignment.items():
        rank_weights[r] += node_weight[n]

    for _ in range(passes):
        moved = False
        for node in nodes:
            home = assignment[node]
            # Tally edge weight toward each rank among neighbours.
            afinity: Dict[int, float] = {}
            for nbr in graph.neighbors(node):
                w = graph[node][nbr]["weight"]
                afinity[assignment[nbr]] = afinity.get(assignment[nbr], 0.0) + w
            if not afinity:
                continue
            internal = afinity.get(home, 0.0)
            # Best candidate rank by gain, deterministic tie-break by rank id.
            best_rank, best_gain = home, 0.0
            for rank in sorted(afinity):
                if rank == home:
                    continue
                gain = afinity[rank] - internal
                if gain > best_gain:
                    weight = node_weight[node]
                    if rank_weights[rank] + weight <= limit:
                        best_rank, best_gain = rank, gain
            if best_rank != home:
                assignment[node] = best_rank
                rank_weights[home] -= node_weight[node]
                rank_weights[best_rank] += node_weight[node]
                moved = True
        if not moved:
            break
    return assignment
