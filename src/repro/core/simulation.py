"""The sequential discrete-event engine.

One :class:`Simulation` owns the component set, the pending-event queue
and the simulated clock for a single *rank*.  The parallel engine
(:mod:`repro.core.parallel`) composes several of these, one per rank.

Typical direct use (the config layer in :mod:`repro.config` builds all
of this from a :class:`~repro.config.graph.ConfigGraph` instead)::

    sim = Simulation(seed=7)
    ping = Pinger(sim, "ping", Params({...}))
    pong = Ponger(sim, "pong", Params({...}))
    sim.connect(ping, "out", pong, "in", latency="10ns")
    result = sim.run(max_time="1ms")
    print(sim.stat_table())
"""

from __future__ import annotations

import os
import time as _wall_time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from . import units
from .clock import Clock, ClockArbiter, ClockHandler, _ArbiterTickEvent
from .component import Component
from .event import (PRIORITY_CLOCK, PRIORITY_EVENT, CallbackEvent, Event,
                    EventRecord, Handler)
from .eventqueue import EventQueueBase, make_queue
from .link import Link, LinkError, Port
from .statistics import StatisticGroup
from .units import SimTime


class SimulationError(RuntimeError):
    """Engine misuse (running twice, connecting after setup, ...)."""


@dataclass
class RunResult:
    """Outcome of a :meth:`Simulation.run` call."""

    reason: str  #: "exhausted" | "max_time" | "max_events" | "exit" | "stopped"
    end_time: SimTime
    events_executed: int
    wall_seconds: float
    #: events executed per wall-clock second (engine throughput)
    events_per_second: float = field(init=False)

    def __post_init__(self) -> None:
        self.events_per_second = (
            self.events_executed / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (embedded in run manifests)."""
        return {
            "reason": self.reason,
            "end_time_ps": self.end_time,
            "events_executed": self.events_executed,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
        }


class Simulation:
    """A single-rank discrete-event simulation.

    Parameters
    ----------
    queue:
        Pending-event set implementation: ``"heap"`` (default) or
        ``"binned"`` (see :mod:`repro.core.eventqueue`).
    seed:
        Base seed for all per-component random streams.
    rank, num_ranks:
        Identity within a parallel run; ``(0, 1)`` for sequential.
    rank_seed:
        Seed of this rank's *engine-level* random stream
        (:attr:`engine_rng`).  Defaults to the ``rank``-th child of
        ``numpy.random.SeedSequence(seed).spawn(num_ranks)``, so every
        rank of a parallel run draws a distinct, collision-free stream.
        Component streams are unaffected — they key off the base
        ``seed`` and the component name (see
        :func:`~repro.core.component.stable_seed`), which is what keeps
        sequential and parallel statistics bit-identical.
    verbose:
        Enables :meth:`Component.debug` tracing.
    clock_arbiter:
        Share one tick chain among same-(period, priority, phase) clocks
        (see :class:`~repro.core.clock.ClockArbiter`).  Default
        ``None`` reads the ``REPRO_CLOCK_ARBITER`` environment knob
        (enabled unless set to ``0``/``off``/``false``/``no``); pass
        ``True``/``False`` to force it.
    """

    def __init__(self, *, queue: str = "heap", seed: int = 1, rank: int = 0,
                 num_ranks: int = 1, rank_seed: Optional[int] = None,
                 verbose: bool = False,
                 queue_kwargs: Optional[Dict[str, Any]] = None,
                 clock_arbiter: Optional[bool] = None):
        self.now: SimTime = 0
        self.seed = seed
        self.rank = rank
        self.num_ranks = num_ranks
        if rank_seed is None:
            children = np.random.SeedSequence(seed).spawn(max(num_ranks, rank + 1))
            rank_seed = int(children[rank].generate_state(1)[0])
        #: distinct per-rank engine RNG seed (seed-sequence spawn)
        self.rank_seed = rank_seed
        self._engine_rng: Optional[np.random.Generator] = None
        self.verbose = verbose
        self.queue_kind = queue
        self._queue: EventQueueBase = make_queue(queue, **(queue_kwargs or {}))
        self._components: Dict[str, Component] = {}
        self._links: List[Link] = []
        self._clocks: List[Clock] = []
        if clock_arbiter is None:
            clock_arbiter = os.environ.get(
                "REPRO_CLOCK_ARBITER", "1").strip().lower() not in (
                    "0", "off", "false", "no")
        #: shared-tick-chain mode (see ClockArbiter); resolved once here
        #: so forked rank workers inherit the parent's choice.
        self.clock_arbiter_enabled = bool(clock_arbiter)
        #: one arbiter per (period, priority, phase residue) clock class
        self._arbiters: Dict[Tuple[SimTime, int, SimTime], ClockArbiter] = {}
        self._setup_done = False
        self._finished = False
        self._running = False
        self._stop_requested = False
        self._events_executed = 0
        #: time of the most recently executed event (excludes idle advance)
        self.last_event_time: SimTime = 0
        # --- observability dispatch (repro.obs) -----------------------
        # The hot loop pays a single `self._instr is None` check; the
        # compiled dispatcher below is rebuilt whenever observers change
        # and is None when nothing is installed.
        #: legacy single observer slot (set_trace); folded into dispatch.
        self._trace_fn = None
        self._trace_observers: List[Any] = []
        self._span_observers: List[Any] = []
        self._heartbeats: Dict[Any, int] = {}
        self._instr = None
        #: causal tracer (repro.obs.causal); duck-typed — anything with
        #: on_dispatch(record) and a `cell` one-slot list.  Folded into
        #: the instrumented dispatcher, so with tracing off the bare
        #: path pays nothing and the instrumented path pays one check.
        self._causal = None
        #: live-plane publisher (repro.obs.live); duck-typed — anything
        #: with on_kernel_enter()/on_kernel_exit().  The kernel loop
        #: pays one `is not None` check per *invocation* (not per
        #: event), so the bare hot path stays untouched.
        self._live_publisher = None
        #: engine-level statistics (parallel-sync metrics etc.) — kept
        #: separate from component stats so sequential/parallel stat
        #: equivalence is preserved; see sync_stats().
        self.engine_stats = StatisticGroup()
        # exit protocol state
        self._primary_components: set = set()
        self._primaries_pending = 0
        # --- checkpointing (repro.ckpt) -------------------------------
        #: the ConfigGraph this simulation was built from (set by
        #: repro.config.build); snapshots embed it so restore can
        #: rebuild the graph and validate identity.
        self.config_graph = None
        #: lineage: set by repro.ckpt.restore() on a resumed simulation,
        #: recorded into run manifests (obs.manifest).
        self.checkpoint_lineage: Optional[Dict[str, Any]] = None
        #: snapshot directories written by run(checkpoint_every=...).
        self.checkpoints_written: List[str] = []

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def _register_component(self, component: Component) -> None:
        if self._setup_done:
            raise SimulationError(
                f"cannot add component {component.name!r} after setup()"
            )
        if component.name in self._components:
            raise SimulationError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise SimulationError(f"no component named {name!r}") from None

    @property
    def components(self) -> Dict[str, Component]:
        return dict(self._components)

    def connect(self, comp_a: Union[Component, Port], port_a: Optional[str] = None,
                comp_b: Optional[Union[Component, Port]] = None,
                port_b: Optional[str] = None, *,
                latency: Union[str, int] = "1ps",
                name: Optional[str] = None) -> Link:
        """Wire ``comp_a.port_a`` to ``comp_b.port_b`` with the given latency.

        Accepts either ``connect(compA, "out", compB, "in", latency=...)``
        or pre-fetched ports ``connect(portA, portB=...)`` — the config
        layer uses the former exclusively.
        """
        if isinstance(comp_a, Port):
            pa = comp_a
            pb = port_a if isinstance(port_a, Port) else comp_b
            if not isinstance(pb, Port):
                raise SimulationError("connect(Port, Port) form requires two ports")
        else:
            if comp_b is None or port_a is None or port_b is None:
                raise SimulationError("connect requires component/port pairs")
            assert isinstance(comp_b, Component)
            pa = comp_a.port(port_a)
            pb = comp_b.port(port_b)
        lat = units.parse_time(latency, default_unit="ps")
        link_name = name or f"{pa.full_name()}--{pb.full_name()}"
        link = Link.connect(link_name, lat, pa, pb, self, self)
        self._links.append(link)
        return link

    def self_link(self, component: Component, port_name: str,
                  latency: Union[str, int] = "1ps") -> Link:
        """Create a self-link (delay line back to the same component)."""
        lat = units.parse_time(latency, default_unit="ps")
        port = component.port(port_name)
        link = Link.self_loop(f"{port.full_name()}--self", lat, port, self)
        self._links.append(link)
        return link

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def _push(self, when: SimTime, priority: int, handler: Handler,
              event: Optional[Event]) -> None:
        if when < self.now:
            raise SimulationError(
                f"event scheduled in the past ({when} < now {self.now})"
            )
        self._queue.push(when, priority, handler, event)

    def schedule_callback(self, delay: SimTime, callback: Callable[[Any], None],
                          payload: Any = None,
                          priority: int = PRIORITY_EVENT) -> None:
        """Run ``callback(payload)`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        event = CallbackEvent(callback, payload)
        self._push(self.now + delay, priority, _invoke_callback, event)

    def register_clock(self, freq: Any, handler: ClockHandler, *,
                       name: str = "clock", priority: int = PRIORITY_CLOCK,
                       phase: SimTime = 0) -> Clock:
        """Register a periodic handler at ``freq`` (string like ``"2GHz"``).

        In arbiter mode (the default) clocks sharing a
        ``(period, priority, phase residue)`` class ride one shared tick
        chain — one queue event per boundary instead of one per clock —
        with handlers fired in registration order (see
        :class:`~repro.core.clock.ClockArbiter`).
        """
        period = units.freq_to_period(freq) if not isinstance(freq, int) else freq
        arbiter = None
        if self.clock_arbiter_enabled and period > 0:
            first = self.now + phase + period
            key = (period, priority, first % period)
            arbiter = self._arbiters.get(key)
            if arbiter is None:
                arbiter = ClockArbiter(
                    self, period, priority,
                    name=f"{period}ps/p{priority}/r{first % period}")
                self._arbiters[key] = arbiter
        clock = Clock(self, name, period, handler, priority=priority,
                      phase=phase, arbiter=arbiter)
        self._clocks.append(clock)
        return clock

    # ------------------------------------------------------------------
    # exit protocol (SST's Exit object)
    # ------------------------------------------------------------------
    def _exit_register(self, component: Component) -> None:
        self._primary_components.add(component.name)

    def _exit_not_ok(self, component: Component) -> None:
        self._primaries_pending += 1

    def _exit_ok(self, component: Component) -> None:
        self._primaries_pending -= 1
        assert self._primaries_pending >= 0

    @property
    def primaries_pending(self) -> int:
        return self._primaries_pending

    def end_simulation(self) -> None:
        """Request an immediate stop (after the current event)."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Finalize the graph and call every component's ``setup()``.

        After all setups ran (components may still consume parameters
        there), every component's :meth:`Params.finalize_check` runs so
        typoed config keys warn instead of silently no-oping.  With
        ``validate_events`` enabled (``build(validate_events=True)`` or
        ``sim.validate_events = True`` before setup), handlers of ports
        whose declaration names an event class are wrapped with
        isinstance checks — diagnostics only, never on by default, so
        the bare hot path is unaffected.
        """
        if self._setup_done:
            return
        self._setup_done = True
        for comp in self._components.values():
            comp.setup()
        for comp in self._components.values():
            comp.params.finalize_check(comp.name)
        if getattr(self, "validate_events", False):
            for comp in self._components.values():
                comp._install_event_checks()

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        for comp in self._components.values():
            comp.finish()

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self, max_time: Optional[Union[str, int]] = None,
            max_events: Optional[int] = None, *,
            finalize: bool = True, ignore_exit: bool = False,
            checkpoint_every: Optional[Union[str, int]] = None,
            checkpoint_dir: Optional[str] = None) -> RunResult:
        """Execute events until exhaustion, exit, or a limit.

        ``max_time`` is inclusive: events *at* the limit still execute.
        Returns a :class:`RunResult`; the stop reason is one of
        ``exhausted`` (no events left), ``exit`` (all primary components
        done), ``max_time``, ``max_events`` or ``stopped``
        (:meth:`end_simulation`).

        ``ignore_exit`` disables the primary-component exit protocol —
        useful to *drain* in-flight events after an exit-terminated run
        (e.g. messages still travelling when the last sender finished).

        With ``checkpoint_every`` (a simulated-time interval, e.g.
        ``"10us"``) the run writes a `repro.ckpt` snapshot into
        ``checkpoint_dir`` at every interval boundary; the run is
        segmented at those boundaries but executes the exact same event
        sequence (snapshot boundaries are invisible to the models).
        Snapshot paths accumulate in :attr:`checkpoints_written`.

        The loop itself lives in :func:`repro.core.kernel.kernel_run`;
        this method only assembles the :class:`~repro.core.kernel.RunContext`.
        """
        if checkpoint_every is not None:
            from ..ckpt import checkpointed_run

            return checkpointed_run(
                self, checkpoint_every, checkpoint_dir,
                max_time=max_time, max_events=max_events,
                finalize=finalize, ignore_exit=ignore_exit)
        from .kernel import RunContext, kernel_run

        ctx = RunContext.for_sim(self, max_time=max_time,
                                 max_events=max_events,
                                 ignore_exit=ignore_exit, finalize=finalize)
        return kernel_run(self, ctx)

    def run_step(self, until: SimTime) -> int:
        """Execute all events with ``time <= until`` (parallel-engine epoch).

        Does not honour max_time/exit protocol — the sync strategy
        coordinates those globally.  Returns the number of events run.
        Delegates to :func:`repro.core.kernel.kernel_step`, the same
        loop every execution backend drives per rank.
        """
        from .kernel import kernel_step

        return kernel_step(self, until)

    # ------------------------------------------------------------------
    # observability dispatch (repro.obs attaches through these)
    # ------------------------------------------------------------------
    def set_trace(self, fn) -> None:
        """Install the legacy per-event observer ``fn(time, handler, event)``.

        Pass ``None`` to remove (the hot loop then pays nothing).  For
        coexisting observers use :meth:`add_trace_observer`; see
        :class:`repro.core.tracelog.EventTraceLog` for a ready-made
        filtering writer.
        """
        self._trace_fn = fn
        self._rebuild_instr()

    def add_trace_observer(self, fn) -> None:
        """Add a per-event observer ``fn(time, handler, event)``.

        Called *before* the handler executes.  Any number may coexist
        (plus the legacy :meth:`set_trace` slot); with none installed
        the hot loop pays a single ``is None`` check.
        """
        if fn not in self._trace_observers:
            self._trace_observers.append(fn)
        self._rebuild_instr()

    def remove_trace_observer(self, fn) -> None:
        try:
            self._trace_observers.remove(fn)
        except ValueError:
            pass
        self._rebuild_instr()

    def add_span_observer(self, fn) -> None:
        """Add a span observer ``fn(time, handler, event, wall_seconds)``.

        Called *after* the handler executes with the measured wall-clock
        duration of that single handler invocation.  The profiler and
        the Chrome-trace exporter attach here.
        """
        if fn not in self._span_observers:
            self._span_observers.append(fn)
        self._rebuild_instr()

    def remove_span_observer(self, fn) -> None:
        try:
            self._span_observers.remove(fn)
        except ValueError:
            pass
        self._rebuild_instr()

    def add_heartbeat(self, fn, *, every_events: int = 10_000) -> None:
        """Call ``fn(sim)`` every ``every_events`` executed events.

        Progress reporting and telemetry sampling hang off this; the
        callback runs inline in the event loop, so it should be cheap
        (rate-limit expensive work on wall-clock inside the callback).
        """
        if every_events < 1:
            raise SimulationError("every_events must be >= 1")
        self._heartbeats[fn] = every_events
        self._rebuild_instr()

    def remove_heartbeat(self, fn) -> None:
        self._heartbeats.pop(fn, None)
        self._rebuild_instr()

    @property
    def observers_installed(self) -> bool:
        """True when any observer makes the loop run instrumented."""
        return self._instr is not None

    def _rebuild_instr(self) -> None:
        """(Re)compile the instrumented event executor.

        Folds the legacy trace slot, added trace observers, span
        observers and heartbeats into one closure so the hot loop only
        ever checks a single attribute.  With nothing installed the
        dispatcher is ``None`` and the loop takes the bare path.
        """
        trace_fns: List[Any] = []
        if self._trace_fn is not None:
            trace_fns.append(self._trace_fn)
        trace_fns.extend(self._trace_observers)
        span_fns = tuple(self._span_observers)
        heartbeats = tuple(self._heartbeats.items())
        causal = self._causal
        if not trace_fns and not span_fns and not heartbeats and causal is None:
            self._instr = None
            return
        traces = tuple(trace_fns)
        hb_counts = [0] * len(heartbeats)
        perf = _wall_time.perf_counter
        sim = self
        causal_note = causal.on_dispatch if causal is not None else None
        causal_cell = causal.cell if causal is not None else None

        def _instr(record) -> None:
            time = record.time
            handler = record.handler
            event = record.event
            if causal_note is not None:
                # Record this node and arm the cause cell: every push the
                # handler makes is stamped with this record's seq.
                causal_note(record)
            if type(event) is _ArbiterTickEvent:
                # Shared clock chain: let the arbiter fire its members
                # with per-member trace/span calls, so observers see
                # every clock tick exactly as under per-clock
                # scheduling.  Heartbeats advance by the member count.
                fired = handler.__self__._dispatch_instrumented(
                    event, traces, span_fns, perf)
                count = fired if fired > 0 else 1
            else:
                for fn in traces:
                    fn(time, handler, event)
                if span_fns:
                    t0 = perf()
                    if handler is not None:
                        handler(event)
                    elapsed = perf() - t0
                    for fn in span_fns:
                        fn(time, handler, event, elapsed)
                elif handler is not None:
                    handler(event)
                count = 1
            if causal_cell is not None:
                # Disarm before heartbeats: events a heartbeat callback
                # schedules are roots, not children of this event.
                causal_cell[0] = None
            for i, (fn, every) in enumerate(heartbeats):
                n = hb_counts[i] + count
                if n >= every:
                    hb_counts[i] = 0
                    fn(sim)
                else:
                    hb_counts[i] = n

        self._instr = _instr

    def next_event_time(self) -> Optional[SimTime]:
        return self._queue.peek_time()

    @property
    def engine_rng(self) -> np.random.Generator:
        """Engine-level random stream, distinct per parallel rank.

        Seeded from :attr:`rank_seed` (a seed-sequence spawn of the base
        seed), so rank streams never collide even though every rank
        shares the base ``seed``.  Use this for engine/infrastructure
        randomness (sampling, jitter, future optimistic sync); model
        randomness belongs on :attr:`Component.rng`, whose
        component-keyed seeding is what keeps sequential and parallel
        statistics identical.
        """
        if self._engine_rng is None:
            self._engine_rng = np.random.default_rng(self.rank_seed)
        return self._engine_rng

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # statistics harvest
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """All statistics, flat-keyed ``<component>.<stat>`` -> Statistic."""
        out: Dict[str, Any] = {}
        for comp in self._components.values():
            for stat_name, stat in comp.stats.all().items():
                out[f"{comp.name}.{stat_name}"] = stat
        return out

    def stat_values(self) -> Dict[str, float]:
        """Headline value of every statistic (for quick assertions)."""
        return {key: stat.value() for key, stat in self.stats().items()}

    def sync_stats(self) -> Dict[str, Any]:
        """Engine-level statistics (``sync.*`` parallel metrics etc.).

        Kept out of :meth:`stats` so sequential/parallel component-stat
        equivalence holds; the parallel engine merges these across ranks
        with the same :meth:`Statistic.merge` machinery.
        """
        return self.engine_stats.all()

    def stat_table(self) -> str:
        """Human-readable statistics dump."""
        rows = []
        for key, stat in sorted(self.stats().items()):
            data = stat.as_dict()
            detail = ", ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in data.items()
                if k not in ("type", "name", "bins") and v is not None
            )
            rows.append(f"{key:<48} {data['type']:<12} {detail}")
        return "\n".join(rows)


def _invoke_callback(event: Event) -> None:
    assert isinstance(event, CallbackEvent)
    event.invoke()
