"""Event-trace logging (the debug facility).

Attaching an :class:`EventTraceLog` to a simulation records one line per
executed event — timestamp, the component+port (or clock/callback) the
handler belongs to, and the event's type — optionally filtered by
component-name glob.  This is the "what is my model actually doing"
tool (SST's ``--debug`` output plays the same role), and the CLI exposes
it as ``python -m repro run ... --trace events.log``.

The observer costs nothing when not installed: the engine's hot loop
checks a single ``is not None``.
"""

from __future__ import annotations

import fnmatch
import io
from pathlib import Path
from typing import IO, List, Optional, Tuple, Union

from .simulation import Simulation
from .units import SimTime


def describe_handler(handler) -> str:
    """Human-readable identity of an event handler.

    Bound methods resolve to their owner: a Port's ``deliver`` becomes
    ``component.port``, a Clock's ``_tick`` becomes ``clock:<name>``,
    a component method becomes ``component.method``.
    """
    if handler is None:
        return "<none>"
    owner = getattr(handler, "__self__", None)
    name = getattr(handler, "__name__", repr(handler))
    if owner is None:
        return name
    type_name = type(owner).__name__
    if type_name == "Port":
        return owner.full_name()
    if type_name == "Clock":
        return f"clock:{owner.name}"
    if type_name == "ClockArbiter":
        return f"arbiter:{owner.name}"
    owner_name = getattr(owner, "name", type_name)
    return f"{owner_name}.{name}"


class EventTraceLog:
    """A filtering per-event trace writer.

    Parameters
    ----------
    sim:
        The simulation to observe (installs itself via ``set_trace``).
    sink:
        A path (opened for writing) or an open text stream.  ``None``
        keeps records in memory only (``records``).
    component_filter:
        Glob matched against the handler description; only matching
        events are recorded.
    max_records:
        Stop recording (but keep counting) beyond this many lines —
        traces of busy simulations get large fast.  ``matched_events``
        keeps counting every filter hit while ``records_written`` stops
        at the cap; a truncated file sink gets a trailing
        ``... truncated (N matched, M recorded)`` marker on detach.
    """

    def __init__(self, sim: Simulation, sink: Union[str, Path, IO[str], None] = None,
                 *, component_filter: str = "*", max_records: int = 1_000_000):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.sim = sim
        self.component_filter = component_filter
        self.max_records = max_records
        self.records: List[Tuple[SimTime, str, str]] = []
        self.total_events = 0
        #: events that passed the component filter (counted past the cap)
        self.matched_events = 0
        #: records actually written/stored (capped at ``max_records``)
        self.records_written = 0
        self._owns_sink = False
        self._attached = False
        if sink is None:
            self._sink: Optional[IO[str]] = None
        elif isinstance(sink, (str, Path)):
            self._sink = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
        sim.add_trace_observer(self._observe)
        self._attached = True

    @property
    def truncated(self) -> bool:
        return self.matched_events > self.records_written

    def _observe(self, time: SimTime, handler, event) -> None:
        self.total_events += 1
        target = describe_handler(handler)
        if not fnmatch.fnmatch(target, self.component_filter):
            return
        self.matched_events += 1
        if self.records_written >= self.max_records:
            return
        self.records_written += 1
        event_name = type(event).__name__ if event is not None else "-"
        if self._sink is not None:
            self._sink.write(f"{time:>14} {target:<40} {event_name}\n")
        else:
            self.records.append((time, target, event_name))

    def detach(self) -> None:
        """Stop observing and flush/close an owned sink."""
        was_attached = self._attached
        if was_attached:
            self.sim.remove_trace_observer(self._observe)
            self._attached = False
        if self._sink is not None:
            if was_attached and self.truncated:
                self._sink.write(
                    f"... truncated ({self.matched_events} matched, "
                    f"{self.records_written} recorded)\n"
                )
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "EventTraceLog":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()
