"""Machine builders: miniapp ranks on a simulated interconnect.

``build_app_machine`` assembles the standard experiment platform — a
3-D torus (Cray XT5-like) of routers, one NIC per rank with a
configurable injection bandwidth, and one miniapp rank component behind
each NIC — as a :class:`~repro.config.graph.ConfigGraph`, ready for
:func:`repro.config.build` or :func:`repro.config.build_parallel`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence, Tuple

from ..config.graph import ConfigGraph
from ..config.topology import Topology, build_fat_tree, build_torus
from .base import grid_dims_3d


def torus_dims_for(n_routers: int) -> Tuple[int, int, int]:
    """Near-cubic 3-D router-grid dimensions covering ``n_routers``."""
    dims = grid_dims_3d(n_routers)
    if dims[0] * dims[1] * dims[2] != n_routers:
        raise ValueError(f"{n_routers} routers do not factor into a 3-D grid")
    return dims


def build_app_machine(
    app_type: str,
    n_ranks: int,
    app_params: Optional[Dict[str, Any]] = None,
    *,
    topology: str = "torus",
    locals_per_router: int = 2,
    injection_bandwidth: str = "3.2GB/s",
    link_bandwidth: str = "4.8GB/s",
    link_latency: str = "20ns",
    nic_params: Optional[Dict[str, Any]] = None,
    iterations: int = 5,
    name: str = "app-machine",
) -> ConfigGraph:
    """Declare a full (app ranks + NICs + fabric) machine.

    ``app_type`` is a registered miniapp component type
    (e.g. ``"miniapps.CTH"``).  Rank *i* becomes component ``rank{i}``
    behind ``nic{i}`` on fabric endpoint *i*.

    The torus is sized to ``ceil(n_ranks / locals_per_router)`` routers
    in a near-cubic 3-D grid (padded endpoints stay unused).
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    graph = ConfigGraph(name)
    n_routers = math.ceil(n_ranks / locals_per_router)
    if topology == "torus":
        # Pad the router count until it factors into a reasonable 3-D grid.
        dims = grid_dims_3d(n_routers)
        topo = build_torus(graph, dims, locals_per_router=locals_per_router,
                           link_latency=link_latency,
                           link_bandwidth=link_bandwidth)
    elif topology == "fattree":
        spines = max(2, int(math.ceil(math.sqrt(n_routers))))
        topo = build_fat_tree(graph, leaves=n_routers,
                              down_ports=locals_per_router, spines=spines,
                              link_latency=link_latency,
                              link_bandwidth=link_bandwidth)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    if topo.num_endpoints < n_ranks:
        raise AssertionError("topology too small for rank count")

    nic_defaults: Dict[str, Any] = {
        "injection_bandwidth": injection_bandwidth,
    }
    nic_defaults.update(nic_params or {})
    base_app: Dict[str, Any] = {
        "n_ranks": n_ranks,
        "iterations": iterations,
    }
    base_app.update(app_params or {})
    for i in range(n_ranks):
        graph.component(f"nic{i}", "network.Nic", dict(nic_defaults))
        rank_params = dict(base_app)
        rank_params["rank"] = i
        graph.component(f"rank{i}", app_type, rank_params)
        graph.link(f"rank{i}", "nic", f"nic{i}", "cpu", latency="5ns")
        topo.attach(graph, i, f"nic{i}", "net", latency="10ns")
    return graph


def app_runtime_stats(sim, n_ranks: int) -> Dict[str, float]:
    """Aggregate the per-rank statistics of a finished app run."""
    values = sim.stat_values()
    runtimes = [values[f"rank{i}.runtime_ps"] for i in range(n_ranks)]
    comm = [values[f"rank{i}.comm_ps"] for i in range(n_ranks)]
    compute = [values[f"rank{i}.compute_ps"] for i in range(n_ranks)]
    messages = sum(values[f"rank{i}.messages_sent"] for i in range(n_ranks))
    return {
        "runtime_ps": max(runtimes),
        "mean_comm_ps": sum(comm) / n_ranks,
        "mean_compute_ps": sum(compute) / n_ranks,
        "messages": messages,
        "messages_per_rank": messages / n_ranks,
    }
