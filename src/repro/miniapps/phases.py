"""Single-node phase models for the miniapp-validation studies.

Figs. 2-4 of the paper are *on-node* experiments: they vary cores per
node, memory speed and cache configuration and compare how Charon and
miniFE respond, phase by phase (FE assembly vs Krylov solve).  These
functions reproduce those experiments on the model library without the
DES — each phase's runtime comes from the abstract core model plus the
shared-bandwidth contention model, and cache behaviour comes from
running synthetic traces through the functional hierarchy.

The central contrast being validated: the *solver* phases are
bandwidth-bound (strongly affected by cores-per-node contention and
memory speed), the *FEA* phases are compute-bound (barely affected) —
and miniFE's phases respond like Charon's, except for L2/L3 cache
behaviour in FEA where they diverge (the paper's "fail" diagnostic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.units import SimTime
from ..memory.bus import BandwidthShare
from ..memory.cache import CacheHierarchy, LevelSpec
from ..memory.dram import DRAMModel, tech as lookup_tech
from ..processor.core import CoreConfig, CoreTimingModel
from ..processor.mix import WorkloadSpec, workload as lookup_workload
from ..processor.trace import TraceSpec, measure_hit_rates

#: The phase pairs of the validation study: app -> (FEA phase, solver phase)
VALIDATION_PAIRS: Dict[str, Tuple[str, str]] = {
    "minife": ("minife_fea", "minife_solver"),
    "charon": ("charon_fea", "charon_solver"),
}


@dataclass
class PhaseResult:
    """Runtime of one phase at one node operating point."""

    workload: str
    n_cores: int
    memory_technology: str
    runtime_ps: SimTime

    @property
    def runtime_s(self) -> float:
        return self.runtime_ps / 1e12


def phase_runtime(workload_name: str, *, n_cores: int = 1,
                  memory_technology: str = "DDR3-1333",
                  channels: int = 1,
                  instructions: int = 2_000_000,
                  issue_width: int = 4, freq_hz: float = 2.4e9,
                  overlap_penalty: float = 0.3) -> PhaseResult:
    """Per-core runtime of one phase with ``n_cores`` sharing the node.

    All cores run the same phase (the SPMD reality of an MPI-per-core
    application); each gets ``1/n_cores`` of the node's memory
    bandwidth (``channels`` DRAM channels of ``memory_technology``) —
    the cores-per-node experiment uses a 4-channel Magny-Cours-class
    node so contention develops gradually across 1..12 cores.
    """
    if n_cores < 1:
        raise ValueError("n_cores must be >= 1")
    spec = lookup_workload(workload_name)
    model = CoreTimingModel(CoreConfig(issue_width=issue_width,
                                       freq_hz=freq_hz), spec)
    dram = DRAMModel(memory_technology, channels=channels)
    runtime = model.standalone_runtime_ps(instructions, dram,
                                          n_sharers=n_cores,
                                          overlap_penalty=overlap_penalty)
    return PhaseResult(workload=workload_name, n_cores=n_cores,
                       memory_technology=memory_technology,
                       runtime_ps=runtime)


def cores_per_node_efficiency(workload_name: str, core_counts: List[int],
                              **kwargs) -> Dict[int, float]:
    """Fig. 2 quantity: per-core efficiency vs cores used on the node.

    Efficiency at n cores = t(1 core) / t(n cores): 1.0 when adding
    cores costs nothing, falling as bandwidth contention bites.
    """
    base = phase_runtime(workload_name, n_cores=1, **kwargs).runtime_ps
    return {
        n: base / phase_runtime(workload_name, n_cores=n, **kwargs).runtime_ps
        for n in core_counts
    }


def memory_speed_response(workload_name: str, technologies: List[str],
                          reference: Optional[str] = None,
                          **kwargs) -> Dict[str, float]:
    """Fig. 3 quantity: runtime relative to the fastest memory.

    Returns runtime(tech) / runtime(reference); 1.0 = unaffected by the
    slower memory (the FEA signature), >1 = slowed (the solver
    signature).
    """
    if not technologies:
        raise ValueError("need at least one technology")
    reference = reference or technologies[-1]
    ref_time = phase_runtime(workload_name, memory_technology=reference,
                             **kwargs).runtime_ps
    return {
        t: phase_runtime(workload_name, memory_technology=t,
                         **kwargs).runtime_ps / ref_time
        for t in technologies
    }


def proportional_difference(a: Dict, b: Dict) -> Dict:
    """Paper Eq. (4): elementwise |a-b|/b over matching keys."""
    out = {}
    for key in a:
        if key in b and b[key]:
            out[key] = abs(a[key] - b[key]) / abs(b[key])
    return out


STANDARD_HIERARCHY = [
    LevelSpec("L1", 32 * 1024, ways=8, latency_ps=1_500),
    LevelSpec("L2", 256 * 1024, ways=8, latency_ps=6_000),
    LevelSpec("L3", 8 * 1024 * 1024, ways=16, latency_ps=18_000),
]

#: The Fig. 4 measurement hierarchy: the Nehalem-class hierarchy above
#: scaled down 64x (the standard scaled-cache technique — see
#: TraceSpec.for_workload) so the rarely-touched L3-resident working set
#: warms up within an affordable trace length.
CACHE_SCALE = 64
SCALED_HIERARCHY = [
    LevelSpec("L1", 32 * 1024 // CACHE_SCALE, ways=8, latency_ps=1_500),
    LevelSpec("L2", 256 * 1024 // CACHE_SCALE, ways=8, latency_ps=6_000),
    LevelSpec("L3", 8 * 1024 * 1024 // CACHE_SCALE, ways=16, latency_ps=18_000),
]


def cache_hit_rates(workload_name: str, *, n_refs: int = 120_000,
                    warmup: int = 120_000,
                    levels: Optional[List[LevelSpec]] = None,
                    seed: int = 2024) -> Dict[str, float]:
    """Fig. 4 quantity: per-level hit rates of a phase's reference stream.

    Synthesises an address trace matching the workload's locality
    profile and measures it against a (64x scaled) Nehalem-class
    three-level hierarchy.
    """
    spec = lookup_workload(workload_name)
    hierarchy = CacheHierarchy(list(levels or SCALED_HIERARCHY))
    trace = TraceSpec.for_workload(spec, seed=seed, scale=CACHE_SCALE)
    return measure_hit_rates(trace, hierarchy, n=n_refs, warmup=warmup)
