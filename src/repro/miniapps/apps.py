"""The Mantevo-style skeleton application library.

Each class reproduces the *communication signature* the paper
attributes to the corresponding production/mini application, riding on
the BSP engine of :mod:`repro.miniapps.base`:

============  ==========================================================
App           Signature (and the Fig. 9 / Fig. 5 behaviour it drives)
============  ==========================================================
CTH           few, very large halo messages that must complete before
              the next step -> strongly injection-bandwidth sensitive
SAGE          similar large-message halo + a small collective
xNOBEL        medium messages fully overlapped with compute -> flat
              until comm time exceeds compute time, then falls off
Charon        many small messages + several latency-bound all-reduces
              per iteration -> essentially bandwidth-insensitive
HPCCG         CG iteration: one halo exchange (matvec) + two 8-byte
              all-reduces (dot products)
MiniFE        an FEA compute phase followed by CG solve iterations
Lulesh        3-D halo + compute hydro step
CGSolver /    the Fig. 5 solver-scaling trio: unpreconditioned CG,
BiCGStabILU / BiCGSTAB+ILU(0) (2 matvecs, 4 dots per iteration) and
MLSolver      BiCGSTAB+ML (adds coarse-level traffic: >40% more
              messages per core than the non-multilevel solvers)
============  ==========================================================

Defaults are per-class (``DEFAULTS``); every one can be overridden via
component parameters.  Compute-phase durations default to values derived
from the statistical workload library on a reference node
(:func:`repro.miniapps.base.compute_time_ps`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.registry import register
from ..core.units import SimTime
from .base import (AllReduce, AppRank, Compute, Exchange, compute_time_ps,
                   grid_dims_3d, halo_neighbors_3d)


class HaloApp(AppRank):
    """Generic bulk-synchronous halo-exchange application.

    Parameters beyond AppRank's (class ``DEFAULTS`` provide per-app
    values): ``msg_size`` (halo message bytes), ``msgs_per_neighbor``,
    ``compute_ps`` (per iteration), ``allreduces`` (count per
    iteration), ``allreduce_size``, ``overlap_fraction`` (0 = blocking
    halo, 1 = fully overlapped with compute), ``periodic`` (domain
    wraparound).
    """

    DEFAULTS: Dict[str, Any] = {
        "msg_size": "256KB",
        "msgs_per_neighbor": 1,
        "compute_ps": "500us",
        "allreduces": 0,
        "allreduce_size": 8,
        "overlap_fraction": 0.0,
        "periodic": True,
        #: "weak" keeps per-rank work constant; "strong" divides the
        #: total problem across ranks: compute shrinks ~1/n and halo
        #: messages shrink with the surface-to-volume ratio (n^-2/3)
        #: relative to ``ref_ranks``.  Strong scaling is what produces
        #: the xNOBEL overlap-loss falloff at high core counts (Fig. 9).
        "scaling": "weak",
        "ref_ranks": 16,
    }

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params_with_defaults(self.DEFAULTS)
        self.msg_size = p.find_size_bytes("msg_size")
        self.msgs_per_neighbor = p.find_int("msgs_per_neighbor")
        self.compute_ps = p.find_time("compute_ps")
        self.allreduces = p.find_int("allreduces")
        self.allreduce_size = p.find_int("allreduce_size")
        self.overlap_fraction = p.find_float("overlap_fraction")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError(f"{name}: overlap_fraction must be in [0,1]")
        scaling = p.find_str("scaling")
        if scaling not in ("weak", "strong"):
            raise ValueError(f"{name}: unknown scaling {scaling!r}")
        if scaling == "strong":
            ref = p.find_int("ref_ranks")
            factor = ref / self.n_ranks
            self.compute_ps = max(1, int(round(self.compute_ps * factor)))
            self.msg_size = max(64, int(round(self.msg_size
                                              * factor ** (2.0 / 3.0))))
        periodic = p.find_bool("periodic")
        self.dims = grid_dims_3d(self.n_ranks)
        self.neighbors = halo_neighbors_3d(self.rank, self.dims,
                                           periodic=periodic)

    def program(self):
        for it in range(self.iterations):
            sends: List[Tuple[int, int]] = [
                (nbr, self.msg_size)
                for nbr in self.neighbors
                for _ in range(self.msgs_per_neighbor)
            ]
            expect = len(sends)
            overlap = int(round(self.overlap_fraction * self.compute_ps))
            if sends:
                yield Exchange(sends, expect, key=f"halo{it}",
                               overlap_ps=overlap)
            rest = self.compute_ps - overlap
            if rest > 0:
                yield Compute(rest)
            for a in range(self.allreduces):
                yield AllReduce(self.allreduce_size, key=f"ar{it}_{a}")
            self.iteration_done()


@register("miniapps.CTH")
class CTH(HaloApp):
    """Shock physics: large halo messages, no collectives."""

    DEFAULTS = dict(HaloApp.DEFAULTS, msg_size="1MB", compute_ps="9ms",
                    allreduces=0)


@register("miniapps.SAGE")
class SAGE(HaloApp):
    """Adaptive-grid hydro: large halos + one small collective per step."""

    DEFAULTS = dict(HaloApp.DEFAULTS, msg_size="768KB", compute_ps="8ms",
                    allreduces=1)


@register("miniapps.XNOBEL")
class XNOBEL(HaloApp):
    """Hydrocode with full compute/communication overlap."""

    DEFAULTS = dict(HaloApp.DEFAULTS, msg_size="320KB", compute_ps="4ms",
                    overlap_fraction=1.0, allreduces=0,
                    scaling="strong", ref_ranks=16)


@register("miniapps.Charon")
class Charon(HaloApp):
    """Device physics: many small messages, several dots per iteration."""

    DEFAULTS = dict(HaloApp.DEFAULTS, msg_size="1KB", msgs_per_neighbor=6,
                    compute_ps="1200us", allreduces=4)


@register("miniapps.HPCCG")
class HPCCG(HaloApp):
    """CG iteration: halo for the sparse matvec + two dot products."""

    DEFAULTS = dict(HaloApp.DEFAULTS, msg_size="48KB", compute_ps="400us",
                    allreduces=2)


@register("miniapps.Lulesh")
class Lulesh(HaloApp):
    """Hydro step: 3-D halo + compute; one timestep collective."""

    DEFAULTS = dict(HaloApp.DEFAULTS, msg_size="192KB", compute_ps="650us",
                    allreduces=1)


@register("miniapps.MiniFE")
class MiniFE(AppRank):
    """miniFE: an FEA assembly phase, then CG solve iterations.

    Parameters: ``fea_compute_ps``, ``solver_compute_ps`` (per CG
    iteration), ``msg_size``, ``solver_iterations`` (CG iterations per
    outer iteration).  The two phases have very different machine
    response (compute-bound vs bandwidth-bound; Figs. 2-4), which is
    why they are kept separate.
    """

    DEFAULTS: Dict[str, Any] = {
        "fea_compute_ps": "2ms",
        "solver_compute_ps": "350us",
        "msg_size": "48KB",
        "solver_iterations": 5,
    }

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params_with_defaults(self.DEFAULTS)
        self.fea_compute_ps = p.find_time("fea_compute_ps")
        self.solver_compute_ps = p.find_time("solver_compute_ps")
        self.msg_size = p.find_size_bytes("msg_size")
        self.solver_iterations = p.find_int("solver_iterations")
        self.dims = grid_dims_3d(self.n_ranks)
        self.neighbors = halo_neighbors_3d(self.rank, self.dims)
        self.s_fea_ps = self.stats.counter("fea_ps")
        self.s_solver_ps = self.stats.counter("solver_ps")

    def program(self):
        for it in range(self.iterations):
            fea_start = self.now
            yield Compute(self.fea_compute_ps)
            self.s_fea_ps.add(self.now - fea_start)
            solver_start = self.now
            for k in range(self.solver_iterations):
                sends = [(nbr, self.msg_size) for nbr in self.neighbors]
                if sends:
                    yield Exchange(sends, len(sends), key=f"mv{it}_{k}")
                yield Compute(self.solver_compute_ps)
                yield AllReduce(8, key=f"dot{it}_{k}a")
                yield AllReduce(8, key=f"dot{it}_{k}b")
            self.s_solver_ps.add(self.now - solver_start)
            self.iteration_done()


class SolverApp(AppRank):
    """Base for the Fig. 5 weak-scaling solver trio.

    One iteration = ``matvecs`` halo exchanges + ``dots`` all-reduces +
    compute, plus (for ML) coarse-level traffic: ``coarse_levels``
    rounds of small halo messages and one extra all-reduce each —
    the ">40% more messages per core" signature of the multilevel
    preconditioner.
    """

    DEFAULTS: Dict[str, Any] = {
        "msg_size": "48KB",
        "compute_ps": "400us",
        "matvecs": 1,
        "dots": 2,
        "coarse_levels": 0,
        "coarse_msg_size": "4KB",
    }

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params_with_defaults(self.DEFAULTS)
        self.msg_size = p.find_size_bytes("msg_size")
        self.compute_ps = p.find_time("compute_ps")
        self.matvecs = p.find_int("matvecs")
        self.dots = p.find_int("dots")
        self.coarse_levels = p.find_int("coarse_levels")
        self.coarse_msg_size = p.find_size_bytes("coarse_msg_size")
        self.dims = grid_dims_3d(self.n_ranks)
        self.neighbors = halo_neighbors_3d(self.rank, self.dims)

    def program(self):
        for it in range(self.iterations):
            for m in range(self.matvecs):
                sends = [(nbr, self.msg_size) for nbr in self.neighbors]
                if sends:
                    yield Exchange(sends, len(sends), key=f"mv{it}_{m}")
            yield Compute(self.compute_ps)
            for d in range(self.dots):
                yield AllReduce(8, key=f"dot{it}_{d}")
            for lvl in range(self.coarse_levels):
                sends = [(nbr, self.coarse_msg_size) for nbr in self.neighbors]
                if sends:
                    yield Exchange(sends, len(sends), key=f"ml{it}_{lvl}")
                yield AllReduce(8, key=f"mlar{it}_{lvl}")
            self.iteration_done()


@register("miniapps.CGSolver")
class CGSolver(SolverApp):
    """miniFE's unpreconditioned CG: 1 matvec, 2 dots."""

    DEFAULTS = dict(SolverApp.DEFAULTS, matvecs=1, dots=2, coarse_levels=0)


@register("miniapps.BiCGStabILU")
class BiCGStabILU(SolverApp):
    """Charon/Aztec BiCGSTAB + ILU(0): 2 matvecs + 2 triangular sweeps
    (modelled as 2 extra halo exchanges), 4 dots."""

    DEFAULTS = dict(SolverApp.DEFAULTS, matvecs=4, dots=4, coarse_levels=0,
                    compute_ps="650us")


@register("miniapps.MLSolver")
class MLSolver(SolverApp):
    """Charon/Aztec BiCGSTAB + ML multigrid preconditioner: the BiCGSTAB
    skeleton plus coarse-grid traffic every iteration."""

    DEFAULTS = dict(SolverApp.DEFAULTS, matvecs=4, dots=4, coarse_levels=3,
                    compute_ps="800us")


@register("miniapps.MiniMD")
class MiniMD(AppRank):
    """Molecular dynamics force computation (Table 1: miniMD).

    Per timestep: exchange ghost-atom positions with spatial neighbours,
    compute short-range forces, and every ``thermo_every`` steps reduce
    the system energy (the LAMMPS-style thermo output).  Position
    messages are medium-sized and latency matters less than for the
    solvers; the signature is the periodic small collective.
    """

    DEFAULTS: Dict[str, Any] = {
        "msg_size": "96KB",
        "compute_ps": "1200us",
        "thermo_every": 2,
    }

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params_with_defaults(self.DEFAULTS)
        self.msg_size = p.find_size_bytes("msg_size")
        self.compute_ps = p.find_time("compute_ps")
        self.thermo_every = p.find_int("thermo_every")
        self.dims = grid_dims_3d(self.n_ranks)
        self.neighbors = halo_neighbors_3d(self.rank, self.dims)

    def program(self):
        from .base import AllReduce, Compute, Exchange

        for it in range(self.iterations):
            sends = [(nbr, self.msg_size) for nbr in self.neighbors]
            if sends:
                yield Exchange(sends, len(sends), key=f"ghost{it}")
            yield Compute(self.compute_ps)
            if self.thermo_every and (it + 1) % self.thermo_every == 0:
                yield AllReduce(16, key=f"thermo{it}")
            self.iteration_done()


@register("miniapps.MiniGhost")
class MiniGhost(HaloApp):
    """FDM/FVM halo exchange (Table 1: miniGhost, BSPMA mode).

    The purest halo motif: moderate faces exchanged every step with a
    reduction for the error check — built to study exactly the exchange
    the other apps embed.
    """

    DEFAULTS = dict(HaloApp.DEFAULTS, msg_size="256KB", compute_ps="1500us",
                    allreduces=1)


@register("miniapps.MiniXyce")
class MiniXyce(AppRank):
    """Circuit RC-ladder transient simulation (Table 1: miniXyce).

    The circuit graph is a 1-D ladder, so each rank talks to exactly two
    neighbours with *tiny* messages (boundary node voltages), plus the
    GMRES dots.  Latency-bound like Charon but with an even narrower
    stencil.
    """

    DEFAULTS: Dict[str, Any] = {
        "msg_size": 512,
        "compute_ps": "250us",
        "dots": 2,
    }

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params_with_defaults(self.DEFAULTS)
        self.msg_size = p.find_size_bytes("msg_size")
        self.compute_ps = p.find_time("compute_ps")
        self.dots = p.find_int("dots")
        n = self.n_ranks
        self.neighbors = []
        if n > 1:
            left, right = (self.rank - 1) % n, (self.rank + 1) % n
            self.neighbors = sorted({left, right} - {self.rank})

    def program(self):
        from .base import AllReduce, Compute, Exchange

        for it in range(self.iterations):
            sends = [(nbr, self.msg_size) for nbr in self.neighbors]
            if sends:
                yield Exchange(sends, len(sends), key=f"ladder{it}")
            yield Compute(self.compute_ps)
            for d in range(self.dots):
                yield AllReduce(8, key=f"gmres{it}_{d}")
            self.iteration_done()


@register("miniapps.PhdMesh")
class PhdMesh(AppRank):
    """Explicit FEM with contact detection (Table 1: phdMesh).

    Contact search is the interesting part: after the regular halo, all
    ranks exchange coarse bounding boxes (an all-to-all of small
    records), then a *data-dependent* subset of pairs exchanges surface
    patches — modelled as a per-iteration random partner set drawn from
    the rank's seeded stream.
    """

    DEFAULTS: Dict[str, Any] = {
        "msg_size": "128KB",
        "bbox_size": 256,
        "contact_size": "32KB",
        "contact_fraction": 0.25,
        "compute_ps": "1800us",
    }

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params_with_defaults(self.DEFAULTS)
        self.msg_size = p.find_size_bytes("msg_size")
        self.bbox_size = p.find_int("bbox_size")
        self.contact_size = p.find_size_bytes("contact_size")
        self.contact_fraction = p.find_float("contact_fraction")
        self.compute_ps = p.find_time("compute_ps")
        self.dims = grid_dims_3d(self.n_ranks)
        self.neighbors = halo_neighbors_3d(self.rank, self.dims)

    def _contact_partners(self, iteration: int):
        """Deterministic 'random' contact pairs, symmetric by design:
        rank pair (i, j) is in contact when the seeded hash of the
        unordered pair and iteration crosses the contact threshold."""
        import zlib

        partners = []
        for other in range(self.n_ranks):
            if other == self.rank:
                continue
            lo, hi = min(self.rank, other), max(self.rank, other)
            token = f"{lo}:{hi}:{iteration}".encode()
            draw = (zlib.crc32(token) % 1000) / 1000.0
            if draw < self.contact_fraction:
                partners.append(other)
        return partners

    def program(self):
        from .base import AllToAll, Compute, Exchange

        for it in range(self.iterations):
            sends = [(nbr, self.msg_size) for nbr in self.neighbors]
            if sends:
                yield Exchange(sends, len(sends), key=f"halo{it}")
            yield Compute(self.compute_ps)
            if self.n_ranks > 1:
                yield AllToAll(self.bbox_size, key=f"bbox{it}")
                contacts = self._contact_partners(it)
                if contacts:
                    sends = [(c, self.contact_size) for c in contacts]
                    yield Exchange(sends, len(sends), key=f"contact{it}")
            self.iteration_done()


@register("miniapps.MiniDSMC")
class MiniDSMC(AppRank):
    """Particle-based low-density fluid simulation (Table 1: miniDSMC).

    Direct-simulation Monte Carlo: each step a random fraction of
    particles crosses into neighbouring cells, so message sizes vary per
    step and per rank (seeded per-rank streams keep runs reproducible);
    a barrier closes every step before the collision phase.
    """

    DEFAULTS: Dict[str, Any] = {
        "particles_per_rank": 100_000,
        "bytes_per_particle": 40,
        "migration_fraction": 0.05,
        "compute_ps": "900us",
    }

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params_with_defaults(self.DEFAULTS)
        self.particles = p.find_int("particles_per_rank")
        self.bytes_per_particle = p.find_int("bytes_per_particle")
        self.migration_fraction = p.find_float("migration_fraction")
        self.compute_ps = p.find_time("compute_ps")
        self.dims = grid_dims_3d(self.n_ranks)
        self.neighbors = halo_neighbors_3d(self.rank, self.dims)

    def program(self):
        from .base import Barrier, Compute, Exchange

        for it in range(self.iterations):
            yield Compute(self.compute_ps)
            if self.neighbors:
                migrating = self.particles * self.migration_fraction
                sends = []
                for nbr in self.neighbors:
                    share = float(self.rng.random()) * 2.0 / len(self.neighbors)
                    count = max(1, int(migrating * share))
                    sends.append((nbr, count * self.bytes_per_particle))
                yield Exchange(sends, len(self.neighbors), key=f"mig{it}")
            if self.n_ranks > 1:
                yield Barrier(key=f"step{it}")
            self.iteration_done()
