"""Skeleton-application framework: BSP programs on the simulated machine.

A miniapp rank is a component sitting behind a NIC that executes a
*program*: a Python generator yielding phases.  The engine drives the
generator through the DES — compute phases advance simulated time,
exchange phases send messages and block until the expected messages
arrive.  This is exactly the "skeleton app" proxy class of the paper's
Fig. 1 (accurate inter-processor communication with synthetic
computation), which is the right fidelity for the network studies
(Figs. 5 and 9): the machine's response to the communication pattern is
what is being measured.

Programs are SPMD: every rank runs the same generator, parameterised by
its rank id.  Three phase types:

* :class:`Compute` — occupy the core for a duration (optionally derived
  from a workload spec via :func:`compute_time_ps`).
* :class:`Exchange` — send a list of messages, then wait until
  ``expect`` messages with the same key have arrived.  With
  ``overlap_ps`` set, computation proceeds concurrently and the phase
  ends at max(compute, communication) — modelling nonblocking MPI with
  compute/communication overlap (the xNOBEL signature).
* :class:`AllReduce` — recursive-doubling reduction across all ranks
  (log2(n) rounds of pairwise small messages), the latency-bound
  collective at the heart of Krylov dot products.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from ..core.component import Component, port, stat, state
from ..core.units import SimTime
from ..network.message import NetMessage
from ..processor.core import CoreConfig, CoreTimingModel
from ..processor.mix import WorkloadSpec, workload as lookup_workload
from ..memory.dram import DRAMModel


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------

@dataclass
class Compute:
    """Occupy the core for ``duration_ps``."""

    duration_ps: SimTime


@dataclass
class Exchange:
    """Send ``sends`` then wait for ``expect`` messages keyed ``key``.

    ``sends`` is a list of ``(dest_rank, size_bytes)``.  ``key`` must be
    unique per (phase, iteration) across the program so early arrivals
    from ranks that are ahead are buffered correctly.  ``overlap_ps``
    lets computation run concurrently with the exchange.
    """

    sends: List[Tuple[int, int]]
    expect: int
    key: str
    overlap_ps: SimTime = 0


@dataclass
class AllReduce:
    """Recursive-doubling all-reduce of ``size`` bytes, keyed ``key``."""

    size: int
    key: str


@dataclass
class Broadcast:
    """Binomial-tree broadcast of ``size`` bytes from ``root``."""

    size: int
    key: str
    root: int = 0


@dataclass
class Reduce:
    """Binomial-tree reduction of ``size`` bytes to ``root``."""

    size: int
    key: str
    root: int = 0


@dataclass
class Barrier:
    """Synchronisation barrier (an all-reduce of one byte)."""

    key: str


@dataclass
class AllToAll:
    """Personalised all-to-all: ``size`` bytes to every other rank."""

    size: int
    key: str


Phase = object  # Compute | Exchange | AllReduce | Broadcast | Reduce | ...
Program = Generator[Phase, None, None]


def compute_time_ps(workload_name: str, instructions: int,
                    issue_width: int = 2, freq_hz: float = 2.0e9,
                    memory_technology: str = "DDR3-1333",
                    n_sharers: int = 1) -> SimTime:
    """Compute-phase duration from a statistical workload on a node model.

    Uses the abstract core's partial-overlap roofline against the named
    memory technology, with ``n_sharers`` cores splitting the node's
    bandwidth (the cores-per-node effect).
    """
    spec = lookup_workload(workload_name)
    model = CoreTimingModel(
        CoreConfig(issue_width=issue_width, freq_hz=freq_hz), spec
    )
    dram = DRAMModel(memory_technology)
    return model.standalone_runtime_ps(instructions, dram, n_sharers=n_sharers)


# ----------------------------------------------------------------------
# the rank engine
# ----------------------------------------------------------------------

class AppRank(Component):
    """One MPI-style rank of a skeleton application.

    Subclasses implement :meth:`program`.  Port ``nic`` connects to a
    :class:`~repro.network.nic.Nic`.

    Common parameters: ``rank``, ``n_ranks``, ``iterations``.

    Statistics: ``iterations`` completed, ``compute_ps``, ``comm_ps``
    (time blocked in exchanges/collectives), ``messages_sent``,
    ``bytes_sent``, ``runtime_ps``.
    """

    nic = port("messages out to / in from the local NIC",
               event=NetMessage, handler="on_message")

    # The live program generator is not picklable: it is excluded from
    # checkpoints and rebuilt by replaying ``_phases_done`` phases.
    _program = state(None, save=False, reconstruct="_rebuild_program",
                     doc="live program generator")
    _phases_done = state(0, gauge=True,
                         doc="phases consumed from the program generator "
                             "— the replay cursor for checkpoint restore")
    _inbox = state(dict, doc="message key -> arrivals not yet awaited")
    _waiting_key = state(None, doc="message key the rank is blocked on")
    _waiting_quota = state(0, doc="arrivals needed to unblock")
    _comm_started = state(0, doc="start time of the blocking phase")
    _overlap_until = state(0, doc="overlapped compute finishes here")
    _rounds = state(None, doc="remaining collective rounds in progress")
    _round_key = state(None, doc="key prefix of the running collective")
    _round_size = state(0, doc="message size of the running collective")

    s_noise = stat.counter("noise_ps", doc="injected OS-noise detour time")
    s_iterations = stat.counter(doc="top-level iterations completed")
    s_compute = stat.counter("compute_ps", doc="compute-phase time")
    s_comm = stat.counter("comm_ps", doc="time blocked in exchanges")
    s_messages = stat.counter("messages_sent", doc="messages injected")
    s_bytes = stat.counter("bytes_sent", doc="payload bytes injected")
    s_runtime = stat.counter("runtime_ps", doc="time to finish the program")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.rank = p.find_int("rank")
        self.n_ranks = p.find_int("n_ranks")
        if not 0 <= self.rank < self.n_ranks:
            raise ValueError(f"{name}: rank {self.rank} out of range")
        self.iterations = p.find_int("iterations", 1)
        # OS-noise injection (paper §4, the kernel-level noise-injection
        # study): each compute phase suffers Poisson-arriving detours of
        # fixed duration.  ``noise_frequency`` (Hz) x ``noise_duration``
        # gives the net noise fraction; the *shape* (few long vs many
        # short detours at the same net fraction) is what the Fig. EXT
        # noise experiment sweeps.  Per-rank seeding makes rank detours
        # independent — the source of collective amplification.
        self.noise_frequency_hz = p.find_float("noise_frequency", 0.0)
        self.noise_duration = p.find_time("noise_duration", 0)
        if self.noise_frequency_hz < 0 or self.noise_duration < 0:
            raise ValueError(f"{name}: negative noise parameters")
        self.register_as_primary()

    # -- subclass interface ------------------------------------------------
    def program(self) -> Program:
        """Yield the rank's phases (SPMD).  Must be overridden."""
        raise NotImplementedError

    def params_with_defaults(self, defaults: Dict[str, object]):
        """The component's params with class defaults filled underneath.

        Delegates to :meth:`~repro.core.params.Params.with_defaults`, so
        keys read through the overlay still count as consumed for the
        unused-parameter check."""
        return self.params.with_defaults(defaults)

    def iteration_done(self) -> None:
        """Called once per completed top-level iteration (optional hook).

        Subclasses that structure their program as one generator for all
        iterations call this themselves; see :func:`iterating_program`.
        """
        self.s_iterations.add()

    # -- engine ------------------------------------------------------------
    def on_setup(self) -> None:
        self._program = self.program()
        self._advance()

    def _advance(self, _payload=None) -> None:
        assert self._program is not None
        try:
            phase = next(self._program)
        except StopIteration:
            self.s_runtime.add(self.now - self.s_runtime.count)
            self.primary_ok_to_end()
            return
        self._phases_done += 1
        self._dispatch(phase)

    # -- checkpoint protocol (repro.ckpt) -----------------------------------
    def _rebuild_program(self) -> None:
        """Recreate the generator and fast-forward it to the captured phase.

        Program generators are pure functions of the component's
        configuration plus two side channels — ``self.rng`` draws and
        statistic bumps (``iteration_done``) made *inside* the generator
        body.  Both already happened in the captured run, so the replay
        neutralises them: the captured state (including the real ``_rng``
        and statistics) is already applied when this hook runs, so it is
        saved, a scratch RNG and fresh stat values stand in while
        fast-forwarding, and the real values are re-applied afterwards —
        the resumed run continues the real random stream bit-exactly.
        """
        import numpy as np

        real_rng = self._rng
        saved = {name: stat.state_dict()
                 for name, stat in self.stats.all().items()}
        self._rng = np.random.default_rng(0)
        self._program = self.program()
        for _ in range(self._phases_done):
            try:
                next(self._program)
            except StopIteration:  # pragma: no cover - defensive
                break
        for name, snap in saved.items():
            self.stats.all()[name].load_state(snap)
        self._rng = real_rng

    def _noisy(self, duration_ps: SimTime) -> SimTime:
        """Inflate a compute duration with injected OS-noise detours."""
        if self.noise_frequency_hz <= 0 or self.noise_duration <= 0:
            return duration_ps
        expected = duration_ps / 1e12 * self.noise_frequency_hz
        detours = int(self.rng.poisson(expected))
        extra = detours * self.noise_duration
        if extra:
            self.s_noise.add(extra)
        return duration_ps + extra

    def _dispatch(self, phase: Phase) -> None:
        if isinstance(phase, Compute):
            duration = self._noisy(phase.duration_ps)
            self.s_compute.add(phase.duration_ps)
            self.schedule(duration, self._advance)
        elif isinstance(phase, Exchange):
            self._comm_started = self.now
            overlap = self._noisy(phase.overlap_ps) if phase.overlap_ps else 0
            self._overlap_until = self.now + overlap
            if phase.overlap_ps:
                self.s_compute.add(phase.overlap_ps)
            for dest, size in phase.sends:
                self._send_msg(dest, size, phase.key)
            self._wait(phase.key, phase.expect)
        elif isinstance(phase, (AllReduce, Broadcast, Reduce, Barrier)):
            self._comm_started = self.now
            self._overlap_until = self.now
            if isinstance(phase, AllReduce):
                rounds = [("sr", label, partner)
                          for label, partner in self._plan_allreduce(phase)]
                size = phase.size
            elif isinstance(phase, Barrier):
                rounds = [("sr", label, partner)
                          for label, partner in self._plan_allreduce(phase)]
                size = 1
            elif isinstance(phase, Broadcast):
                rounds = self._plan_broadcast(phase.root)
                size = phase.size
            else:
                rounds = self._plan_reduce(phase.root)
                size = phase.size
            self._rounds = rounds
            self._round_key = phase.key
            self._round_size = size
            self._next_round()
        elif isinstance(phase, AllToAll):
            # Personalised all-to-all is a full exchange.
            sends = [(j, phase.size) for j in range(self.n_ranks)
                     if j != self.rank]
            self._dispatch(Exchange(sends, expect=len(sends), key=phase.key))
        else:
            raise TypeError(f"{self.name}: unknown phase {phase!r}")

    # -- messaging ----------------------------------------------------------
    def _send_msg(self, dest: int, size: int, key: str) -> None:
        if dest == self.rank:
            raise ValueError(f"{self.name}: self-send in key {key!r}")
        self.send("nic", NetMessage(self.rank, dest, size, tag=key))
        self.s_messages.add()
        self.s_bytes.add(size)

    def _wait(self, key: str, quota: int) -> None:
        if quota <= 0 or self._inbox.get(key, 0) >= quota:
            self._inbox.pop(key, None)
            self._finish_comm()
            return
        self._waiting_key = key
        self._waiting_quota = quota

    def on_message(self, event) -> None:
        assert isinstance(event, NetMessage)
        key = event.tag
        self._inbox[key] = self._inbox.get(key, 0) + 1
        if self._waiting_key == key and self._inbox[key] >= self._waiting_quota:
            self._inbox.pop(key, None)
            self._waiting_key = None
            self._waiting_quota = 0
            self._finish_comm()

    def _finish_comm(self) -> None:
        """An exchange or collective round completed."""
        if self._rounds:
            self._next_round()
            return
        self.s_comm.add(max(0, self.now - self._comm_started))
        # Honour compute/communication overlap: the phase cannot finish
        # before the overlapped compute does.
        resume_at = max(self.now, self._overlap_until)
        self.schedule(resume_at - self.now, self._advance)

    # -- collectives ----------------------------------------------------------
    @staticmethod
    def _levels(n: int) -> int:
        levels = 0
        while (1 << levels) < n:
            levels += 1
        return levels

    def _plan_broadcast(self, root: int) -> List[Tuple[str, str, int]]:
        """Binomial-tree broadcast rounds for this rank.

        Round ``k``: ranks with relative index < 2^k (which already hold
        the data) send to relative index + 2^k.  n-1 messages total,
        ceil(log2 n) latency.
        """
        n = self.n_ranks
        rel = (self.rank - root) % n
        rounds: List[Tuple[str, str, int]] = []
        for k in range(self._levels(n)):
            step = 1 << k
            if rel < step:
                peer_rel = rel + step
                if peer_rel < n:
                    rounds.append(("s", f"b{k}", (peer_rel + root) % n))
            elif rel < 2 * step:
                rounds.append(("r", f"b{k}", ((rel - step) + root) % n))
        return rounds

    def _plan_reduce(self, root: int) -> List[Tuple[str, str, int]]:
        """Binomial-tree reduction rounds (the broadcast tree, reversed)."""
        n = self.n_ranks
        rel = (self.rank - root) % n
        rounds: List[Tuple[str, str, int]] = []
        for k in reversed(range(self._levels(n))):
            step = 1 << k
            if step <= rel < 2 * step:
                rounds.append(("s", f"t{k}", ((rel - step) + root) % n))
                break  # a sender's part in the reduction is over
            if rel < step and rel + step < n:
                rounds.append(("r", f"t{k}", ((rel + step) + root) % n))
        return rounds

    def _next_round(self) -> None:
        rounds = self._rounds
        if not rounds:
            self._rounds = None
            self._finish_comm()
            return
        op, label, partner = rounds.pop(0)
        lo, hi = min(self.rank, partner), max(self.rank, partner)
        round_key = f"{self._round_key}/{label}/p{lo}-{hi}"
        if op in ("s", "sr"):
            self._send_msg(partner, self._round_size, round_key)
        if op == "s":
            self._next_round()
        else:
            self._wait_round(round_key)

    def _plan_allreduce(self, phase) -> List[Tuple[str, int]]:
        """Recursive-doubling round plan: list of (label, partner).

        Every round is modelled as a symmetric sendrecv (cost-equivalent
        to the directional sends of real recursive doubling, and
        deadlock-free).  For non-power-of-two rank counts, the extra
        ranks fold their contribution into the main power-of-two group
        first ("fi") and receive the result at the end ("fo"); they do
        not participate in the doubling rounds.  Labels are identical on
        both sides of each pair, making message keys match.
        """
        rounds: List[Tuple[str, int]] = []
        n = self.n_ranks
        if n <= 1:
            return rounds
        pow2 = 1
        while pow2 * 2 <= n:
            pow2 *= 2
        extra = n - pow2
        if self.rank >= pow2:
            partner = self.rank - pow2
            return [("fi", partner), ("fo", partner)]
        if self.rank < extra:
            rounds.append(("fi", self.rank + pow2))
        distance = 1
        while distance < pow2:
            rounds.append((f"d{distance}", self.rank ^ distance))
            distance *= 2
        if self.rank < extra:
            rounds.append(("fo", self.rank + pow2))
        return rounds

    def _wait_round(self, key: str) -> None:
        if self._inbox.get(key, 0) >= 1:
            self._inbox.pop(key, None)
            self._next_round()
            return
        self._waiting_key = key
        self._waiting_quota = 1


def grid_dims_3d(n: int) -> Tuple[int, int, int]:
    """Near-cubic 3-D factorisation of ``n`` ranks (largest factors last)."""
    best = (1, 1, n)
    best_score = None
    for x in range(1, int(round(n ** (1 / 3))) + 2):
        if n % x:
            continue
        rest = n // x
        for y in range(x, int(rest ** 0.5) + 2):
            if rest % y:
                continue
            z = rest // y
            dims = tuple(sorted((x, y, z)))
            score = max(dims) - min(dims)
            if best_score is None or score < best_score:
                best, best_score = dims, score
    return best  # type: ignore[return-value]


def halo_neighbors_3d(rank: int, dims: Tuple[int, int, int],
                      periodic: bool = True) -> List[int]:
    """Face-neighbour ranks of ``rank`` in a 3-D decomposition."""
    nx, ny, nz = dims
    x = rank % nx
    y = (rank // nx) % ny
    z = rank // (nx * ny)
    neighbors: List[int] = []
    for d, (c, size) in enumerate(((x, nx), (y, ny), (z, nz))):
        for step in (-1, 1):
            nc = c + step
            if periodic:
                nc %= size
            elif not 0 <= nc < size:
                continue
            if size == 1:
                continue
            coords = [x, y, z]
            coords[d] = nc
            neighbor = coords[0] + coords[1] * nx + coords[2] * nx * ny
            if neighbor != rank and neighbor not in neighbors:
                neighbors.append(neighbor)
    return neighbors
