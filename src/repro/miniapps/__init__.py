"""PySST miniapp library: skeleton applications and phase models.

The Mantevo-substitute workload suite (DESIGN.md, substitution
catalogue): BSP skeleton apps that run on the simulated interconnect
(:mod:`~repro.miniapps.apps` over :mod:`~repro.miniapps.base`), machine
builders (:mod:`~repro.miniapps.machine`) and single-node phase models
for the validation studies (:mod:`~repro.miniapps.phases`).

Component types registered: ``miniapps.CTH``, ``miniapps.SAGE``,
``miniapps.XNOBEL``, ``miniapps.Charon``, ``miniapps.HPCCG``,
``miniapps.Lulesh``, ``miniapps.MiniFE``, ``miniapps.CGSolver``,
``miniapps.BiCGStabILU``, ``miniapps.MLSolver``.
"""

from .apps import (CTH, HPCCG, SAGE, XNOBEL, BiCGStabILU, CGSolver, Charon,
                   HaloApp, Lulesh, MiniDSMC, MiniFE, MiniGhost, MiniMD,
                   MiniXyce, MLSolver, PhdMesh, SolverApp)
from .base import (AllReduce, AllToAll, AppRank, Barrier, Broadcast,
                   Compute, Exchange, Reduce, compute_time_ps,
                   grid_dims_3d, halo_neighbors_3d)
from .gpustudy import (FEA_KERNEL_NAIVE, FEA_KERNEL_TUNED, SOLVE_KERNEL,
                       MiniFEGpuStudy, PhaseComparison)
from .machine import app_runtime_stats, build_app_machine, torus_dims_for
from .phases import (STANDARD_HIERARCHY, VALIDATION_PAIRS, PhaseResult,
                     cache_hit_rates, cores_per_node_efficiency,
                     memory_speed_response, phase_runtime,
                     proportional_difference)

__all__ = [
    "AllReduce",
    "AllToAll",
    "AppRank",
    "Barrier",
    "Broadcast",
    "BiCGStabILU",
    "CGSolver",
    "CTH",
    "Charon",
    "Compute",
    "Exchange",
    "FEA_KERNEL_NAIVE",
    "FEA_KERNEL_TUNED",
    "HPCCG",
    "MiniFEGpuStudy",
    "PhaseComparison",
    "SOLVE_KERNEL",
    "HaloApp",
    "Lulesh",
    "MLSolver",
    "MiniDSMC",
    "MiniFE",
    "MiniGhost",
    "MiniMD",
    "MiniXyce",
    "PhdMesh",
    "PhaseResult",
    "Reduce",
    "SAGE",
    "STANDARD_HIERARCHY",
    "SolverApp",
    "VALIDATION_PAIRS",
    "XNOBEL",
    "app_runtime_stats",
    "build_app_machine",
    "cache_hit_rates",
    "compute_time_ps",
    "cores_per_node_efficiency",
    "grid_dims_3d",
    "halo_neighbors_3d",
    "memory_speed_response",
    "phase_runtime",
    "proportional_difference",
    "torus_dims_for",
]
