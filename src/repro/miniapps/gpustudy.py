"""The miniFE CUDA study (paper §3.4, Fig. 8).

Reproduces the three-phase GPU-vs-CPU comparison of miniFE on a
Fermi-class device against a hex-core Xeon:

* **FEA (assembly)** — one thread per element computes the element
  operator (diffusion matrix, Jacobian, determinant) and atomically
  sums it into the ELL matrix.  The per-thread state (~768 B) far
  exceeds the Fermi register budget (252 B), and the L1/L2 share per
  thread (~96 B) absorbs only a sliver, so ~512 B spills to global
  memory per thread — turning a FLOP-heavy kernel bandwidth-bound.
  Result: ~4x over the CPU instead of the >10x a FLOP-ratio would give.
* **Solve (CG/ELL matvec)** — bandwidth-bound on both sides, so the
  speedup is roughly the device/host bandwidth ratio (~3x).
* **Matrix-structure generation** — computed on the host in CSR,
  transferred over PCIe and converted to ELL on the device: a net
  *slowdown* vs. just building it host-side.

The mechanisms live in :class:`repro.processor.gpu.GpuTimingModel`;
this module supplies the miniFE kernel profiles and the CPU reference,
and assembles the Fig. 8 speedup table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..memory.dram import DRAMModel
from ..processor.core import CoreConfig, CoreTimingModel
from ..processor.gpu import (FERMI_M2090, GpuSpec, GpuTimingModel,
                             KernelProfile)
from ..processor.mix import MINIFE_FEA, MINIFE_SOLVER

# --------------------------------------------------------------------------
# miniFE kernel profiles (per hexahedral element / per matrix row)
# --------------------------------------------------------------------------

#: Element-operator state, per the paper's accounting: 32 B node IDs +
#: 96 B node coordinates + 512 B diffusion matrix + 64 B source vector +
#: ~64 B Jacobian/determinant scratch.
FEA_STATE_BYTES = 32 + 96 + 512 + 64 + 64

FEA_KERNEL_NAIVE = KernelProfile(
    name="fea_assembly",
    flops_per_thread=2200.0,
    state_bytes_per_thread=FEA_STATE_BYTES,
    mem_bytes_per_thread=700.0,  # gather coords/IDs + ELL atomics
    spill_reuse=3.0,
)

#: After the §3.4 tuning: diffusion-operator symmetry + load-late
#: reordering shave ~128 B of live state, and the 64 B source vector
#: moves to shared memory.  512 B of state still spills (the paper's
#: number).
FEA_KERNEL_TUNED = FEA_KERNEL_NAIVE.with_optimizations(
    state_reduction_bytes=64, shared_bytes=64
)

SOLVE_KERNEL = KernelProfile(
    name="cg_spmv_ell",
    flops_per_thread=54.0,  # 27-point stencil row: multiply-add each
    state_bytes_per_thread=96,  # fits registers: no spill
    mem_bytes_per_thread=27 * 16.0,  # ELL value+index+padding per nonzero
)

#: CPU-side instruction costs per element/row (calibrated so the CPU
#: reference matches the measured-hardware ballpark of the study).
CPU_INSTR_PER_ELEMENT_FEA = 1_200
CPU_INSTR_PER_ROW_SOLVE = 60

#: Host CPU of the study: hex-core 2.7 GHz Xeon E5-2680 with 4-channel
#: DDR3-1600 (51.2 GB/s).
CPU_CORES = 6
CPU_CONFIG = CoreConfig(issue_width=4, freq_hz=2.7e9)
CPU_MEM_CHANNELS = 4

#: Matrix-structure generation: host builds CSR, ships it over PCIe,
#: device converts to ELL.  Bytes per row of structure data.
STRUCT_BYTES_PER_ROW = 27 * 4  # column indices


@dataclass
class PhaseComparison:
    """GPU-vs-CPU outcome for one miniFE phase."""

    phase: str
    cpu_time_s: float
    gpu_time_s: float

    @property
    def speedup(self) -> float:
        return self.cpu_time_s / self.gpu_time_s if self.gpu_time_s else 0.0


class MiniFEGpuStudy:
    """Assembles the Fig. 8 table for an ``n x n x n`` hex-element problem."""

    def __init__(self, n: int = 64, gpu: GpuSpec = FERMI_M2090):
        if n < 2:
            raise ValueError("problem size n must be >= 2")
        self.n = n
        self.n_elements = n ** 3
        self.n_rows = (n + 1) ** 3
        self.gpu = GpuTimingModel(gpu)

    # -- CPU reference ----------------------------------------------------
    def _cpu_time_s(self, workload, instructions: int) -> float:
        model = CoreTimingModel(CPU_CONFIG, workload)
        dram = DRAMModel("DDR3-1600", channels=CPU_MEM_CHANNELS)
        per_core = instructions // CPU_CORES
        runtime_ps = model.standalone_runtime_ps(per_core, dram,
                                                 n_sharers=CPU_CORES)
        return runtime_ps / 1e12

    # -- phases -----------------------------------------------------------
    def fea(self, tuned: bool = True) -> PhaseComparison:
        kernel = FEA_KERNEL_TUNED if tuned else FEA_KERNEL_NAIVE
        estimate = self.gpu.estimate(kernel, self.n_elements)
        cpu = self._cpu_time_s(MINIFE_FEA,
                               CPU_INSTR_PER_ELEMENT_FEA * self.n_elements)
        return PhaseComparison("fea", cpu, estimate.runtime_s)

    def fea_estimate(self, tuned: bool = True):
        kernel = FEA_KERNEL_TUNED if tuned else FEA_KERNEL_NAIVE
        return self.gpu.estimate(kernel, self.n_elements)

    def solve(self, iterations: int = 50) -> PhaseComparison:
        estimate = self.gpu.estimate(SOLVE_KERNEL, self.n_rows)
        gpu_time = estimate.runtime_s * iterations
        cpu_one = self._cpu_time_s(MINIFE_SOLVER,
                                   CPU_INSTR_PER_ROW_SOLVE * self.n_rows)
        return PhaseComparison("solve", cpu_one * iterations, gpu_time)

    def structure_generation(self) -> PhaseComparison:
        """Host-side CSR build + PCIe transfer + device ELL conversion,
        vs. the host-only build the CPU run needs."""
        bytes_struct = STRUCT_BYTES_PER_ROW * self.n_rows
        # Host build cost (both versions pay it).
        host_build = self._cpu_time_s(MINIFE_FEA, 400 * self.n_rows)
        pcie = self.gpu.pcie_time(bytes_struct)
        # Device-side CSR->ELL conversion at device bandwidth.
        convert = bytes_struct * 2 / self.gpu.spec.mem_bandwidth_bytes_per_s
        return PhaseComparison("structure", host_build,
                               host_build + pcie + convert)

    def table(self) -> Dict[str, PhaseComparison]:
        """The Fig. 8 rows: phase -> comparison."""
        return {
            "structure": self.structure_generation(),
            "fea": self.fea(tuned=True),
            "solve": self.solve(),
        }
