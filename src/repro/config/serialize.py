"""ConfigGraph <-> JSON round-trip.

A serialized machine description lets a design-space sweep record the
exact configuration of every run next to its results, and lets a large
config be generated once and replayed (SST ships the same facility for
its Python configs).  The format is a stable, versioned, plain-JSON
document; everything is strings/numbers so files are diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .graph import ConfigError, ConfigGraph

FORMAT_VERSION = 1


def to_dict(graph: ConfigGraph, *, describe: bool = False) -> Dict[str, Any]:
    """Serializable dict form of a graph.

    With ``describe=True`` the document also embeds a ``catalogue``
    section — each referenced component type's declared ports, state
    and statistics (:func:`repro.core.describe.describe_component`) —
    so a saved config is self-documenting.  ``from_dict`` ignores the
    section; round-tripping is unaffected.
    """
    data: Dict[str, Any] = {
        "format": "pysst-config",
        "version": FORMAT_VERSION,
        "name": graph.name,
        "components": [
            {
                "name": c.name,
                "type": c.type_name,
                "params": dict(c.params),
                "rank": c.rank,
                "weight": c.weight,
            }
            for c in graph.components()
        ],
        "links": [
            {
                "name": l.name,
                "a": [l.comp_a, l.port_a],
                "b": [l.comp_b, l.port_b],
                "latency_ps": l.latency,
                "weight": l.weight,
            }
            for l in graph.links()
        ],
    }
    if describe:
        from ..core import registry
        from ..core.describe import describe_component

        catalogue: Dict[str, Any] = {}
        for comp in graph.components():
            if comp.type_name in catalogue:
                continue
            try:
                cls = registry.resolve(comp.type_name)
            except registry.RegistryError:
                continue  # unknown types stay out of the catalogue
            catalogue[comp.type_name] = describe_component(cls)
        data["catalogue"] = catalogue
    return data


def from_dict(data: Dict[str, Any]) -> ConfigGraph:
    """Rebuild a graph from its dict form; validates structure."""
    if data.get("format") != "pysst-config":
        raise ConfigError("not a pysst-config document")
    if data.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported config version {data.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    graph = ConfigGraph(data.get("name", "machine"))
    for comp in data.get("components", []):
        graph.component(comp["name"], comp["type"], comp.get("params", {}),
                        rank=comp.get("rank"), weight=comp.get("weight", 1.0))
    for link in data.get("links", []):
        (name_a, port_a) = link["a"]
        (name_b, port_b) = link["b"]
        graph.link(name_a, port_a, name_b, port_b,
                   latency=int(link["latency_ps"]), name=link.get("name"),
                   weight=link.get("weight", 1.0))
    return graph


def to_json(graph: ConfigGraph, *, indent: int = 2) -> str:
    return json.dumps(to_dict(graph), indent=indent, sort_keys=False)


def from_json(text: str) -> ConfigGraph:
    return from_dict(json.loads(text))


def save(graph: ConfigGraph, path: Union[str, Path]) -> None:
    Path(path).write_text(to_json(graph), encoding="utf-8")


def load(path: Union[str, Path]) -> ConfigGraph:
    return from_json(Path(path).read_text(encoding="utf-8"))
