"""ConfigGraph: the declarative machine description.

SST's defining usability feature is its Python-driven configuration:
the user writes a script that declares components (by library type name
and parameter dictionary) and links (by endpoint ports and latency),
and the simulator core instantiates, partitions and runs that graph.
PySST's :class:`ConfigGraph` is that declarative object — it knows
nothing about model classes until build time, so it can be constructed,
validated, serialized and partitioned without importing any model
library.

Example::

    g = ConfigGraph("two-node")
    cpu = g.component("cpu0", "processor.Core", {"clock": "2GHz", "issue_width": 2})
    mem = g.component("mem0", "memory.MainMemory", {"technology": "DDR3-1333"})
    g.link(cpu, "mem", mem, "cpu", latency="2ns")
    g.validate()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core import units
from ..core.partition import PartitionEdge
from ..core.units import SimTime


class ConfigError(ValueError):
    """The configuration graph is malformed."""


@dataclass
class ConfigComponent:
    """A declared component: a name, a library type and parameters."""

    name: str
    type_name: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: Optional manual rank pin for parallel builds (None = partitioner's choice).
    rank: Optional[int] = None
    #: Relative work estimate used by weight-aware partitioners.
    weight: float = 1.0

    def param(self, key: str, value: Any) -> "ConfigComponent":
        """Set one parameter (chainable)."""
        self.params[key] = value
        return self

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class ConfigLink:
    """A declared link between two (component, port) endpoints."""

    name: str
    comp_a: str
    port_a: str
    comp_b: str
    port_b: str
    latency: SimTime  #: picoseconds
    #: Relative traffic estimate used by cut-aware partitioners.
    weight: float = 1.0

    @property
    def endpoints(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        return ((self.comp_a, self.port_a), (self.comp_b, self.port_b))

    def is_self_link(self) -> bool:
        return self.comp_a == self.comp_b and self.port_a == self.port_b


class ConfigGraph:
    """A buildable, serializable machine description."""

    def __init__(self, name: str = "machine"):
        self.name = name
        self._components: Dict[str, ConfigComponent] = {}
        self._links: Dict[str, ConfigLink] = {}
        self._ports_used: Dict[Tuple[str, str], str] = {}  # (comp, port) -> link name

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def component(self, name: str, type_name: str,
                  params: Optional[Dict[str, Any]] = None, *,
                  rank: Optional[int] = None,
                  weight: float = 1.0) -> ConfigComponent:
        """Declare a component.  Names must be unique in the graph."""
        if not name:
            raise ConfigError("component name must be non-empty")
        if name in self._components:
            raise ConfigError(f"duplicate component name {name!r}")
        if not type_name:
            raise ConfigError(f"component {name!r}: type name must be non-empty")
        comp = ConfigComponent(name=name, type_name=type_name,
                               params=dict(params or {}), rank=rank, weight=weight)
        self._components[name] = comp
        return comp

    def link(self, comp_a: Union[str, ConfigComponent], port_a: str,
             comp_b: Union[str, ConfigComponent], port_b: str, *,
             latency: Union[str, int] = "1ns", name: Optional[str] = None,
             weight: float = 1.0) -> ConfigLink:
        """Declare a link joining two component ports."""
        name_a = comp_a.name if isinstance(comp_a, ConfigComponent) else comp_a
        name_b = comp_b.name if isinstance(comp_b, ConfigComponent) else comp_b
        for comp_name in (name_a, name_b):
            if comp_name not in self._components:
                raise ConfigError(f"link references unknown component {comp_name!r}")
        lat = units.parse_time(latency, default_unit="ps")
        if lat <= 0:
            raise ConfigError("link latency must be >= 1 ps")
        link_name = name or f"{name_a}.{port_a}--{name_b}.{port_b}"
        if link_name in self._links:
            raise ConfigError(f"duplicate link name {link_name!r}")
        is_self = (name_a, port_a) == (name_b, port_b)
        for end in {(name_a, port_a)} if is_self else [(name_a, port_a), (name_b, port_b)]:
            if end in self._ports_used:
                raise ConfigError(
                    f"port {end[0]}.{end[1]} already connected by link "
                    f"{self._ports_used[end]!r}"
                )
        link = ConfigLink(name=link_name, comp_a=name_a, port_a=port_a,
                          comp_b=name_b, port_b=port_b, latency=lat, weight=weight)
        self._links[link_name] = link
        self._ports_used[(name_a, port_a)] = link_name
        if not is_self:
            self._ports_used[(name_b, port_b)] = link_name
        return link

    def self_link(self, comp: Union[str, ConfigComponent], port: str, *,
                  latency: Union[str, int] = "1ns",
                  name: Optional[str] = None) -> ConfigLink:
        """Declare a self-link (component's delayed feedback to itself)."""
        return self.link(comp, port, comp, port, latency=latency, name=name)

    def merge(self, other: "ConfigGraph", prefix: str = "") -> None:
        """Absorb another graph's components/links, optionally prefixed."""
        for comp in other.components():
            self.component(prefix + comp.name, comp.type_name, comp.params,
                           rank=comp.rank, weight=comp.weight)
        for link in other.links():
            self.link(prefix + link.comp_a, link.port_a,
                      prefix + link.comp_b, link.port_b,
                      latency=link.latency,
                      name=(prefix + link.name) if prefix else link.name,
                      weight=link.weight)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def components(self) -> List[ConfigComponent]:
        return list(self._components.values())

    def links(self) -> List[ConfigLink]:
        return list(self._links.values())

    def get_component(self, name: str) -> ConfigComponent:
        try:
            return self._components[name]
        except KeyError:
            raise ConfigError(f"no component named {name!r}") from None

    def get_link(self, name: str) -> ConfigLink:
        try:
            return self._links[name]
        except KeyError:
            raise ConfigError(f"no link named {name!r}") from None

    def has_component(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[ConfigComponent]:
        return iter(self._components.values())

    def num_links(self) -> int:
        return len(self._links)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, *, resolve_types: bool = False,
                 require_connected_ports: Optional[bool] = None) -> List[str]:
        """Check structural invariants; raises :class:`ConfigError` on failure.

        Returns a list of non-fatal warnings (e.g. isolated components).
        With ``resolve_types=True``, every type name must resolve in the
        component registry (imports model libraries as a side effect).
        """
        warnings: List[str] = []
        connected: set = set()
        for link in self._links.values():
            for comp_name, _port in link.endpoints:
                if comp_name not in self._components:
                    raise ConfigError(
                        f"link {link.name!r} references unknown component {comp_name!r}"
                    )
            if link.latency <= 0:
                raise ConfigError(f"link {link.name!r} has non-positive latency")
            connected.add(link.comp_a)
            connected.add(link.comp_b)
        for comp in self._components.values():
            if comp.rank is not None and comp.rank < 0:
                raise ConfigError(f"component {comp.name!r}: negative rank pin")
            if comp.name not in connected and len(self._components) > 1:
                warnings.append(f"component {comp.name!r} has no links")
        if resolve_types:
            from ..core import registry

            for comp in self._components.values():
                registry.resolve(comp.type_name)  # raises RegistryError
        return warnings

    # ------------------------------------------------------------------
    # partitioning support
    # ------------------------------------------------------------------
    def partition_inputs(self) -> Tuple[List[str], List[PartitionEdge], Dict[str, float]]:
        """Nodes, edges and weights in the form :func:`repro.core.partition.partition` takes."""
        nodes = list(self._components.keys())
        edges = [
            PartitionEdge(u=l.comp_a, v=l.comp_b, weight=l.weight, latency=l.latency)
            for l in self._links.values()
            if l.comp_a != l.comp_b
        ]
        weights = {c.name: c.weight for c in self._components.values()}
        return nodes, edges, weights

    def min_latency(self) -> Optional[SimTime]:
        if not self._links:
            return None
        return min(l.latency for l in self._links.values())

    def summary(self) -> str:
        by_type: Dict[str, int] = {}
        for comp in self._components.values():
            by_type[comp.type_name] = by_type.get(comp.type_name, 0) + 1
        lines = [f"ConfigGraph {self.name!r}: {len(self)} components, "
                 f"{self.num_links()} links"]
        for type_name in sorted(by_type):
            lines.append(f"  {type_name:<32} x{by_type[type_name]}")
        return "\n".join(lines)
