"""PySST configuration layer.

The declarative machine-description DSL: build a :class:`ConfigGraph`
of components and latency-bearing links, validate it, serialize it,
then instantiate it sequentially (:func:`build`) or partitioned across
ranks (:func:`build_parallel`).  Topology generators produce router
fabrics (torus, fat tree, crossbar) with endpoint attach points.
"""

from .builder import build, build_parallel
from .graph import ConfigComponent, ConfigError, ConfigGraph, ConfigLink
from .serialize import from_dict, from_json, load, save, to_dict, to_json
from .topology import (Topology, build_crossbar, build_dragonfly,
                       build_fat_tree, build_ring, build_torus)

__all__ = [
    "ConfigComponent",
    "ConfigError",
    "ConfigGraph",
    "ConfigLink",
    "Topology",
    "build",
    "build_crossbar",
    "build_dragonfly",
    "build_fat_tree",
    "build_parallel",
    "build_ring",
    "build_torus",
    "from_dict",
    "from_json",
    "load",
    "save",
    "to_dict",
    "to_json",
]
