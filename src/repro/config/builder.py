"""Instantiate a ConfigGraph into runnable simulations.

``build`` produces a sequential :class:`~repro.core.simulation.Simulation`;
``build_parallel`` partitions the graph across N ranks (respecting
per-component rank pins) and produces a
:class:`~repro.core.parallel.ParallelSimulation`.  Component classes are
resolved through the registry (:mod:`repro.core.registry`) so the graph
itself stays declaration-only.

Both builders validate every link endpoint against the target class's
declared ports (:mod:`repro.core.describe`) *before* instantiating
anything, and check required ports are connected after wiring — a typoed
port name fails at graph-build time with the offending component and
port named, instead of at the first ``send()`` mid-run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from ..core import registry
from ..core.component import Component
from ..core.describe import SpecError, validate_port_name
from ..core.parallel import ParallelSimulation
from ..core.params import Params
from ..core.partition import partition
from ..core.simulation import Simulation
from .graph import ConfigError, ConfigGraph


def _resolve_classes(graph: ConfigGraph) -> Dict[str, Type[Component]]:
    classes = {conf.name: registry.resolve(conf.type_name)
               for conf in graph.components()}
    for conf in graph.components():
        if not issubclass(classes[conf.name], Component):
            raise ConfigError(
                f"component {conf.name!r}: {conf.type_name!r} is a "
                f"subcomponent type — it fills a slot() on a component, "
                f"it cannot be instantiated as a graph node"
            )
    return classes


def _validate_slots(graph: ConfigGraph,
                    classes: Dict[str, Type[Component]]) -> None:
    """Check every declared slot's configured type, pre-instantiation.

    Mirrors :func:`_validate_ports`: the selected subcomponent type must
    resolve through the registry and satisfy the slot's base class and
    ``choices`` — a typo'd policy name fails at graph-build time with
    the component and slot named instead of mid-construction.
    """
    for conf in graph.components():
        cls = classes[conf.name]
        for attr, spec in getattr(cls, "_slot_specs", {}).items():
            type_name = spec.configured_type(conf.params)
            if type_name is None:
                continue
            try:
                sub_cls = registry.resolve(type_name)
            except registry.RegistryError:
                choices = (f" (one of {list(spec.choices)})"
                           if spec.choices else "")
                raise ConfigError(
                    f"component {conf.name!r} slot {attr!r}: unknown "
                    f"subcomponent type {type_name!r}{choices}"
                ) from None
            try:
                spec.check(type_name, sub_cls)
            except SpecError as exc:
                raise ConfigError(
                    f"component {conf.name!r}: {exc}") from None


def _validate_ports(graph: ConfigGraph,
                    classes: Dict[str, Type[Component]]) -> None:
    """Check every link endpoint against declared ports, pre-instantiation."""
    endpoints: List[Tuple[str, str]] = []
    for link in graph.links():
        endpoints.append((link.comp_a, link.port_a))
        if not link.is_self_link():
            endpoints.append((link.comp_b, link.port_b))
    for comp_name, port_name in endpoints:
        cls = classes[comp_name]
        if not validate_port_name(cls, port_name):
            declared = ", ".join(sorted(cls._port_specs)) or "<none>"
            raise ConfigError(
                f"link endpoint {comp_name}.{port_name}: class "
                f"{cls.__name__} declares no such port "
                f"(declared: {declared})"
            )


def _check_required_ports(instances: Dict[str, Component]) -> None:
    """After wiring: every required declared port must be connected.

    A required indexed family (``cpu<i>``) needs at least one member
    connected; scalar required ports need their one connection.
    """
    for comp in instances.values():
        specs = type(comp)._port_specs
        if not specs:
            continue
        for spec in specs.values():
            if not spec.required:
                continue
            if spec.indexed:
                ok = any(spec.matches(name) and p.connected
                         for name, p in comp._ports.items())
            else:
                ok = comp.port_connected(spec.name)
            if not ok:
                raise ConfigError(
                    f"component {comp.name!r} ({type(comp).__name__}): "
                    f"required port {spec.name!r} is not connected"
                )


def build(graph: ConfigGraph, *, sim: Optional[Simulation] = None,
          seed: int = 1, queue: str = "heap", verbose: bool = False,
          clock_arbiter: Optional[bool] = None,
          validate_events: bool = False) -> Simulation:
    """Instantiate every component and link of ``graph`` into one Simulation.

    The graph is retained on ``sim.config_graph`` — `repro.ckpt`
    snapshots embed it so a restore can rebuild the component set and
    validate identity.  ``validate_events=True`` additionally wraps
    handlers of event-typed declared ports with isinstance checks at
    setup (diagnostics mode; off by default to keep the hot path bare).
    """
    graph.validate(resolve_types=True)
    classes = _resolve_classes(graph)
    _validate_ports(graph, classes)
    _validate_slots(graph, classes)
    if sim is None:
        sim = Simulation(seed=seed, queue=queue, verbose=verbose,
                         clock_arbiter=clock_arbiter)
    if validate_events:
        sim.validate_events = True
    sim.config_graph = graph
    instances: Dict[str, Component] = {}
    for conf in graph.components():
        instances[conf.name] = classes[conf.name](sim, conf.name,
                                                  Params(conf.params))
    for link in graph.links():
        if link.is_self_link():
            sim.self_link(instances[link.comp_a], link.port_a,
                          latency=link.latency)
        else:
            sim.connect(instances[link.comp_a], link.port_a,
                        instances[link.comp_b], link.port_b,
                        latency=link.latency, name=link.name)
    _check_required_ports(instances)
    return sim


def build_parallel(graph: ConfigGraph, num_ranks: int, *,
                   strategy: str = "linear", seed: int = 1,
                   queue: str = "heap", backend: str = "serial",
                   verbose: bool = False,
                   clock_arbiter: Optional[bool] = None,
                   validate_events: bool = False,
                   transport: str = "pipe",
                   sync: str = "conservative") -> ParallelSimulation:
    """Partition ``graph`` across ``num_ranks`` and instantiate per rank.

    Components carrying a ``rank`` pin are honoured; the partitioner
    decides placement for the rest (pins are applied on top of the
    strategy's assignment, so heavy pinning can unbalance ranks).

    ``backend`` selects the execution substrate (``serial`` /
    ``threads`` / ``processes``), ``transport`` the processes-backend
    data plane (``pipe`` / ``shm``) and ``sync`` the epoch-window
    strategy (``conservative`` / ``adaptive``); all three are passed
    straight through to
    :class:`~repro.core.parallel.ParallelSimulation`.
    """
    graph.validate(resolve_types=True)
    classes = _resolve_classes(graph)
    _validate_ports(graph, classes)
    _validate_slots(graph, classes)
    nodes, edges, weights = graph.partition_inputs()
    result = partition(nodes, edges, num_ranks, strategy=strategy, weights=weights)
    assignment = dict(result.assignment)
    for conf in graph.components():
        if conf.rank is not None:
            if conf.rank >= num_ranks:
                raise ConfigError(
                    f"component {conf.name!r} pinned to rank {conf.rank} "
                    f">= num_ranks {num_ranks}"
                )
            assignment[conf.name] = conf.rank

    psim = ParallelSimulation(num_ranks, seed=seed, queue=queue,
                              backend=backend, verbose=verbose,
                              clock_arbiter=clock_arbiter,
                              transport=transport, sync=sync)
    psim.partition_strategy = strategy
    psim.config_graph = graph
    if validate_events:
        for rank in range(num_ranks):
            psim.rank_sim(rank).validate_events = True
    instances: Dict[str, Component] = {}
    for conf in graph.components():
        rank_sim = psim.rank_sim(assignment[conf.name])
        instances[conf.name] = classes[conf.name](rank_sim, conf.name,
                                                  Params(conf.params))
    for link in graph.links():
        if link.is_self_link():
            comp = instances[link.comp_a]
            comp.sim.self_link(comp, link.port_a, latency=link.latency)
        else:
            psim.connect(instances[link.comp_a], link.port_a,
                         instances[link.comp_b], link.port_b,
                         latency=link.latency, name=link.name)
    _check_required_ports(instances)
    return psim
