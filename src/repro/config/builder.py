"""Instantiate a ConfigGraph into runnable simulations.

``build`` produces a sequential :class:`~repro.core.simulation.Simulation`;
``build_parallel`` partitions the graph across N ranks (respecting
per-component rank pins) and produces a
:class:`~repro.core.parallel.ParallelSimulation`.  Component classes are
resolved through the registry (:mod:`repro.core.registry`) so the graph
itself stays declaration-only.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import registry
from ..core.component import Component
from ..core.parallel import ParallelSimulation
from ..core.params import Params
from ..core.partition import partition
from ..core.simulation import Simulation
from .graph import ConfigError, ConfigGraph


def build(graph: ConfigGraph, *, sim: Optional[Simulation] = None,
          seed: int = 1, queue: str = "heap", verbose: bool = False,
          clock_arbiter: Optional[bool] = None) -> Simulation:
    """Instantiate every component and link of ``graph`` into one Simulation.

    The graph is retained on ``sim.config_graph`` — `repro.ckpt`
    snapshots embed it so a restore can rebuild the component set and
    validate identity.
    """
    graph.validate(resolve_types=True)
    if sim is None:
        sim = Simulation(seed=seed, queue=queue, verbose=verbose,
                         clock_arbiter=clock_arbiter)
    sim.config_graph = graph
    instances: Dict[str, Component] = {}
    for conf in graph.components():
        cls = registry.resolve(conf.type_name)
        instances[conf.name] = cls(sim, conf.name, Params(conf.params))
    for link in graph.links():
        if link.is_self_link():
            sim.self_link(instances[link.comp_a], link.port_a,
                          latency=link.latency)
        else:
            sim.connect(instances[link.comp_a], link.port_a,
                        instances[link.comp_b], link.port_b,
                        latency=link.latency, name=link.name)
    return sim


def build_parallel(graph: ConfigGraph, num_ranks: int, *,
                   strategy: str = "linear", seed: int = 1,
                   queue: str = "heap", backend: str = "serial",
                   verbose: bool = False,
                   clock_arbiter: Optional[bool] = None) -> ParallelSimulation:
    """Partition ``graph`` across ``num_ranks`` and instantiate per rank.

    Components carrying a ``rank`` pin are honoured; the partitioner
    decides placement for the rest (pins are applied on top of the
    strategy's assignment, so heavy pinning can unbalance ranks).

    ``backend`` selects the execution substrate (``serial`` /
    ``threads`` / ``processes``) and is passed straight through to
    :class:`~repro.core.parallel.ParallelSimulation`.
    """
    graph.validate(resolve_types=True)
    nodes, edges, weights = graph.partition_inputs()
    result = partition(nodes, edges, num_ranks, strategy=strategy, weights=weights)
    assignment = dict(result.assignment)
    for conf in graph.components():
        if conf.rank is not None:
            if conf.rank >= num_ranks:
                raise ConfigError(
                    f"component {conf.name!r} pinned to rank {conf.rank} "
                    f">= num_ranks {num_ranks}"
                )
            assignment[conf.name] = conf.rank

    psim = ParallelSimulation(num_ranks, seed=seed, queue=queue,
                              backend=backend, verbose=verbose,
                              clock_arbiter=clock_arbiter)
    psim.partition_strategy = strategy
    psim.config_graph = graph
    instances: Dict[str, Component] = {}
    for conf in graph.components():
        cls = registry.resolve(conf.type_name)
        rank_sim = psim.rank_sim(assignment[conf.name])
        instances[conf.name] = cls(rank_sim, conf.name, Params(conf.params))
    for link in graph.links():
        if link.is_self_link():
            comp = instances[link.comp_a]
            comp.sim.self_link(comp, link.port_a, latency=link.latency)
        else:
            psim.connect(instances[link.comp_a], link.port_a,
                         instances[link.comp_b], link.port_b,
                         latency=link.latency, name=link.name)
    return psim
