"""Interconnect topology generators.

These functions add router meshes to a :class:`ConfigGraph` and return a
:class:`Topology` describing the *attach points* where endpoint
components (NICs, node models, miniapp ranks) can be linked.  The
builders encode the same conventions the ``repro.network`` router models
expect:

* torus/mesh routers are named ``<prefix>.r<x>_<y>[_<z>]`` with ports
  ``dim0_pos / dim0_neg / dim1_pos / ...`` between routers and
  ``local<i>`` toward endpoints;
* endpoint *i* attaches to router ``i // locals_per_router``, local port
  ``i % locals_per_router`` (row-major), which lets routers compute
  destination coordinates arithmetically from an endpoint id;
* fat trees are two-level: leaf switches with ``down`` local ports and
  one up port per spine switch.

The generated router components carry the topology parameters
(``kind``, ``dims``, ``locals``...) so the routing logic in
:mod:`repro.network.router` is self-configuring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .graph import ConfigComponent, ConfigGraph


@dataclass
class Topology:
    """Description of a generated interconnect."""

    kind: str  #: "torus" | "mesh" | "ring" | "fattree" | "crossbar"
    router_names: List[str]
    #: endpoint index -> (router name, local port name)
    endpoints: List[Tuple[str, str]]
    dims: Tuple[int, ...] = ()
    locals_per_router: int = 1
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoints)

    def attach(self, graph: ConfigGraph, index: int,
               comp: Union[str, ConfigComponent], port: str, *,
               latency: Union[str, int] = "10ns") -> None:
        """Link endpoint slot ``index`` of the topology to ``comp.port``."""
        router, local_port = self.endpoints[index]
        graph.link(comp, port, router, local_port, latency=latency)


def _coords_iter(dims: Sequence[int]):
    """Row-major iteration over an n-D coordinate space (last dim fastest)."""
    if not dims:
        yield ()
        return
    for head in range(dims[0]):
        for rest in _coords_iter(dims[1:]):
            yield (head,) + rest


def _coord_name(prefix: str, coords: Sequence[int]) -> str:
    return f"{prefix}.r" + "_".join(str(c) for c in coords)


def build_torus(graph: ConfigGraph, dims: Sequence[int], *,
                prefix: str = "net", router_type: str = "network.Router",
                locals_per_router: int = 1,
                link_latency: Union[str, int] = "20ns",
                link_bandwidth: str = "4.8GB/s",
                wrap: bool = True,
                router_params: Optional[Dict[str, object]] = None) -> Topology:
    """Add an n-dimensional torus (or mesh when ``wrap=False``).

    Cray's SeaStar/Gemini-style 3-D torus — the network of the Red Storm
    / Cielo machines referenced throughout the paper — is
    ``build_torus(g, (x, y, z))``.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise ValueError(f"invalid torus dims {dims!r}")
    if locals_per_router < 1:
        raise ValueError("locals_per_router must be >= 1")
    dims_str = "x".join(str(d) for d in dims)
    base_params: Dict[str, object] = {
        "kind": "torus" if wrap else "mesh",
        "dims": dims_str,
        "locals": locals_per_router,
        "link_bandwidth": link_bandwidth,
    }
    base_params.update(router_params or {})

    router_names: List[str] = []
    coords_of: Dict[Tuple[int, ...], str] = {}
    for coords in _coords_iter(dims):
        name = _coord_name(prefix, coords)
        params = dict(base_params)
        params["coords"] = ",".join(str(c) for c in coords)
        graph.component(name, router_type, params)
        router_names.append(name)
        coords_of[coords] = name

    # Inter-router links: one per (node, dimension) toward the positive
    # neighbour; wraparound closes the torus.
    for coords in _coords_iter(dims):
        for d, size in enumerate(dims):
            if size == 1:
                continue
            here = coords_of[coords]
            neighbour_coords = list(coords)
            neighbour_coords[d] = coords[d] + 1
            if neighbour_coords[d] >= size:
                if not wrap:
                    continue
                neighbour_coords[d] = 0
            # Skip duplicate wrap link in a 2-wide dimension (pos and neg
            # neighbours coincide).
            if size == 2 and coords[d] == 1:
                continue
            there = coords_of[tuple(neighbour_coords)]
            graph.link(here, f"dim{d}_pos", there, f"dim{d}_neg",
                       latency=link_latency)

    endpoints: List[Tuple[str, str]] = []
    for coords in _coords_iter(dims):
        for local in range(locals_per_router):
            endpoints.append((coords_of[coords], f"local{local}"))
    return Topology(kind="torus" if wrap else "mesh",
                    router_names=router_names, endpoints=endpoints,
                    dims=dims, locals_per_router=locals_per_router)


def build_ring(graph: ConfigGraph, n: int, **kwargs) -> Topology:
    """A 1-D torus of ``n`` routers."""
    topo = build_torus(graph, (n,), **kwargs)
    topo.kind = "ring"
    return topo


def build_fat_tree(graph: ConfigGraph, *, leaves: int, down_ports: int,
                   spines: int, prefix: str = "net",
                   router_type: str = "network.Router",
                   link_latency: Union[str, int] = "20ns",
                   link_bandwidth: str = "4.0GB/s",
                   router_params: Optional[Dict[str, object]] = None) -> Topology:
    """A two-level fat tree: ``leaves`` leaf switches, ``spines`` spine switches.

    Each leaf has ``down_ports`` endpoint ports and one uplink per
    spine.  This matches the QLogic/Mellanox InfiniBand fat-tree
    configurations of the Teller/Arthur/Chama testbeds described in the
    paper.
    """
    if leaves < 1 or spines < 1 or down_ports < 1:
        raise ValueError("leaves, spines, down_ports must all be >= 1")
    base: Dict[str, object] = {
        "locals": down_ports,
        "leaves": leaves,
        "spines": spines,
        "link_bandwidth": link_bandwidth,
    }
    base.update(router_params or {})

    leaf_names: List[str] = []
    for i in range(leaves):
        name = f"{prefix}.leaf{i}"
        params = dict(base)
        params.update({"kind": "fattree_leaf", "index": i})
        graph.component(name, router_type, params)
        leaf_names.append(name)
    spine_names: List[str] = []
    for j in range(spines):
        name = f"{prefix}.spine{j}"
        params = dict(base)
        params.update({"kind": "fattree_spine", "index": j, "locals": 0,
                       "down_locals": down_ports})
        graph.component(name, router_type, params)
        spine_names.append(name)

    for i, leaf in enumerate(leaf_names):
        for j, spine in enumerate(spine_names):
            graph.link(leaf, f"up{j}", spine, f"down{i}", latency=link_latency)

    endpoints = [
        (leaf_names[i], f"local{k}")
        for i in range(leaves)
        for k in range(down_ports)
    ]
    return Topology(kind="fattree", router_names=leaf_names + spine_names,
                    endpoints=endpoints, dims=(leaves, spines),
                    locals_per_router=down_ports,
                    extra={"leaves": leaves, "spines": spines,
                           "down_ports": down_ports})


def build_dragonfly(graph: ConfigGraph, *, groups: int, routers_per_group: int,
                    global_per_router: int, locals_per_router: int = 2,
                    prefix: str = "net", router_type: str = "network.Router",
                    local_link_latency: Union[str, int] = "15ns",
                    global_link_latency: Union[str, int] = "300ns",
                    link_bandwidth: str = "4.0GB/s",
                    router_params: Optional[Dict[str, object]] = None) -> Topology:
    """A balanced canonical dragonfly: ``g`` groups of ``a`` routers.

    Within a group, routers are fully connected (local ports ``l<peer>``).
    Each router carries ``h = global_per_router`` global links (ports
    ``g<k>``); balance requires ``a*h == g-1`` so that every pair of
    groups is joined by exactly one global link.  The link between
    groups ``i`` and ``j`` (offset ``d = (j-i) mod g``) hangs off router
    ``(d-1) // h`` of group ``i``, port ``(d-1) % h`` — and
    symmetrically for the way back.  Endpoint numbering is row-major:
    ``((group*a)+router)*p + terminal``.
    """
    g, a, h, p = groups, routers_per_group, global_per_router, locals_per_router
    if min(g, a, h, p) < 1:
        raise ValueError("all dragonfly parameters must be >= 1")
    if a * h != g - 1:
        raise ValueError(
            f"balanced dragonfly needs routers_per_group*global_per_router"
            f" == groups-1 (got {a}*{h} != {g}-1)"
        )
    base: Dict[str, object] = {
        "kind": "dragonfly",
        "groups": g,
        "routers_per_group": a,
        "global_per_router": h,
        "locals": p,
        "link_bandwidth": link_bandwidth,
    }
    base.update(router_params or {})

    names: Dict[Tuple[int, int], str] = {}
    router_names: List[str] = []
    for group in range(g):
        for index in range(a):
            name = f"{prefix}.g{group}r{index}"
            params = dict(base)
            params.update({"group": group, "index": index})
            graph.component(name, router_type, params)
            names[(group, index)] = name
            router_names.append(name)

    # Intra-group all-to-all: port l<peer> on each side.
    for group in range(g):
        for i in range(a):
            for j in range(i + 1, a):
                graph.link(names[(group, i)], f"l{j}",
                           names[(group, j)], f"l{i}",
                           latency=local_link_latency)

    # Inter-group global links: one per unordered group pair.
    for gi in range(g):
        for gj in range(gi + 1, g):
            d_fwd = (gj - gi) % g
            d_back = (gi - gj) % g
            ri, pi = (d_fwd - 1) // h, (d_fwd - 1) % h
            rj, pj = (d_back - 1) // h, (d_back - 1) % h
            graph.link(names[(gi, ri)], f"g{pi}",
                       names[(gj, rj)], f"g{pj}",
                       latency=global_link_latency)

    endpoints = [
        (names[(group, index)], f"local{terminal}")
        for group in range(g)
        for index in range(a)
        for terminal in range(p)
    ]
    return Topology(kind="dragonfly", router_names=router_names,
                    endpoints=endpoints, dims=(g, a, h),
                    locals_per_router=p,
                    extra={"groups": g, "routers_per_group": a,
                           "global_per_router": h})


def build_crossbar(graph: ConfigGraph, n: int, *, prefix: str = "net",
                   router_type: str = "network.Router",
                   link_latency: Union[str, int] = "20ns",
                   link_bandwidth: str = "4.0GB/s",
                   router_params: Optional[Dict[str, object]] = None) -> Topology:
    """A single switch with ``n`` endpoint ports (ideal, contention-at-port)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    params: Dict[str, object] = {
        "kind": "crossbar",
        "locals": n,
        "link_bandwidth": link_bandwidth,
    }
    params.update(router_params or {})
    name = f"{prefix}.xbar"
    graph.component(name, router_type, params)
    endpoints = [(name, f"local{i}") for i in range(n)]
    return Topology(kind="crossbar", router_names=[name], endpoints=endpoints,
                    dims=(n,), locals_per_router=n)
