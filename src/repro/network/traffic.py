"""Synthetic network traffic endpoints.

Generic message sources/sinks for exercising NIC + router fabrics
without a full miniapp: each :class:`PatternEndpoint` sends ``count``
messages of ``size`` bytes according to a pattern, with a bounded
send window, and measures end-to-end latency on the receive side.

Patterns:

* ``uniform``    — destinations drawn uniformly from all other endpoints;
* ``neighbor``   — fixed partner ``(self + 1) % n`` (ring nearest-neighbour);
* ``bitcomplement`` — partner ``n - 1 - self`` (worst-case torus distance);
* ``hotspot``    — everyone sends to endpoint 0;
* ``shift``      — fixed partner ``(self + shift_amount) % n`` — with
  ``shift_amount`` = endpoints-per-group this is the classic dragonfly
  adversarial pattern (every group hammers one neighbouring group).
"""

from __future__ import annotations

from typing import Optional

from ..core.component import Component, port, stat, state
from ..core.registry import register
from .message import NetMessage

PATTERNS = ("uniform", "neighbor", "bitcomplement", "hotspot", "shift")


@register("network.PatternEndpoint")
class PatternEndpoint(Component):
    """Traffic generator + latency-measuring sink behind one NIC.

    Ports: ``nic``.  Parameters: ``endpoint_id``, ``n_endpoints``,
    ``pattern``, ``count`` (messages to send), ``size`` (bytes),
    ``window`` (max unacked sends in flight; acks are modelled by the
    arrival of our partner's messages in symmetric patterns, so window
    here simply rate-limits via a fixed ``gap`` between sends),
    ``gap`` (inter-send spacing, default "1us").

    Statistics: ``sent``, ``received``, ``latency_ps``, ``hops``.
    """

    nic = port("messages out to / in from the local NIC",
               event=NetMessage, handler="on_message")

    _sent = state(0, gauge=True, doc="emissions so far (including skips)")

    s_sent = stat.counter(doc="messages actually sent")
    s_received = stat.counter(doc="messages received")
    s_latency = stat.accumulator("latency_ps", doc="end-to-end latency")
    s_hops = stat.accumulator(doc="router hops per message")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.endpoint_id = p.find_int("endpoint_id")
        self.n_endpoints = p.find_int("n_endpoints")
        self.pattern = p.find_str("pattern", "uniform")
        if self.pattern not in PATTERNS:
            raise ValueError(f"{name}: unknown pattern {self.pattern!r}")
        self.count = p.find_int("count", 10)
        self.size = p.find_size_bytes("size", "4KB")
        self.gap = p.find_time("gap", "1us")
        self.shift_amount = p.find_int("shift_amount", 1)
        # Receive quota for the exit protocol: the simulation must not end
        # while messages this endpoint is due are still in flight.  -1 =
        # derive from the pattern ("uniform" has no per-endpoint quota and
        # derives to 0, so uniform runs bound completion with max_time or
        # rely on the senders' quotas).
        expected = p.find_int("expected", -1)
        if expected < 0:
            expected = self._auto_expected()
        self.expected = expected
        if self.count > 0 or self.expected > 0:
            self.register_as_primary()

    def on_setup(self) -> None:
        if self.count > 0:
            self.schedule(self.gap, self._emit)

    def _dest(self) -> Optional[int]:
        n = self.n_endpoints
        if n <= 1:
            return None
        if self.pattern == "neighbor":
            return (self.endpoint_id + 1) % n
        if self.pattern == "bitcomplement":
            dest = n - 1 - self.endpoint_id
            return dest if dest != self.endpoint_id else None
        if self.pattern == "hotspot":
            return 0 if self.endpoint_id != 0 else None
        if self.pattern == "shift":
            dest = (self.endpoint_id + self.shift_amount) % n
            return dest if dest != self.endpoint_id else None
        # uniform
        dest = int(self.rng.integers(0, n - 1))
        return dest if dest < self.endpoint_id else dest + 1

    def _auto_expected(self) -> int:
        """Per-pattern receive quota (how many messages are headed here)."""
        n, c = self.n_endpoints, self.count
        if n <= 1:
            return 0
        if self.pattern == "neighbor":
            return c
        if self.pattern == "bitcomplement":
            partner = n - 1 - self.endpoint_id
            return c if partner != self.endpoint_id else 0
        if self.pattern == "hotspot":
            return (n - 1) * c if self.endpoint_id == 0 else 0
        if self.pattern == "shift":
            sender = (self.endpoint_id - self.shift_amount) % n
            return c if sender != self.endpoint_id else 0
        return 0  # uniform: no deterministic per-endpoint quota

    def _check_done(self) -> None:
        if self._sent >= self.count and self.s_received.count >= self.expected:
            self.primary_ok_to_end()

    def _emit(self, _payload=None) -> None:
        dest = self._dest()
        if dest is not None:
            self.send("nic", NetMessage(self.endpoint_id, dest, self.size,
                                        tag=self.pattern))
            self.s_sent.add()
        self._sent += 1
        if self._sent < self.count:
            self.schedule(self.gap, self._emit)
        else:
            self._check_done()

    def on_message(self, event) -> None:
        assert isinstance(event, NetMessage)
        if event.dest != self.endpoint_id:
            raise RuntimeError(
                f"{self.name}: misrouted message {event!r} "
                f"(I am endpoint {self.endpoint_id})"
            )
        self.s_received.add()
        self.s_latency.add(self.now - event.send_time)
        self.s_hops.add(event.hops)
        self._check_done()
