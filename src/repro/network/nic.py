"""Network interface with a configurable injection-bandwidth throttle.

The NIC is where the paper's bandwidth-degradation experiment (§4.1,
Fig. 9) lives: Sandia modified Cray XT5 boot firmware to clamp each
compute node's link to full / half / quarter / eighth injection
bandwidth while leaving everything else untouched.  Here the same knob
is the ``injection_bandwidth`` parameter: outgoing messages serialise
through the NIC at that rate before entering the router fabric.

Ports: ``cpu`` (endpoint side) and ``net`` (router local port).
Messages also pay a fixed per-message ``send_overhead`` (software +
DMA setup), which is what makes small-message apps (Charon) latency-
rather than bandwidth-sensitive.
"""

from __future__ import annotations

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime, bytes_time
from .message import NetMessage


@register("network.Nic")
class Nic(Component):
    """Injection-throttled network interface.

    Parameters: ``injection_bandwidth`` (e.g. "3.2GB/s"),
    ``ejection_bandwidth`` (default = injection), ``send_overhead``
    (per message, default "500ns"), ``recv_overhead`` (default "300ns").

    Statistics: ``sent``, ``received``, ``bytes_sent``,
    ``injection_wait_ps`` (time spent queued behind the throttle).
    """

    cpu = port("endpoint side: messages to send in / delivered messages out",
               event=NetMessage, handler="on_send")
    net = port("fabric side: router local port",
               event=NetMessage, handler="on_deliver")

    _tx_free = state(0, doc="time the injection path next frees up")
    _rx_free = state(0, doc="time the ejection path next frees up")

    s_sent = stat.counter(doc="messages injected")
    s_received = stat.counter(doc="messages ejected")
    s_bytes_sent = stat.counter(doc="payload bytes injected")
    s_inj_wait = stat.accumulator("injection_wait_ps",
                                  doc="time queued behind the throttle")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.injection_bw = p.find_bandwidth("injection_bandwidth", "3.2GB/s")
        self.ejection_bw = p.find_bandwidth(
            "ejection_bandwidth", self.injection_bw
        )
        self.send_overhead = p.find_time("send_overhead", "500ns")
        self.recv_overhead = p.find_time("recv_overhead", "300ns")

    def on_send(self, event) -> None:
        """Endpoint handed us a message: throttle, then inject."""
        assert isinstance(event, NetMessage)
        event.send_time = self.now
        start = max(self.now + self.send_overhead, self._tx_free)
        self.s_inj_wait.add(start - self.now)
        transfer = bytes_time(event.size, self.injection_bw)
        self._tx_free = start + transfer
        self.s_sent.add()
        self.s_bytes_sent.add(event.size)
        self.send("net", event, extra_delay=self._tx_free - self.now)

    def on_deliver(self, event) -> None:
        """Fabric delivered a message: eject and hand to the endpoint."""
        assert isinstance(event, NetMessage)
        start = max(self.now, self._rx_free)
        transfer = bytes_time(event.size, self.ejection_bw)
        self._rx_free = start + transfer
        self.s_received.add()
        done = self._rx_free + self.recv_overhead
        self.send("cpu", event, extra_delay=done - self.now)
