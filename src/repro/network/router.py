"""Message routers for the topologies the config layer generates.

One :class:`Router` class self-configures from the parameters the
topology builders (:mod:`repro.config.topology`) attach: ``kind``
selects the routing function, and the endpoint numbering convention
(endpoint *i* lives at router ``i // locals``, local port
``i % locals``) lets destination coordinates be computed arithmetically
— no routing tables.

Routing functions:

* **torus/mesh** — dimension-ordered; the torus picks the shorter wrap
  direction per dimension (minimal routing).
* **fat tree** — up to a deterministically chosen spine
  (``dest_leaf % spines``), down to the destination leaf.
* **crossbar** — direct output port.

Per output port, messages serialise at ``link_bandwidth`` and pay
``hop_latency`` of pipeline delay (plus the config link's wire
latency).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.component import Component, port, stat, state
from ..core.registry import register
from ..core.units import SimTime, bytes_time
from .message import NetMessage


def unflatten(index: int, dims: Tuple[int, ...]) -> Tuple[int, ...]:
    """Row-major index -> coordinates (last dimension fastest)."""
    coords = []
    for size in reversed(dims):
        coords.append(index % size)
        index //= size
    return tuple(reversed(coords))


def flatten(coords: Tuple[int, ...], dims: Tuple[int, ...]) -> int:
    index = 0
    for c, size in zip(coords, dims):
        index = index * size + c
    return index


def torus_step(here: int, there: int, size: int, wrap: bool) -> int:
    """Direction (-1, 0, +1) of the next minimal hop in one dimension."""
    if here == there:
        return 0
    forward = (there - here) % size
    backward = (here - there) % size
    if not wrap:
        return 1 if there > here else -1
    if forward <= backward:
        return 1
    return -1


@register("network.Router")
class Router(Component):
    """Topology-aware store-and-forward message router.

    Parameters (set by the topology builders): ``kind``
    ("torus"|"mesh"|"crossbar"|"fattree_leaf"|"fattree_spine"),
    ``dims`` ("4x4x4"), ``coords`` ("1,2,0"), ``locals``, ``leaves``,
    ``spines``, ``index``, ``link_bandwidth``, ``hop_latency``
    (default "10ns").

    Statistics: ``forwarded``, ``delivered``, ``bytes``,
    ``queue_wait_ps``.
    """

    # Port families are kind-dependent; all are declared optional and the
    # constructor binds the subset the topology actually uses.
    dim_pos = port("torus/mesh positive-direction neighbours",
                   name="dim<d>_pos", required=False, event=NetMessage)
    dim_neg = port("torus/mesh negative-direction neighbours",
                   name="dim<d>_neg", required=False, event=NetMessage)
    up = port("fat-tree leaf uplinks (one per spine)", name="up<j>",
              required=False, event=NetMessage)
    down = port("fat-tree spine downlinks (one per leaf)", name="down<i>",
                required=False, event=NetMessage)
    l = port("dragonfly intra-group links", name="l<j>",  # noqa: E741
             required=False, event=NetMessage)
    g = port("dragonfly global links", name="g<k>",
             required=False, event=NetMessage)
    local = port("endpoint attach points", name="local<i>",
                 required=False, event=NetMessage)

    _port_free = state(dict, doc="output port -> time it next frees up")

    s_forwarded = stat.counter(doc="messages sent to another router")
    s_delivered = stat.counter(doc="messages handed to a local endpoint")
    s_bytes = stat.counter(doc="message bytes through this router")
    s_queue_wait = stat.accumulator("queue_wait_ps",
                                    doc="output-port serialisation wait")

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        p = self.params
        self.kind = p.find_str("kind", "crossbar")
        self.locals_per_router = p.find_int("locals", 1)
        self.link_bw = p.find_bandwidth("link_bandwidth", "4.8GB/s")
        self.hop_latency = p.find_time("hop_latency", "10ns")
        # The topology builders hand every router the full shape
        # description; each kind deliberately reads only its slice.
        p.accept("leaves", "spines", "down_locals")

        if self.kind in ("torus", "mesh"):
            self.dims = tuple(int(d) for d in p.find_str("dims").split("x"))
            self.coords = tuple(int(c) for c in p.find_str("coords").split(","))
            if len(self.coords) != len(self.dims):
                raise ValueError(f"{name}: coords/dims rank mismatch")
            self.my_index = flatten(self.coords, self.dims)
            ports = []
            for d, size in enumerate(self.dims):
                if size > 1:
                    ports += [f"dim{d}_pos", f"dim{d}_neg"]
            ports += [f"local{i}" for i in range(self.locals_per_router)]
        elif self.kind == "fattree_leaf":
            self.leaf_index = p.find_int("index")
            self.spines = p.find_int("spines")
            ports = [f"up{j}" for j in range(self.spines)]
            ports += [f"local{i}" for i in range(self.locals_per_router)]
        elif self.kind == "fattree_spine":
            self.spine_index = p.find_int("index")
            self.leaves = p.find_int("leaves")
            self.down_ports = p.find_int("leaves")
            # endpoints per leaf: shared "locals" param carries down_ports
            # for leaves; spines learn it from the graph's leaf params via
            # "down_locals" (builder default) or fall back to 1.
            self.leaf_locals = p.find_int("down_locals", 0)
            ports = [f"down{i}" for i in range(self.leaves)]
        elif self.kind == "dragonfly":
            self.groups = p.find_int("groups")
            self.routers_per_group = p.find_int("routers_per_group")
            self.global_per_router = p.find_int("global_per_router")
            self.group = p.find_int("group")
            self.index = p.find_int("index")
            #: "minimal" | "valiant" — valiant sends each inter-group
            #: message through a random intermediate group, trading hop
            #: count for load balance on adversarial patterns.
            self.routing = p.find_str("routing", "minimal")
            if self.routing not in ("minimal", "valiant"):
                raise ValueError(f"{name}: unknown routing {self.routing!r}")
            ports = [f"l{j}" for j in range(self.routers_per_group)
                     if j != self.index]
            ports += [f"g{k}" for k in range(self.global_per_router)]
            ports += [f"local{i}" for i in range(self.locals_per_router)]
        elif self.kind == "crossbar":
            ports = [f"local{i}" for i in range(self.locals_per_router)]
        else:
            raise ValueError(f"{name}: unknown router kind {self.kind!r}")

        for port_name in ports:
            self.set_handler(port_name, self.on_message)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, dest_endpoint: int, event: Optional[NetMessage] = None) -> str:
        """Output port name for a destination endpoint index.

        ``event`` carries per-message routing state (Valiant's
        intermediate group) when the topology uses it.
        """
        if self.kind in ("torus", "mesh"):
            dest_router = dest_endpoint // self.locals_per_router
            if dest_router == self.my_index:
                return f"local{dest_endpoint % self.locals_per_router}"
            dest_coords = unflatten(dest_router, self.dims)
            wrap = self.kind == "torus"
            for d, size in enumerate(self.dims):
                step = torus_step(self.coords[d], dest_coords[d], size, wrap)
                if step == 0:
                    continue
                if size == 2:
                    # A 2-wide ring has a single physical link: the builder
                    # wires r(0).pos <-> r(1).neg, so the port to use is
                    # fixed by our own coordinate, not the direction.
                    return f"dim{d}_pos" if self.coords[d] == 0 else f"dim{d}_neg"
                return f"dim{d}_pos" if step > 0 else f"dim{d}_neg"
            raise AssertionError("unreachable: dest_router != my_index")
        if self.kind == "fattree_leaf":
            dest_leaf = dest_endpoint // self.locals_per_router
            if dest_leaf == self.leaf_index:
                return f"local{dest_endpoint % self.locals_per_router}"
            return f"up{dest_leaf % self.spines}"
        if self.kind == "fattree_spine":
            locals_per_leaf = self.leaf_locals or 1
            dest_leaf = dest_endpoint // locals_per_leaf
            return f"down{dest_leaf}"
        if self.kind == "dragonfly":
            return self._route_dragonfly(dest_endpoint, event)
        # crossbar
        return f"local{dest_endpoint}"

    def _route_dragonfly(self, dest_endpoint: int,
                         event: Optional[NetMessage] = None) -> str:
        """Dragonfly routing: minimal, or Valiant via a random group.

        Minimal: (local,) global, (local,) deliver — the global link
        toward an offset-``d`` group hangs off router ``(d-1)//h`` of
        this group (the builder's balanced wiring).

        Valiant: the ingress router draws a random intermediate group
        per message; the message routes minimally to that group first,
        then minimally to its destination — doubling worst-case hops
        but spreading adversarial traffic over all global links.
        """
        a, h, p = (self.routers_per_group, self.global_per_router,
                   self.locals_per_router)
        dest_router_global = dest_endpoint // p
        dest_group, dest_index = divmod(dest_router_global, a)

        if event is not None and self.routing == "valiant" \
                and dest_group != self.group:
            if event.via_group is None and event.hops == 0:
                # Ingress: pick the intermediate group (may be the
                # destination's own group = effectively minimal).
                choices = [g for g in range(self.groups) if g != self.group]
                event.via_group = int(self.rng.integers(0, len(choices)))
                event.via_group = choices[event.via_group]
            if event.via_group is not None and not event.via_done:
                if event.via_group == self.group:
                    event.via_done = True
                else:
                    return self._toward_group(event.via_group)
        elif event is not None and dest_group == self.group:
            event.via_done = True  # arrived via (or never needed) a detour

        if dest_group == self.group:
            if dest_index == self.index:
                return f"local{dest_endpoint % p}"
            return f"l{dest_index}"
        return self._toward_group(dest_group)

    def _toward_group(self, target_group: int) -> str:
        """Minimal next hop toward another group's gateway."""
        h = self.global_per_router
        d = (target_group - self.group) % self.groups
        gateway = (d - 1) // h
        if gateway == self.index:
            return f"g{(d - 1) % h}"
        return f"l{gateway}"

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def on_message(self, event) -> None:
        assert isinstance(event, NetMessage)
        out_port = self.route(event.dest, event)
        start = max(self.now + self.hop_latency,
                    self._port_free.get(out_port, 0))
        self.s_queue_wait.add(start - self.now)
        transfer = bytes_time(event.size, self.link_bw)
        done = start + transfer
        self._port_free[out_port] = done
        event.hops += 1
        self.s_bytes.add(event.size)
        if out_port.startswith("local"):
            self.s_delivered.add()
        else:
            self.s_forwarded.add()
        self.send(out_port, event, extra_delay=done - self.now)
