"""Network message events.

PySST models the interconnect at *message* granularity with
store-and-forward bandwidth serialisation per hop — appropriate for the
paper's studies, which concern injection bandwidth and message-count
scaling rather than flit-level router microarchitecture.
"""

from __future__ import annotations

from typing import Optional

from ..core.event import Event, IdSource
from ..core.units import SimTime

# Checkpointable global id stream (repro.ckpt snapshots/restores it).
_msg_ids = IdSource("network.msg_id")


class NetMessage(Event):
    """A point-to-point message between two network endpoints.

    ``src``/``dest`` are global endpoint indices (the attach-point
    numbering of :class:`repro.config.topology.Topology`).  ``tag`` is
    free-form application routing (e.g. "halo", "allreduce").
    """

    __slots__ = ("src", "dest", "size", "msg_id", "tag", "send_time", "hops",
                 "via_group", "via_done")

    def __init__(self, src: int, dest: int, size: int, tag: str = "",
                 send_time: SimTime = 0):
        self.src = src
        self.dest = dest
        self.size = size
        self.msg_id = next(_msg_ids)
        self.tag = tag
        self.send_time = send_time
        self.hops = 0
        #: Valiant routing state (dragonfly): the randomly chosen
        #: intermediate group, set by the ingress router; ``via_done``
        #: flips once the message has visited it.
        self.via_group = None
        self.via_done = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"NetMessage(#{self.msg_id} {self.src}->{self.dest} "
                f"{self.size}B tag={self.tag!r} hops={self.hops})")
