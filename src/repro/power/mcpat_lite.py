"""McPAT-lite: analytic core power and area model.

The paper's SST study used McPAT for processor power; we reproduce the
first-order scaling behaviour it would report for an in-order core
swept across issue widths:

* **super-linear area/energy growth with width** — multi-ported
  register files, wakeup/select and bypass networks scale at roughly
  O(w^1.8) in area and energy per access (Zyuban's thesis, the paper's
  ref [43]);
* **dynamic energy per instruction** grows mildly with width (wider
  structures are touched per instruction even when issue slots go
  empty);
* **static (leakage) power proportional to area**, hence also ~w^1.8.

Defaults are calibrated so that an 8-wide core burns ~2.2x the power of
a single-issue core while running ~1.8x faster on a partially
memory-bound miniapp — the Fig. 12 operating point ("78% faster, 123%
more power").
"""

from __future__ import annotations

from dataclasses import dataclass

#: exponent for width-scaled structures (regfile, bypass) — ref [43]
WIDTH_EXPONENT = 1.8


@dataclass(frozen=True)
class CorePowerParams:
    """Tunable coefficients of the core power/area model."""

    #: dynamic energy per retired instruction at reference width 1 (J)
    epi_base_j: float = 1.0e-9
    #: mild width dependence of per-instruction energy
    epi_width_exponent: float = 0.12
    #: width-independent static power (uncore share), W
    static_base_w: float = 1.0
    #: coefficient of the w^1.8 leakage term, W
    static_width_w: float = 0.055
    #: reference frequency for the dynamic term (dynamic power ~ f)
    ref_freq_hz: float = 2.0e9
    #: fixed (uncore, caches, IO) die area, mm^2
    area_base_mm2: float = 40.0
    #: coefficient of the w^1.8 core-area term, mm^2
    area_width_mm2: float = 3.0


class CorePowerModel:
    """Power/area estimates for one core configuration."""

    def __init__(self, issue_width: int, freq_hz: float = 2.0e9,
                 params: CorePowerParams = CorePowerParams()):
        if issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if freq_hz <= 0:
            raise ValueError("freq_hz must be positive")
        self.width = issue_width
        self.freq_hz = freq_hz
        self.params = params

    # -- energy / power --------------------------------------------------
    def energy_per_instruction_j(self) -> float:
        """Dynamic energy per retired instruction (frequency-independent
        to first order; voltage scaling is out of scope)."""
        p = self.params
        return p.epi_base_j * (self.width ** p.epi_width_exponent)

    def static_power_w(self) -> float:
        p = self.params
        return p.static_base_w + p.static_width_w * (self.width ** WIDTH_EXPONENT)

    def dynamic_power_w(self, instructions_per_second: float) -> float:
        return self.energy_per_instruction_j() * instructions_per_second

    def total_power_w(self, instructions_per_second: float) -> float:
        return self.dynamic_power_w(instructions_per_second) + self.static_power_w()

    def energy_j(self, instructions: float, elapsed_s: float) -> float:
        """Total core energy of a run: dynamic per instruction + leakage."""
        return (self.energy_per_instruction_j() * instructions
                + self.static_power_w() * elapsed_s)

    # -- area -------------------------------------------------------------
    def area_mm2(self) -> float:
        p = self.params
        return p.area_base_mm2 + p.area_width_mm2 * (self.width ** WIDTH_EXPONENT)


def register_file_energy_scale(width: int) -> float:
    """Relative register-file energy per access vs a 1-wide core: O(w^1.8).

    Exposed separately because it is the headline scaling law quoted in
    the paper ("register file energy per access and area scales at
    roughly O(w^1.8)").
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    return float(width) ** WIDTH_EXPONENT
