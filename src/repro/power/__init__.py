"""PySST power, area and cost model library.

McPAT-lite core power/area scaling (:mod:`~repro.power.mcpat_lite`),
wafer-economics die cost and $/GB memory cost
(:mod:`~repro.power.cost`), and the design-point aggregation that turns
runs into performance / perf-per-Watt / perf-per-Dollar rows
(:mod:`~repro.power.energy`).
"""

from .cost import (WaferParams, die_cost_dollars, dies_per_wafer,
                   memory_cost_dollars, poisson_yield, system_cost_dollars)
from .energy import DesignPoint, evaluate_design_point
from .mcpat_lite import (WIDTH_EXPONENT, CorePowerModel, CorePowerParams,
                         register_file_energy_scale)
from .dvfs import (DvfsParams, DvfsPoint, energy_optimal_frequency,
                   evaluate_frequency, frequency_sweep)
from .thermal import (OperatingPoint, ThermalModel, ThermalParams,
                      ThermalRunaway)

__all__ = [
    "CorePowerModel",
    "CorePowerParams",
    "DesignPoint",
    "DvfsParams",
    "DvfsPoint",
    "OperatingPoint",
    "ThermalModel",
    "ThermalParams",
    "ThermalRunaway",
    "WIDTH_EXPONENT",
    "WaferParams",
    "die_cost_dollars",
    "dies_per_wafer",
    "energy_optimal_frequency",
    "evaluate_design_point",
    "evaluate_frequency",
    "frequency_sweep",
    "memory_cost_dollars",
    "poisson_yield",
    "register_file_energy_scale",
    "system_cost_dollars",
]
