"""System-level energy/efficiency aggregation.

Combines the core power model (:mod:`~repro.power.mcpat_lite`), the
DRAM energy bookkeeping carried by :class:`~repro.memory.dram.DRAMModel`
and the cost models (:mod:`~repro.power.cost`) into the three headline
metrics of the paper's design-space study: performance, performance per
Watt, and performance per Dollar (Figs. 10-12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.units import SimTime
from ..memory.dram import DRAMModel
from .cost import WaferParams, system_cost_dollars
from .mcpat_lite import CorePowerModel, CorePowerParams


@dataclass
class DesignPoint:
    """One (core x memory) configuration's measured outcome."""

    name: str
    issue_width: int
    memory_technology: str
    runtime_ps: SimTime
    instructions: int
    core_power_w: float
    dram_power_w: float
    system_cost_dollars: float

    @property
    def runtime_s(self) -> float:
        return self.runtime_ps / 1e12

    @property
    def performance(self) -> float:
        """Work per second (instructions/s) — higher is better."""
        return self.instructions / self.runtime_s if self.runtime_s > 0 else 0.0

    @property
    def total_power_w(self) -> float:
        return self.core_power_w + self.dram_power_w

    @property
    def perf_per_watt(self) -> float:
        return self.performance / self.total_power_w if self.total_power_w else 0.0

    @property
    def perf_per_dollar(self) -> float:
        return (self.performance / self.system_cost_dollars
                if self.system_cost_dollars else 0.0)

    @property
    def energy_to_solution_j(self) -> float:
        return self.total_power_w * self.runtime_s


def evaluate_design_point(
    name: str,
    *,
    issue_width: int,
    freq_hz: float,
    memory_technology: str,
    runtime_ps: SimTime,
    instructions: int,
    dram: DRAMModel,
    memory_gb: float = 4.0,
    core_params: CorePowerParams = CorePowerParams(),
    wafer: WaferParams = WaferParams(),
    n_cores: int = 1,
) -> DesignPoint:
    """Fold one run's measurements into a :class:`DesignPoint`.

    ``dram`` must be the model instance the run actually exercised (its
    dynamic-energy counters are read here); ``runtime_ps`` and
    ``instructions`` come from the core's statistics.
    """
    if runtime_ps <= 0:
        raise ValueError("runtime must be positive")
    core_model = CorePowerModel(issue_width, freq_hz, core_params)
    runtime_s = runtime_ps / 1e12
    ips = instructions / runtime_s
    core_power = core_model.total_power_w(ips / n_cores) * n_cores
    dram_power = dram.average_power_w(runtime_ps)
    cost = system_cost_dollars(core_model.area_mm2() * n_cores,
                               memory_technology, memory_gb, wafer)
    return DesignPoint(
        name=name,
        issue_width=issue_width,
        memory_technology=memory_technology,
        runtime_ps=runtime_ps,
        instructions=instructions,
        core_power_w=core_power,
        dram_power_w=dram_power,
        system_cost_dollars=cost,
    )
