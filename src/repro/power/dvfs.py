"""Dynamic voltage/frequency scaling (DVFS).

Software-directed power management is one of the knobs the paper's
author list works on (Pedretti: "software-directed power management
strategies") and the energy argument of §5.2 ("wider cores ... require
much more energy to reach a solution") extends naturally to frequency:
for *bandwidth-bound* workloads, raising the clock burns V²·f dynamic
power without buying proportional speed, so the energy-optimal
frequency sits well below f_max — while compute-bound workloads prefer
race-to-halt.  ``benchmarks/bench_ext_dvfs.py`` quantifies exactly that
contrast on the abstract core model.

The model: voltage tracks frequency linearly between (f_min, v_min) and
(f_max, v_max); dynamic energy scales with V², dynamic power with V²·f,
leakage roughly with V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.units import SimTime
from ..memory.dram import DRAMModel
from ..processor.core import CoreConfig, CoreTimingModel
from ..processor.mix import workload as lookup_workload
from .mcpat_lite import CorePowerModel, CorePowerParams


@dataclass(frozen=True)
class DvfsParams:
    """The voltage/frequency operating range of a core."""

    f_min_hz: float = 1.0e9
    f_max_hz: float = 3.2e9
    v_min: float = 0.75
    v_max: float = 1.20
    #: reference point the CorePowerParams coefficients were fit at
    f_ref_hz: float = 2.0e9

    def __post_init__(self):
        if not 0 < self.f_min_hz < self.f_max_hz:
            raise ValueError("need 0 < f_min < f_max")
        if not 0 < self.v_min <= self.v_max:
            raise ValueError("need 0 < v_min <= v_max")
        if not self.f_min_hz <= self.f_ref_hz <= self.f_max_hz:
            raise ValueError("f_ref must lie in [f_min, f_max]")

    def voltage(self, freq_hz: float) -> float:
        """Linear V(f) interpolation; clamps outside the range."""
        if freq_hz <= self.f_min_hz:
            return self.v_min
        if freq_hz >= self.f_max_hz:
            return self.v_max
        alpha = (freq_hz - self.f_min_hz) / (self.f_max_hz - self.f_min_hz)
        return self.v_min + alpha * (self.v_max - self.v_min)

    def dynamic_energy_scale(self, freq_hz: float) -> float:
        """Per-instruction dynamic energy ~ V^2 relative to the reference."""
        return (self.voltage(freq_hz) / self.voltage(self.f_ref_hz)) ** 2

    def static_power_scale(self, freq_hz: float) -> float:
        """Leakage ~ V relative to the reference."""
        return self.voltage(freq_hz) / self.voltage(self.f_ref_hz)


@dataclass
class DvfsPoint:
    """One frequency's outcome for a (workload, width, memory) design."""

    freq_hz: float
    runtime_ps: SimTime
    core_energy_j: float
    dram_energy_j: float

    @property
    def runtime_s(self) -> float:
        return self.runtime_ps / 1e12

    @property
    def total_energy_j(self) -> float:
        return self.core_energy_j + self.dram_energy_j

    @property
    def energy_delay_product(self) -> float:
        return self.total_energy_j * self.runtime_s


def evaluate_frequency(workload_name: str, freq_hz: float, *,
                       issue_width: int = 4,
                       memory_technology: str = "DDR3-1333",
                       instructions: int = 2_000_000,
                       dvfs: DvfsParams = DvfsParams(),
                       core_params: CorePowerParams = CorePowerParams()) -> DvfsPoint:
    """Runtime and energy of one operating frequency (analytic path)."""
    spec = lookup_workload(workload_name)
    model = CoreTimingModel(CoreConfig(issue_width=issue_width,
                                       freq_hz=freq_hz), spec)
    dram = DRAMModel(memory_technology)
    runtime_ps = model.standalone_runtime_ps(instructions, dram)
    runtime_s = runtime_ps / 1e12

    power_model = CorePowerModel(issue_width, freq_hz, core_params)
    dynamic = (power_model.energy_per_instruction_j() * instructions
               * dvfs.dynamic_energy_scale(freq_hz))
    static = (power_model.static_power_w() * runtime_s
              * dvfs.static_power_scale(freq_hz))

    # DRAM: demand traffic energy + background over the (frequency-
    # dependent) runtime.
    timing = model.block(instructions, dram.tech)
    tech = dram.tech
    dram_dynamic = timing.dram_bytes * 8 * tech.access_energy_pj_per_bit * 1e-12
    dram_background = tech.background_power_w * runtime_s
    return DvfsPoint(
        freq_hz=freq_hz,
        runtime_ps=runtime_ps,
        core_energy_j=dynamic + static,
        dram_energy_j=dram_dynamic + dram_background,
    )


def frequency_sweep(workload_name: str, freqs_hz, **kwargs) -> Dict[float, DvfsPoint]:
    """Evaluate a list of operating frequencies."""
    return {f: evaluate_frequency(workload_name, f, **kwargs)
            for f in freqs_hz}


def energy_optimal_frequency(sweep: Dict[float, DvfsPoint]) -> float:
    """The frequency minimising total energy-to-solution."""
    if not sweep:
        raise ValueError("empty sweep")
    return min(sweep, key=lambda f: sweep[f].total_energy_j)
