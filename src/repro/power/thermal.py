"""Temperature and leakage modelling (paper §5, objective functions).

The paper's prediction section argues that "accurate temperature
modeling is required for accurate power and energy modeling due to its
effect on leakage current", and that temperature further degrades
reliability (electromigration, dielectric breakdown, thermal cycling).
This module supplies the standard first-order forms of both couplings:

* a lumped **thermal RC** node: die temperature follows
  ``C_th dT/dt = P - (T - T_amb) / R_th``;
* **temperature-dependent leakage**: ``P_leak(T) = P_leak(T0) *
  exp(beta * (T - T0))`` — the exponential subthreshold form;
* the **closed loop**: leakage heats the die, heat raises leakage; the
  steady state is a fixed point, and its absence is *thermal runaway*;
* an **Arrhenius acceleration factor** mapping temperature to failure
  rate, which plugs straight into :mod:`repro.resilience`'s MTBF —
  closing the paper's temperature->reliability arrow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617e-5


@dataclass(frozen=True)
class ThermalParams:
    """Lumped die+package thermal model parameters."""

    ambient_c: float = 40.0
    #: junction-to-ambient thermal resistance, degC per Watt
    r_thermal_c_per_w: float = 0.8
    #: thermal capacitance, Joules per degC (sets the time constant)
    c_thermal_j_per_c: float = 25.0
    #: leakage power at the reference temperature, W
    leakage_ref_w: float = 1.0
    reference_c: float = 60.0
    #: exponential leakage sensitivity, 1/degC (typ. 0.01-0.04)
    leakage_beta: float = 0.02
    #: junction temperature limit (throttle/shutdown), degC
    t_max_c: float = 105.0

    def __post_init__(self):
        if self.r_thermal_c_per_w <= 0 or self.c_thermal_j_per_c <= 0:
            raise ValueError("thermal R and C must be positive")
        if self.leakage_ref_w < 0 or self.leakage_beta < 0:
            raise ValueError("leakage parameters must be non-negative")

    @property
    def time_constant_s(self) -> float:
        return self.r_thermal_c_per_w * self.c_thermal_j_per_c

    def leakage_w(self, temperature_c: float) -> float:
        """Exponential subthreshold leakage at a junction temperature."""
        return self.leakage_ref_w * math.exp(
            self.leakage_beta * (temperature_c - self.reference_c)
        )


class ThermalRunaway(RuntimeError):
    """No stable operating point exists for the given dynamic power."""


@dataclass
class OperatingPoint:
    """A converged electro-thermal steady state."""

    temperature_c: float
    dynamic_power_w: float
    leakage_power_w: float

    @property
    def total_power_w(self) -> float:
        return self.dynamic_power_w + self.leakage_power_w


class ThermalModel:
    """Transient and steady-state solutions of the coupled system."""

    def __init__(self, params: ThermalParams = ThermalParams()):
        self.params = params

    # -- steady state -----------------------------------------------------
    def steady_state(self, dynamic_power_w: float,
                     max_iterations: int = 200,
                     tolerance_c: float = 1e-6) -> OperatingPoint:
        """Fixed point of T = T_amb + R*(P_dyn + P_leak(T)).

        Raises :class:`ThermalRunaway` if the iteration diverges past
        ``t_max_c`` — leakage growth outrunning conduction.
        """
        if dynamic_power_w < 0:
            raise ValueError("dynamic power must be non-negative")
        p = self.params
        temperature = p.ambient_c + p.r_thermal_c_per_w * dynamic_power_w
        for _ in range(max_iterations):
            leakage = p.leakage_w(temperature)
            new_temperature = p.ambient_c + p.r_thermal_c_per_w * (
                dynamic_power_w + leakage
            )
            # Damped update keeps the iteration stable near criticality.
            new_temperature = 0.5 * temperature + 0.5 * new_temperature
            if new_temperature > p.t_max_c * 2:
                raise ThermalRunaway(
                    f"no operating point below {p.t_max_c}C for "
                    f"{dynamic_power_w:.1f}W dynamic"
                )
            if abs(new_temperature - temperature) < tolerance_c:
                temperature = new_temperature
                break
            temperature = new_temperature
        else:
            raise ThermalRunaway("fixed-point iteration did not converge")
        if temperature > p.t_max_c:
            raise ThermalRunaway(
                f"steady state {temperature:.1f}C exceeds the "
                f"{p.t_max_c}C junction limit"
            )
        return OperatingPoint(
            temperature_c=temperature,
            dynamic_power_w=dynamic_power_w,
            leakage_power_w=p.leakage_w(temperature),
        )

    # -- transient ----------------------------------------------------------
    def transient(self, dynamic_power_w: float, duration_s: float,
                  dt_s: float = 0.05,
                  initial_c: Optional[float] = None) -> List[Tuple[float, float]]:
        """Explicit-Euler temperature trajectory [(t, T), ...]."""
        if dt_s <= 0 or duration_s <= 0:
            raise ValueError("durations must be positive")
        p = self.params
        temperature = p.ambient_c if initial_c is None else initial_c
        trace = [(0.0, temperature)]
        steps = int(duration_s / dt_s)
        for i in range(1, steps + 1):
            power = dynamic_power_w + p.leakage_w(temperature)
            d_temp = (power - (temperature - p.ambient_c)
                      / p.r_thermal_c_per_w) / p.c_thermal_j_per_c
            temperature += d_temp * dt_s
            trace.append((i * dt_s, temperature))
        return trace

    # -- reliability coupling -------------------------------------------------
    @staticmethod
    def arrhenius_acceleration(temperature_c: float,
                               reference_c: float = 60.0,
                               activation_ev: float = 0.7) -> float:
        """Failure-rate acceleration factor at ``temperature_c``.

        AF = exp( Ea/k * (1/T_ref - 1/T) ) with temperatures in Kelvin;
        AF > 1 means failures come faster than at the reference.
        """
        t_k = temperature_c + 273.15
        ref_k = reference_c + 273.15
        if t_k <= 0 or ref_k <= 0:
            raise ValueError("temperatures must exceed absolute zero")
        return math.exp(activation_ev / BOLTZMANN_EV * (1.0 / ref_k - 1.0 / t_k))

    def derated_mtbf_s(self, nominal_mtbf_s: float,
                       temperature_c: float,
                       reference_c: float = 60.0) -> float:
        """MTBF at temperature: nominal / Arrhenius acceleration."""
        if nominal_mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        return nominal_mtbf_s / self.arrhenius_acceleration(
            temperature_c, reference_c
        )
