"""Chip and memory cost models (the IC Knowledge / DRAMeXchange substitute).

Die cost follows the standard wafer-economics chain the paper alludes
to ("as chip area increases the number of chips that can fit on a wafer
decreases... larger chips tend to have much lower manufacturing
yields"):

* dies per wafer from area and wafer diameter (with edge loss);
* yield from a Poisson defect model ``Y = exp(-D0 * A)``;
* die cost = wafer cost / (dies per wafer * yield) + packaging/test.

Memory cost is $/GB by technology, standing in for the DRAM Spot Price
Index (www.dramexchange.com) feed the paper used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..memory.dram import DRAMTech, tech as lookup_tech


@dataclass(frozen=True)
class WaferParams:
    """Fabrication economics parameters."""

    wafer_diameter_mm: float = 300.0
    wafer_cost_dollars: float = 5000.0
    #: defects per mm^2 (Poisson model)
    defect_density_per_mm2: float = 0.0025
    packaging_test_dollars: float = 20.0
    #: fraction of wafer area unusable at the edge
    edge_loss_fraction: float = 0.05


def dies_per_wafer(area_mm2: float, wafer: WaferParams = WaferParams()) -> int:
    """Gross dies per wafer (area-based with edge loss)."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    radius = wafer.wafer_diameter_mm / 2.0
    usable = math.pi * radius * radius * (1.0 - wafer.edge_loss_fraction)
    # Subtract the classic perimeter correction for rectangular dies.
    per_wafer = usable / area_mm2 - math.pi * wafer.wafer_diameter_mm / math.sqrt(
        2.0 * area_mm2
    )
    return max(1, int(per_wafer))


def poisson_yield(area_mm2: float, wafer: WaferParams = WaferParams()) -> float:
    """Fraction of dies that work: ``exp(-D0 * A)``."""
    if area_mm2 <= 0:
        raise ValueError("die area must be positive")
    return math.exp(-wafer.defect_density_per_mm2 * area_mm2)


def die_cost_dollars(area_mm2: float, wafer: WaferParams = WaferParams()) -> float:
    """Cost of one good, packaged die."""
    good_dies = dies_per_wafer(area_mm2, wafer) * poisson_yield(area_mm2, wafer)
    return wafer.wafer_cost_dollars / good_dies + wafer.packaging_test_dollars


def memory_cost_dollars(technology: str, capacity_gb: float) -> float:
    """Capacity cost at the technology's $/GB spot price."""
    if capacity_gb < 0:
        raise ValueError("capacity must be non-negative")
    t: DRAMTech = lookup_tech(technology) if isinstance(technology, str) else technology
    return t.cost_per_gb * capacity_gb


def system_cost_dollars(core_area_mm2: float, memory_technology: str,
                        memory_gb: float,
                        wafer: WaferParams = WaferParams()) -> float:
    """Processor die + memory cost for one node (the Fig. 11 denominator)."""
    return die_cost_dollars(core_area_mm2, wafer) + memory_cost_dollars(
        memory_technology, memory_gb
    )
