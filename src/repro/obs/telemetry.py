"""Run telemetry: a JSONL metrics stream plus a final run manifest.

The :class:`TelemetryRecorder` attaches to a sequential
:class:`~repro.core.simulation.Simulation` (via the engine heartbeat
hook) or a :class:`~repro.core.parallel.ParallelSimulation` (via the
epoch observer) and appends one JSON object per line while the run is
in flight:

* ``{"kind": "run_start", ...}``   — once, at attach;
* ``{"kind": "sample", ...}``      — periodic engine samples
  (sequential runs: every N executed events);
* ``{"kind": "epoch", ...}``       — per conservative-sync epoch
  (parallel runs: window, per-rank events, barrier wait, exchange);
* ``{"kind": "run_end", ...}``     — once, from :meth:`finalize`.

``finalize`` additionally builds the run manifest
(:mod:`repro.obs.manifest`) and writes it next to the stream, giving
every run a machine-readable perf record.
"""

from __future__ import annotations

import json
import time as _wall_time
from pathlib import Path
from typing import IO, Any, Dict, Optional, Union

from ..core.parallel import EpochInfo, ParallelSimulation
from ..core.simulation import Simulation
from .manifest import build_manifest, write_manifest

#: bump when a stream field changes meaning.
METRICS_SCHEMA = "repro-metrics/1"


class TelemetryRecorder:
    """Record a JSONL metrics stream and a run manifest for one run.

    Parameters
    ----------
    metrics_path:
        Where the JSONL stream goes (path or open text stream); ``None``
        keeps samples in memory only (``records``).
    manifest_path:
        Where :meth:`finalize` writes the manifest JSON.  Defaults to
        ``<metrics_path>.manifest.json`` when a metrics *path* was
        given; ``None`` otherwise (the manifest dict is still returned).
    sample_every_events:
        Sequential runs: engine heartbeat period in executed events.
    min_interval_s:
        Drop samples/epoch records arriving sooner than this many
        wall-clock seconds after the previous one (0 = keep all).
    """

    def __init__(self, metrics_path: Union[str, Path, IO[str], None] = None,
                 manifest_path: Union[str, Path, None] = None, *,
                 sample_every_events: int = 5_000,
                 min_interval_s: float = 0.0):
        self.sample_every_events = sample_every_events
        self.min_interval_s = min_interval_s
        self.records = []  # in-memory copy when no sink was given
        self.manifest: Optional[Dict[str, Any]] = None
        self._owns_sink = False
        self._sink: Optional[IO[str]] = None
        self._path: Optional[Path] = None
        if isinstance(metrics_path, (str, Path)):
            path = Path(metrics_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(path, "w", encoding="utf-8")
            self._owns_sink = True
            self._path = path
            if manifest_path is None:
                manifest_path = path.with_name(path.name + ".manifest.json")
        elif metrics_path is not None:
            self._sink = metrics_path
        self.manifest_path = Path(manifest_path) if manifest_path is not None else None
        self._target: Union[Simulation, ParallelSimulation, None] = None
        self._plan = None
        self._t0 = 0.0
        self._last_wall = 0.0
        self._last_events = 0
        self._last_sim: int = 0

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------
    def attach(self, target: Union[Simulation, ParallelSimulation]) -> "TelemetryRecorder":
        """Start observing ``target``; emits the ``run_start`` record."""
        if self._target is not None:
            raise RuntimeError("TelemetryRecorder is already attached")
        self._target = target
        self._t0 = _wall_time.perf_counter()
        self._last_wall = 0.0
        record: Dict[str, Any] = {
            "kind": "run_start",
            "schema": METRICS_SCHEMA,
            "mono_s": self._t0,
            "created_unix": _wall_time.time(),
        }
        if isinstance(target, ParallelSimulation):
            target.add_epoch_observer(self._on_epoch)
            record["mode"] = "parallel"
            record["ranks"] = target.num_ranks
            record["backend"] = target.backend
            record["sync"] = target.sync_strategy.describe()
            # Join the rank plan so processes-backend workers write
            # per-rank shards next to the stream (or, with no file
            # sink, ship their records back over the pipes).
            from .rank_stream import ensure_rank_plan
            self._plan = ensure_rank_plan(target)
            if self._path is not None:
                self._plan.metrics_base = self._path
            else:
                self._plan.register_recorder(self)
            self._plan.heartbeat_every = self.sample_every_events
        else:
            target.add_heartbeat(self._on_heartbeat,
                                 every_events=self.sample_every_events)
            record["mode"] = "sequential"
            record["ranks"] = 1
            record["backend"] = "serial"
        self._emit(record)
        return self

    def detach(self) -> None:
        target = self._target
        self._target = None
        if isinstance(target, ParallelSimulation):
            target.remove_epoch_observer(self._on_epoch)
        elif isinstance(target, Simulation):
            target.remove_heartbeat(self._on_heartbeat)
        if self._plan is not None:
            # Shard paths stay on the plan (post-hoc merge reads them);
            # only the live pipe-record routing is torn down.
            self._plan.unregister_recorder(self)
            self._plan = None

    # ------------------------------------------------------------------
    # stream records
    # ------------------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        if self._sink is not None:
            self._sink.write(json.dumps(record) + "\n")
            self._sink.flush()
        else:
            self.records.append(record)

    def emit_record(self, record: Dict[str, Any]) -> None:
        """Append an externally produced record to this stream.

        The delivery path for rank-local records shipped over the
        processes backend's pipes when the recorder has no file sink
        (:meth:`RankStreamPlan.deliver` routes them here); they appear
        inline in ``records`` alongside the parent's own samples.
        """
        self._emit(record)

    def _on_heartbeat(self, sim: Simulation) -> None:
        wall = _wall_time.perf_counter() - self._t0
        if wall - self._last_wall < self.min_interval_s:
            return
        events = sim.events_executed
        d_wall = wall - self._last_wall
        d_events = events - self._last_events
        d_sim = sim.now - self._last_sim
        record: Dict[str, Any] = {
            "kind": "sample",
            "wall_s": wall,
            "sim_ps": sim.now,
            "events": events,
            "pending": sim.pending_events,
            "events_per_s": d_events / d_wall if d_wall > 0 else 0.0,
            "sim_ps_per_s": d_sim / d_wall if d_wall > 0 else 0.0,
        }
        # Declared-state gauges (``state(..., gauge=True)``) ride along
        # on every sample, keyed ``<component>.<attribute>``.
        gauges: Dict[str, float] = {}
        for comp in sim._components.values():
            for attr, value in comp.telemetry_gauges().items():
                gauges[f"{comp.name}.{attr}"] = value
        if gauges:
            record["gauges"] = gauges
        self._emit(record)
        self._last_wall = wall
        self._last_events = events
        self._last_sim = sim.now

    def _on_epoch(self, info: EpochInfo) -> None:
        wall = _wall_time.perf_counter() - self._t0
        if wall - self._last_wall < self.min_interval_s:
            return
        self._emit({
            "kind": "epoch",
            "wall_s": wall,
            "mono_s": self._t0 + wall,
            "epoch": info.index,
            "window_ps": [info.window_start, info.window_end],
            "sim_ps": info.now,
            "events": info.events_total,
            "exchanged": info.exchanged_events,
            "exchange_bytes": info.exchange_bytes,
            "exchange_s": info.exchange_seconds,
            "epoch_wall_s": info.wall_seconds,
            "per_rank_events": info.per_rank_events,
            "per_rank_wall_s": info.per_rank_wall,
            "per_rank_barrier_wait_s": info.per_rank_barrier_wait,
        })
        self._last_wall = wall

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def finalize(self, result, *, graph=None,
                 invocation: Optional[Dict[str, Any]] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Emit the ``run_end`` record, write the manifest, detach.

        Returns the manifest dict (also stored as ``self.manifest``).
        """
        target = self._target
        if target is None:
            raise RuntimeError("TelemetryRecorder is not attached")
        manifest = build_manifest(target, result, graph=graph,
                                  invocation=invocation, extra=extra,
                                  telemetry=self._telemetry_info(target))
        self._emit({
            "kind": "run_end",
            "wall_s": _wall_time.perf_counter() - self._t0,
            "run": result.as_dict(),
        })
        self.detach()
        if self.manifest_path is not None:
            write_manifest(manifest, self.manifest_path)
        if self._sink is not None and self._owns_sink:
            self._sink.close()
            self._sink = None
        self.manifest = manifest
        return manifest

    def _telemetry_info(self, target) -> Dict[str, Any]:
        """The manifest's ``telemetry`` section: where the stream went,
        which backend produced it, and any per-rank shard inventory."""
        info: Dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "metrics": str(self._path) if self._path is not None else None,
            "backend": (target.backend
                        if isinstance(target, ParallelSimulation) else "serial"),
            "ranks": (target.num_ranks
                      if isinstance(target, ParallelSimulation) else 1),
        }
        if self._plan is not None:
            shards = [p for p in self._plan.shard_paths(info["ranks"])
                      if Path(p).exists()]
            info["rank_shards"] = shards
            if self._plan.rank_reports:
                info["rank_records"] = {
                    str(rank): report for rank, report in
                    sorted(self._plan.rank_reports.items())
                }
            if self._plan.live_path is not None:
                info["live_segment"] = self._plan.live_path
        live = getattr(target, "live", None)
        if live is not None and "live_segment" not in info:
            info["live_segment"] = str(live.path)
        return info

    def __enter__(self) -> "TelemetryRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._target is not None:
            self.detach()
        if self._sink is not None and self._owns_sink:
            self._sink.close()
            self._sink = None
