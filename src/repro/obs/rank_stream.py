"""Per-rank telemetry streams for the processes execution backend.

The parent process of a ``--backend processes`` run cannot observe
per-event activity inside the forked rank workers: observer closures
inherited at fork would record into worker memory that dies with the
worker.  This module is the bridge:

* :class:`RankStreamPlan` — the parent-side registry.  Instruments that
  know how to survive the process boundary (telemetry recorder, handler
  profiler, Chrome trace exporter) register themselves here via
  :func:`ensure_rank_plan`; the plan rides the fork into every worker.
* :class:`RankRecorder` — the worker-side re-attachment.  Created by
  ``ProcessesBackend._worker_main`` after the parent-bound observers
  are stripped, it writes one JSONL shard per rank
  (``<metrics>.rank<k>``) or, with no metrics path, ships bounded
  record batches back over the existing pipes alongside the
  :class:`~repro.core.backends.RankStep` results.  Span-profile buckets
  and rank counters harvest back to the parent with the final
  statistics payload.

Shard record kinds (schema ``repro-rank-stream/1``, one JSON object per
line): ``rank_start``, ``rank_epoch`` (one per conservative-sync epoch
window executed on the rank), ``rank_sample`` (heartbeat-driven engine
samples), ``span`` (per-handler wall-time rows, only when a Chrome
trace exporter asked for them), ``rank_end``.  All wall-clock fields
named ``mono_s`` are raw ``time.perf_counter()`` readings —
CLOCK_MONOTONIC on Linux, comparable across the rank processes of one
run — which is what lets :mod:`repro.obs.merge` line the per-rank
streams up on a single timeline.
"""

from __future__ import annotations

import json
import os
import time as _wall_time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from .profiler import attribute_event

if TYPE_CHECKING:  # pragma: no cover
    from ..core.parallel import ParallelSimulation

#: bump when a shard record field changes meaning.
RANK_STREAM_SCHEMA = "repro-rank-stream/1"

#: worker profile bucket: (component, handler, event_type) -> [count, timed, wall]
RankBuckets = Dict[Tuple[str, str, str], List[float]]


def rank_shard_path(metrics_base: Union[str, Path], rank: int) -> Path:
    """The JSONL shard path for ``rank``: ``<metrics>.rank<k>``."""
    base = Path(metrics_base)
    return base.with_name(f"{base.name}.rank{rank}")


def ensure_rank_plan(psim: "ParallelSimulation") -> "RankStreamPlan":
    """The plan attached to ``psim``, creating an empty one if needed."""
    plan = getattr(psim, "rank_plan", None)
    if plan is None:
        plan = RankStreamPlan()
        psim.rank_plan = plan
    return plan


class RankStreamPlan:
    """What each forked rank worker should re-attach, and where results go.

    Parent-side instruments register their needs before the run; the
    plan is inherited at fork, each worker builds a
    :class:`RankRecorder` from it, and the parent routes everything
    that comes back (pipe batches mid-run, profile buckets and rank
    summaries at finalize) to the registered instruments.
    """

    def __init__(self) -> None:
        #: metrics path of the owning TelemetryRecorder; shards land at
        #: ``<metrics_base>.rank<k>``.  None = no shard files.
        self.metrics_base: Optional[Path] = None
        #: events between rank_sample heartbeat records inside a worker.
        self.heartbeat_every: int = 5_000
        #: write per-handler span rows (set by ChromeTraceExporter).
        self.span_records: bool = False
        #: hard cap on span rows per rank; overflow is counted, not kept.
        self.span_limit: int = 200_000
        #: accumulate (component, handler, event type) wall-time buckets
        #: worker-side and merge them into registered profilers.
        self.profile: bool = False
        #: max records shipped over the pipe per epoch (shard-less mode).
        self.batch_limit: int = 512
        # --- live plane (repro.obs.live) ------------------------------
        #: live segment path; workers re-open it by path (the mmap file
        #: survives the fork) and own their rank slot.  None = no live
        #: publishing inside workers.
        self.live_path: Optional[str] = None
        #: worker-side sampler republish period (seconds).
        self.live_interval_s: float = 0.25
        #: when set, workers register the SIGUSR1 faulthandler stack-dump
        #: handler into ``<live_dump_base>.stack.rank<k>`` at startup so
        #: the stall watchdog can extract stacks from hung workers.
        self.live_dump_base: Optional[str] = None
        # --- causal tracing (repro.obs.causal) ------------------------
        #: when set, each worker attaches a CausalTracer writing
        #: ``<causal_base>.causal.rank<k>``.  None = no capture.
        self.causal_base: Optional[str] = None
        self._profilers: List[Any] = []
        self._recorders: List[Any] = []
        self._exporters: List[Any] = []
        #: per-rank summaries harvested at finalize: rank -> dict.
        self.rank_reports: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # parent-side registration (instruments call these)
    # ------------------------------------------------------------------
    def register_profiler(self, profiler: Any) -> None:
        if profiler not in self._profilers:
            self._profilers.append(profiler)
        self.profile = True

    def unregister_profiler(self, profiler: Any) -> None:
        if profiler in self._profilers:
            self._profilers.remove(profiler)
        self.profile = bool(self._profilers)

    def register_recorder(self, recorder: Any) -> None:
        """A TelemetryRecorder with a *stream* sink: rank records are
        shipped over the pipes and emitted inline into its stream."""
        if recorder not in self._recorders:
            self._recorders.append(recorder)

    def unregister_recorder(self, recorder: Any) -> None:
        if recorder in self._recorders:
            self._recorders.remove(recorder)

    def register_exporter(self, exporter: Any) -> None:
        if exporter not in self._exporters:
            self._exporters.append(exporter)
        self.span_records = True

    def unregister_exporter(self, exporter: Any) -> None:
        if exporter in self._exporters:
            self._exporters.remove(exporter)
        self.span_records = bool(self._exporters)

    # ------------------------------------------------------------------
    # state the backend inspects
    # ------------------------------------------------------------------
    @property
    def has_record_sink(self) -> bool:
        """Can worker records reach durable storage or a live stream?"""
        return self.metrics_base is not None or bool(self._recorders)

    @property
    def active(self) -> bool:
        """Anything at all for a worker to re-attach?"""
        return (self.has_record_sink or self.profile
                or (self.span_records and self.has_record_sink)
                or self.live_path is not None
                or self.causal_base is not None)

    def shard_paths(self, num_ranks: int) -> List[str]:
        """Expected shard paths for a ``num_ranks`` run ([] if shard-less)."""
        if self.metrics_base is None:
            return []
        return [str(rank_shard_path(self.metrics_base, r))
                for r in range(num_ranks)]

    # ------------------------------------------------------------------
    # hooks the processes backend drives (duck-typed from core)
    # ------------------------------------------------------------------
    def worker_recorder(self, psim: "ParallelSimulation",
                        rank: int) -> Optional["RankRecorder"]:
        """Build the rank-local recorder inside a forked worker."""
        if not self.active:
            return None
        return RankRecorder(self, psim, rank)

    def deliver(self, rank: int, records: List[Dict[str, Any]]) -> None:
        """Route a pipe-shipped record batch to the live instruments."""
        for record in records:
            for recorder in self._recorders:
                recorder.emit_record(record)
            if record.get("kind") == "span":
                for exporter in self._exporters:
                    exporter.add_remote_span(record)

    def absorb(self, rank: int, payload: Optional[Dict[str, Any]]) -> None:
        """Fold one worker's harvested observability payload back in."""
        if not payload:
            return
        buckets = payload.pop("profile", None)
        if buckets:
            for profiler in self._profilers:
                profiler.absorb_remote_buckets(rank, buckets)
        batch = payload.pop("pending_batch", None)
        if batch:
            self.deliver(rank, batch)
        self.rank_reports[rank] = payload


class RankRecorder:
    """Worker-side recorder: the rank-local half of the plan.

    Lives entirely inside one forked rank worker.  Opens its own shard
    file (never the parent's sink), attaches its own span/heartbeat
    observers to the rank's :class:`Simulation`, annotates every
    :class:`RankStep` on its way back to the parent, and packages the
    harvest for the ``finish`` payload.
    """

    def __init__(self, plan: RankStreamPlan, psim: "ParallelSimulation",
                 rank: int):
        self.plan = plan
        self.rank = rank
        self.sim = psim._sims[rank]
        self.shard_path: Optional[str] = None
        self._sink = None
        self._buffer: Optional[List[Dict[str, Any]]] = None
        self._epoch = 0
        self._span_rows_written = 0
        if plan.metrics_base is not None:
            path = rank_shard_path(plan.metrics_base, rank)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(path, "w", encoding="utf-8")
            self.shard_path = str(path)
        elif plan._recorders:
            self._buffer = []
        # Rank-local counters registered in the worker's engine stats;
        # they ride home with harvest_engine_stats and merge across
        # ranks through the ordinary sync_stats() machinery.
        stats = self.sim.engine_stats
        self._c_records = stats.counter("obs.rank_records")
        self._c_samples = stats.counter("obs.rank_samples")
        self._c_spans = stats.counter("obs.rank_spans")
        self._c_dropped = stats.counter("obs.rank_dropped")
        self._t0 = _wall_time.perf_counter()
        self._emit({
            "kind": "rank_start",
            "schema": RANK_STREAM_SCHEMA,
            "rank": rank,
            "ranks": psim.num_ranks,
            "backend": "processes",
            "pid": os.getpid(),
            "mono_s": self._t0,
            "created_unix": _wall_time.time(),
        })
        self._buckets: Optional[RankBuckets] = {} if plan.profile else None
        self._record_spans = plan.span_records and self._has_sink
        if self._buckets is not None or self._record_spans:
            self.sim.add_span_observer(self._on_span)
        if plan.heartbeat_every >= 1 and self._has_sink:
            self.sim.add_heartbeat(self._on_heartbeat,
                                   every_events=plan.heartbeat_every)
        # Live plane: re-open the segment the parent created (by path —
        # the mmap file survives the fork) and own this rank's slot.
        # Kernel-boundary state flips come free via sim._live_publisher;
        # the sampler keeps the slot moving mid-window.  Failures
        # degrade to a rank without live metrics, never a dead worker.
        self._live = None
        self._live_sampler = None
        if plan.live_path is not None:
            try:
                from .live.publish import SlotSampler
                from .live.segment import LiveSegment, RankSlotWriter

                self._live_segment = LiveSegment.open(plan.live_path)
                self._live = RankSlotWriter(self._live_segment, rank,
                                            self.sim)
                self.sim._live_publisher = self._live
                self._live.publish()
                self._live_sampler = SlotSampler([self._live],
                                                 plan.live_interval_s)
            except Exception:  # pragma: no cover - defensive
                self._live = None
                self._live_sampler = None
        # Causal tracing: this worker owns its rank's causal shard.
        # The tracer splices into the rank sim's queue + instrumented
        # dispatch; failures degrade to a rank without causal capture.
        self._causal = None
        if plan.causal_base is not None:
            try:
                from .causal import CausalTracer

                self._causal = CausalTracer(self.sim, plan.causal_base,
                                            psim=psim)
            except Exception:  # pragma: no cover - defensive
                self._causal = None

    @property
    def _has_sink(self) -> bool:
        return self._sink is not None or self._buffer is not None

    # ------------------------------------------------------------------
    # record routing
    # ------------------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        if self._sink is not None:
            self._sink.write(json.dumps(record) + "\n")
        elif self._buffer is not None:
            if len(self._buffer) >= self.plan.batch_limit:
                self._c_dropped.add()
                return
            self._buffer.append(record)
        else:
            return
        self._c_records.add()

    # ------------------------------------------------------------------
    # observers (attached to the rank's simulation)
    # ------------------------------------------------------------------
    def _on_span(self, time: int, handler: Any, event: Any,
                 wall_seconds: float) -> None:
        component, label = attribute_event(handler, event)
        event_type = type(event).__name__ if event is not None else "-"
        if self._buckets is not None:
            key = (component, label, event_type)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = [0, 0, 0.0]
                self._buckets[key] = bucket
            bucket[0] += 1
            bucket[1] += 1
            bucket[2] += wall_seconds
        if self._record_spans:
            if self._span_rows_written >= self.plan.span_limit:
                self._c_dropped.add()
                return
            self._span_rows_written += 1
            self._c_spans.add()
            end = _wall_time.perf_counter()
            self._emit({
                "kind": "span",
                "rank": self.rank,
                "mono_s": end - wall_seconds,
                "dur_us": wall_seconds * 1e6,
                "component": component,
                "handler": label,
                "event": event_type,
                "sim_ps": time,
            })

    def _on_heartbeat(self, sim: Any) -> None:
        self._c_samples.add()
        self._emit({
            "kind": "rank_sample",
            "rank": self.rank,
            "mono_s": _wall_time.perf_counter(),
            "sim_ps": sim.now,
            "events": sim.events_executed,
            "queued": sim.pending_events,
        })

    # ------------------------------------------------------------------
    # hooks the worker loop drives
    # ------------------------------------------------------------------
    def on_step(self, step: Any, epoch_end: int) -> None:
        """Record one executed epoch window; attach pending pipe batch."""
        from ..core.backends import outbox_count

        end = _wall_time.perf_counter()
        self._emit({
            "kind": "rank_epoch",
            "rank": self.rank,
            "epoch": self._epoch,
            "mono_s": end - step.wall_seconds,
            "wall_s": step.wall_seconds,
            "events": step.events,
            "sent": outbox_count(step.outbox),
            "window_end_ps": epoch_end,
            "sim_ps": step.now,
        })
        self._epoch += 1
        if self._live is not None:
            try:
                self._live.record_step(step.wall_seconds)
                self._live.publish()
            except Exception:  # pragma: no cover - defensive
                self._live = None
        if self._buffer:
            step.obs_records = self._buffer
            self._buffer = []
        if self._sink is not None:
            self._sink.flush()
        if self._causal is not None:
            try:
                self._causal.flush()
            except Exception:  # pragma: no cover - defensive
                self._causal = None

    def finish(self) -> Dict[str, Any]:
        """Close the shard and package the harvest for the parent."""
        if self._live_sampler is not None:
            try:
                self._live_sampler.stop()
            except Exception:  # pragma: no cover - defensive
                pass
            self._live_sampler = None
        if self._live is not None:
            try:
                if getattr(self.sim, "_live_publisher", None) is self._live:
                    self.sim._live_publisher = None
                self._live.close()
            except Exception:  # pragma: no cover - defensive
                pass
            self._live = None
        self._emit({
            "kind": "rank_end",
            "rank": self.rank,
            "mono_s": _wall_time.perf_counter(),
            "events": self.sim.events_executed,
            "epochs": self._epoch,
            "records": self._c_records.count,
        })
        if self._causal is not None:
            try:
                self._causal.close()
            except Exception:  # pragma: no cover - defensive
                pass
        payload: Dict[str, Any] = {
            "rank": self.rank,
            "shard": self.shard_path,
            "causal_shard": (str(self._causal.path)
                             if self._causal is not None else None),
            "epochs": self._epoch,
            "records": self._c_records.count,
            "samples": self._c_samples.count,
            "spans": self._c_spans.count,
            "dropped": self._c_dropped.count,
        }
        if self._buckets:
            payload["profile"] = self._buckets
        if self._buffer:
            payload["pending_batch"] = self._buffer
            self._buffer = None
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        return payload
