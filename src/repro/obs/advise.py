"""Feedback-driven repartitioning advice from recorded runs.

A parallel run leaves behind exactly the evidence a partitioner wants
and a static config cannot provide: which ranks actually did the work
(the imbalance report's per-rank busy time) and which cut links
actually carried the traffic (the causal tracer's cut-edge report).
This module closes the loop:

1. re-derive the run's original assignment from its config graph and
   manifest (the partition is deterministic: same graph, strategy and
   rank count give the same split);
2. turn per-rank busy time into per-component work multipliers —
   components that lived on a straggler rank look proportionally
   heavier — and cut-edge crossings into extra edge weight, as a
   :class:`~repro.core.partition.PartitionProfile`;
3. re-partition with the profile folded in and emit the advised
   assignment as JSON, consumable by ``ckpt resume --assignment`` (a
   pinned repartition restore) or by re-building the graph with rank
   pins.

Exposed as ``python -m repro obs partition-advise <metrics> --config
<graph.json>``.  Cut-edge traffic needs a ``--trace-causal`` run;
without causal shards the advice uses the work profile alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..config import load
from ..config.graph import ConfigGraph
from ..core.partition import (PartitionProfile, PartitionResult, evaluate,
                              partition)
from .imbalance import analyze_artifacts
from .merge import RunArtifacts


class AdviseError(ValueError):
    """The artifacts cannot support partition advice."""


@dataclass
class PartitionAdvice:
    """An advised assignment plus the evidence behind it."""

    num_ranks: int
    strategy: str
    baseline: PartitionResult  #: the run's (re-derived) original split
    advised: PartitionResult  #: the profile-guided split
    #: per-rank observed busy seconds the multipliers were derived from
    rank_busy_s: List[float] = field(default_factory=list)
    #: link name -> observed crossings folded into edge weights
    cut_traffic: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def moved(self) -> List[str]:
        """Components whose rank changed, in graph order."""
        return [str(n) for n, r in self.advised.assignment.items()
                if self.baseline.assignment.get(n) != r]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "num_ranks": self.num_ranks,
            "strategy": self.strategy,
            "assignment": {str(n): r
                           for n, r in self.advised.assignment.items()},
            "moved": self.moved,
            "baseline": {
                "edge_cut": self.baseline.edge_cut,
                "cut_edges": self.baseline.cut_edges,
                "imbalance": self.baseline.imbalance,
            },
            "advised": {
                "edge_cut": self.advised.edge_cut,
                "cut_edges": self.advised.cut_edges,
                "imbalance": self.advised.imbalance,
            },
            "rank_busy_s": list(self.rank_busy_s),
            "cut_traffic": dict(self.cut_traffic),
            "notes": list(self.notes),
        }

    def report(self) -> str:
        lines = [
            f"partition advice: {self.num_ranks} ranks, "
            f"strategy={self.strategy}",
            f"baseline: cut={self.baseline.edge_cut:.1f} "
            f"({self.baseline.cut_edges} edges) "
            f"imbalance={self.baseline.imbalance:.3f}",
            f"advised:  cut={self.advised.edge_cut:.1f} "
            f"({self.advised.cut_edges} edges) "
            f"imbalance={self.advised.imbalance:.3f}",
            f"moves: {len(self.moved)} component(s)",
        ]
        for name in self.moved[:20]:
            lines.append(
                f"  {name}: rank {self.baseline.assignment[name]}"
                f" -> {self.advised.assignment[name]}")
        if len(self.moved) > 20:
            lines.append(f"  ... and {len(self.moved) - 20} more")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _original_assignment(graph: ConfigGraph, num_ranks: int,
                         strategy: str) -> PartitionResult:
    """Re-derive the split build_parallel made for this run."""
    nodes, edges, weights = graph.partition_inputs()
    result = partition(nodes, edges, num_ranks, strategy=strategy,
                       weights=weights)
    pinned = dict(result.assignment)
    for conf in graph.components():
        if conf.rank is not None:
            pinned[conf.name] = conf.rank
    if pinned != result.assignment:
        node_weight = {n: weights.get(n, 1.0) for n in nodes}
        result = evaluate(pinned, edges, node_weight, num_ranks)
    return result


def build_profile(graph: ConfigGraph, baseline: PartitionResult,
                  rank_busy_s: List[float],
                  cut_edges: Optional[List[Dict[str, Any]]] = None
                  ) -> PartitionProfile:
    """Fold observed evidence into a :class:`PartitionProfile`.

    Every component inherits its rank's ``busy / mean_busy`` ratio as a
    work multiplier; each cut-edge report row adds its crossing count
    onto the named link's edge weight.
    """
    profile = PartitionProfile()
    busy = [b for b in rank_busy_s if b > 0]
    if busy and len(rank_busy_s) == baseline.num_ranks:
        mean = sum(rank_busy_s) / len(rank_busy_s)
        if mean > 0:
            ratios = [b / mean for b in rank_busy_s]
            for node, rank in baseline.assignment.items():
                if ratios[rank] != 1.0:
                    profile.node_multipliers[node] = ratios[rank]
    for edge in cut_edges or []:
        name = edge.get("name")
        crossings = int(edge.get("crossings", 0) or 0)
        if not name or crossings <= 0:
            continue
        try:
            link = graph.get_link(str(name))
        except Exception:
            continue  # hand-named cross link not present in the graph
        if link.comp_a == link.comp_b:
            continue
        key = frozenset((link.comp_a, link.comp_b))
        profile.edge_traffic[key] = profile.edge_traffic.get(key, 0.0) \
            + float(crossings)
    return profile


def advise(metrics_path: Union[str, Path], graph: ConfigGraph, *,
           num_ranks: Optional[int] = None,
           original_strategy: Optional[str] = None,
           strategy: str = "kl") -> PartitionAdvice:
    """Produce profile-guided partition advice for a recorded run.

    ``num_ranks`` and ``original_strategy`` default to what the run
    manifest (or the metrics stream's ``run_start`` record) says the
    run used; pass them explicitly for streams recorded without a
    manifest.
    """
    artifacts = RunArtifacts(Path(metrics_path))
    manifest_engine = _manifest_engine(Path(metrics_path))
    notes: List[str] = []
    ranks = num_ranks or int(manifest_engine.get("ranks") or 0) \
        or artifacts.num_ranks
    if ranks < 2:
        raise AdviseError(
            f"run used {ranks} rank(s) — nothing to repartition")
    orig_strategy = (original_strategy
                     or manifest_engine.get("partitioner") or "linear")
    report = analyze_artifacts(artifacts)
    if not report.epochs:
        raise AdviseError(
            "metrics stream has no epoch records — record the run with "
            "--metrics on a parallel build")
    rank_busy = [r.busy_s for r in report.ranks]
    baseline = _original_assignment(graph, ranks, str(orig_strategy))
    cut_edges: Optional[List[Dict[str, Any]]] = None
    try:
        from .causal import find_causal_shards
        if find_causal_shards(Path(metrics_path)):
            from .critpath import critical_path, cut_edge_report, load_causal
            cut_edges = cut_edge_report(
                critical_path(load_causal(Path(metrics_path))))
        else:
            notes.append("no causal shards — advice uses the work "
                         "profile only (re-run with --trace-causal for "
                         "cut-edge traffic)")
    except Exception as exc:
        notes.append(f"causal analysis unavailable ({exc}); advice uses "
                     "the work profile only")
    profile = build_profile(graph, baseline, rank_busy, cut_edges)
    nodes, edges, weights = graph.partition_inputs()
    advised = partition(nodes, edges, ranks, strategy=strategy,
                        weights=weights, profile=profile)
    cut_traffic = {}
    for edge in cut_edges or []:
        if edge.get("name") and int(edge.get("crossings", 0) or 0) > 0:
            cut_traffic[str(edge["name"])] = int(edge["crossings"])
    return PartitionAdvice(
        num_ranks=ranks,
        strategy=strategy,
        baseline=baseline,
        advised=advised,
        rank_busy_s=rank_busy,
        cut_traffic=cut_traffic,
        notes=notes,
    )


def _manifest_engine(metrics_path: Path) -> Dict[str, Any]:
    manifest_path = metrics_path.with_name(metrics_path.name
                                           + ".manifest.json")
    if not manifest_path.exists():
        return {}
    try:
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError):
        return {}
    engine = manifest.get("engine")
    return dict(engine) if isinstance(engine, dict) else {}


def advise_to_file(metrics_path: Union[str, Path],
                   config_path: Union[str, Path],
                   out_path: Union[str, Path, None] = None, *,
                   num_ranks: Optional[int] = None,
                   original_strategy: Optional[str] = None,
                   strategy: str = "kl") -> tuple:
    """CLI helper: load the graph, advise, write ``<metrics>.advice.json``.

    Returns ``(advice, out_path)``.
    """
    graph = load(str(config_path))
    advice = advise(metrics_path, graph, num_ranks=num_ranks,
                    original_strategy=original_strategy, strategy=strategy)
    if out_path is None:
        base = Path(metrics_path)
        out_path = base.with_name(base.name + ".advice.json")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(advice.as_dict(), indent=2,
                                   sort_keys=True) + "\n", encoding="utf-8")
    return advice, out_path
