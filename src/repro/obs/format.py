"""Shared human-readable number formatting for observability output.

One home for the count/rate/duration formatting used by the progress
reporter (:mod:`repro.obs.progress`), the live ``obs top`` renderer
(:mod:`repro.obs.live.top`) and the stall watchdog, so a "1.23M" in a
progress line and a "1.23M" in the live console view always mean the
same thing.
"""

from __future__ import annotations


def fmt_count(n: float) -> str:
    """``1234567 -> "1.23M"`` (G/M/k suffixes, plain below 1000)."""
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if n >= scale:
            return f"{n / scale:.2f}{suffix}"
    return f"{n:.0f}"


def fmt_rate(per_second: float) -> str:
    """An events-per-second figure: ``fmt_count`` plus the unit."""
    return f"{fmt_count(per_second)}/s"


def fmt_duration(seconds: float) -> str:
    """Wall-clock duration: ``90.5 -> "1m30s"``, ``0.25 -> "0.25s"``."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 60:
        return f"{seconds:.2f}s" if seconds < 10 else f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def fmt_age(seconds: float) -> str:
    """A heartbeat age: sub-second resolution below 10s, then duration."""
    if seconds < 10:
        return f"{seconds:.1f}s"
    return fmt_duration(seconds)
