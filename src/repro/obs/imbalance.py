"""Sync and load-imbalance diagnostics for parallel runs.

Conservative barrier-epoch sync runs at the pace of the slowest rank:
every epoch, each rank's barrier wait is exactly the gap between its
own execution time and the epoch's critical (bounding) rank.  This
module turns a run's telemetry stream into the partitioning-feedback
report that raw per-rank statistics don't give:

* **straggler attribution** — which rank bounded each epoch, and how
  much wall time the other ranks spent waiting on it;
* **busy vs. barrier** — per rank, execution time against time lost at
  the barrier, with the run-level imbalance factor
  (max busy / mean busy; 1.0 = perfectly balanced);
* **skew** — events-per-rank spread, the "is the partition itself
  lopsided or just unlucky" signal.

Works post-hoc on any run recorded with ``--metrics`` (all three
execution backends emit the same parent ``epoch`` records), via
:func:`analyze` / ``python -m repro obs imbalance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .merge import RunArtifacts


@dataclass
class EpochAttribution:
    """One epoch's critical-path attribution."""

    epoch: int
    bounding_rank: int
    #: the bounding rank's execution wall time (== epoch critical path)
    bound_wall_s: float
    #: wall time all other ranks spent waiting on the bounding rank
    waited_s: float
    events: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "bounding_rank": self.bounding_rank,
            "bound_wall_s": self.bound_wall_s,
            "waited_s": self.waited_s,
            "events": self.events,
        }


@dataclass
class RankSummary:
    """One rank's run-level busy/wait/load totals."""

    rank: int
    busy_s: float = 0.0
    barrier_s: float = 0.0
    events: int = 0
    epochs_bounded: int = 0

    @property
    def barrier_fraction(self) -> float:
        total = self.busy_s + self.barrier_s
        return self.barrier_s / total if total > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "busy_s": self.busy_s,
            "barrier_s": self.barrier_s,
            "barrier_fraction": self.barrier_fraction,
            "events": self.events,
            "epochs_bounded": self.epochs_bounded,
        }


@dataclass
class ImbalanceReport:
    """The full diagnosis of one run's sync/load behaviour."""

    backend: str
    num_ranks: int
    epochs: int
    sync: Dict[str, Any]
    ranks: List[RankSummary]
    attributions: List[EpochAttribution]
    exchange_s: float = 0.0
    exchange_bytes: int = 0
    avg_window_ps: float = 0.0
    lookahead_utilization: Optional[float] = None
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # headline numbers
    # ------------------------------------------------------------------
    @property
    def imbalance_factor(self) -> float:
        """max rank busy time / mean rank busy time (1.0 = balanced)."""
        busy = [r.busy_s for r in self.ranks]
        if not busy or not any(busy):
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    @property
    def events_skew(self) -> float:
        """max events/rank / mean events/rank (1.0 = even partition)."""
        counts = [r.events for r in self.ranks]
        if not counts or not any(counts):
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else 1.0

    @property
    def total_barrier_s(self) -> float:
        return sum(r.barrier_s for r in self.ranks)

    @property
    def critical_rank(self) -> Optional[RankSummary]:
        """The rank that bounded the most epochs (None when no epochs)."""
        if not self.ranks or not self.attributions:
            return None
        return max(self.ranks, key=lambda r: (r.epochs_bounded, r.busy_s))

    def as_dict(self) -> Dict[str, Any]:
        critical = self.critical_rank
        return {
            "backend": self.backend,
            "ranks": self.num_ranks,
            "epochs": self.epochs,
            "sync": self.sync,
            "imbalance_factor": self.imbalance_factor,
            "events_skew": self.events_skew,
            "total_barrier_s": self.total_barrier_s,
            "exchange_s": self.exchange_s,
            "exchange_bytes": self.exchange_bytes,
            "avg_window_ps": self.avg_window_ps,
            "lookahead_utilization": self.lookahead_utilization,
            "critical_rank": critical.rank if critical else None,
            "per_rank": [r.as_dict() for r in self.ranks],
            "per_epoch": [a.as_dict() for a in self.attributions],
            "notes": list(self.notes),
        }

    # ------------------------------------------------------------------
    # text report
    # ------------------------------------------------------------------
    def report(self, top: int = 5) -> str:
        lines: List[str] = []
        sync_desc = self.sync.get("strategy", "?")
        lookahead = self.sync.get("lookahead_ps")
        lines.append(
            f"run: backend={self.backend} ranks={self.num_ranks} "
            f"epochs={self.epochs} sync={sync_desc}"
            + (f" lookahead={lookahead}ps" if lookahead is not None else "")
        )
        lines.append(
            f"imbalance factor: {self.imbalance_factor:.3f}   "
            f"events skew: {self.events_skew:.3f}   "
            f"barrier total: {self.total_barrier_s * 1e3:.2f} ms   "
            f"exchange total: {self.exchange_s * 1e3:.2f} ms"
        )
        if self.avg_window_ps or self.exchange_bytes:
            per_epoch = (self.exchange_bytes / self.epochs
                         if self.epochs else 0.0)
            util = (f"{self.lookahead_utilization:.1%}"
                    if self.lookahead_utilization is not None else "n/a")
            lines.append(
                f"epoch window avg: {self.avg_window_ps:.0f} ps   "
                f"lookahead utilization: {util}   "
                f"exchange bytes: {self.exchange_bytes} "
                f"({per_epoch:.0f}/epoch)"
            )
        critical = self.critical_rank
        if critical is not None:
            lines.append(
                f"critical rank: {critical.rank} "
                f"(bounded {critical.epochs_bounded}/{self.epochs} epochs, "
                f"busy {critical.busy_s * 1e3:.2f} ms)"
            )
        lines.append("")
        header = (f"{'rank':>4} {'busy ms':>10} {'barrier ms':>11} "
                  f"{'barrier %':>9} {'events':>10} {'bounded':>8}")
        lines.append(header)
        lines.append("-" * len(header))
        for summary in self.ranks:
            lines.append(
                f"{summary.rank:>4} {summary.busy_s * 1e3:>10.2f} "
                f"{summary.barrier_s * 1e3:>11.2f} "
                f"{summary.barrier_fraction:>9.1%} "
                f"{summary.events:>10} {summary.epochs_bounded:>8}"
            )
        stragglers = sorted(self.attributions,
                            key=lambda a: a.waited_s, reverse=True)[:top]
        if stragglers:
            lines.append("")
            lines.append(f"worst epochs (by wall time others spent waiting, "
                         f"top {len(stragglers)}):")
            for attribution in stragglers:
                lines.append(
                    f"  epoch {attribution.epoch:>5}: rank "
                    f"{attribution.bounding_rank} bound "
                    f"{attribution.bound_wall_s * 1e3:.3f} ms, others waited "
                    f"{attribution.waited_s * 1e3:.3f} ms "
                    f"({attribution.events} events)"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def analyze_artifacts(artifacts: RunArtifacts) -> ImbalanceReport:
    """Diagnose sync/load imbalance from a loaded run's telemetry."""
    epochs = artifacts.epochs
    num_ranks = artifacts.num_ranks
    summaries = [RankSummary(rank=r) for r in range(num_ranks)]
    attributions: List[EpochAttribution] = []
    exchange_s = 0.0
    exchange_bytes = 0
    window_total = 0
    first_window: Optional[int] = None
    last_end: Optional[int] = None
    notes: List[str] = []
    for epoch in epochs:
        walls = [float(w) for w in (epoch.get("per_rank_wall_s") or [])]
        waits = [float(w) for w in
                 (epoch.get("per_rank_barrier_wait_s") or [])]
        events = epoch.get("per_rank_events") or []
        exchange_s += float(epoch.get("exchange_s", 0.0))
        exchange_bytes += int(epoch.get("exchange_bytes", 0))
        window = epoch.get("window_ps")
        if window and len(window) == 2:
            window_total += int(window[1]) - int(window[0]) + 1
            if first_window is None:
                first_window = int(window[0])
            last_end = int(epoch.get("sim_ps", window[1]))
        if not walls:
            continue
        bounding = max(range(len(walls)), key=lambda r: walls[r])
        for rank, wall in enumerate(walls):
            if rank >= num_ranks:
                continue
            summaries[rank].busy_s += wall
            if rank < len(waits):
                summaries[rank].barrier_s += waits[rank]
            if rank < len(events):
                summaries[rank].events += int(events[rank])
        summaries[bounding].epochs_bounded += 1
        attributions.append(EpochAttribution(
            epoch=int(epoch.get("epoch", len(attributions))),
            bounding_rank=bounding,
            bound_wall_s=walls[bounding],
            waited_s=sum(waits) if waits else 0.0,
            events=int(epoch.get("events", sum(int(e) for e in events))),
        ))
    if not epochs:
        notes.append("stream has no epoch records — was this a parallel "
                     "run recorded with --metrics?")
    elif epochs and "per_rank_wall_s" not in epochs[0]:
        notes.append("stream predates per-rank wall fields; barrier waits "
                     "only (re-record with a current build for full "
                     "attribution)")
    utilization: Optional[float] = None
    if window_total and first_window is not None and last_end is not None:
        utilization = min(1.0, (last_end - first_window + 1) / window_total)
    return ImbalanceReport(
        backend=artifacts.backend,
        num_ranks=num_ranks,
        epochs=len(epochs),
        sync=artifacts.sync_info,
        ranks=summaries,
        attributions=attributions,
        exchange_s=exchange_s,
        exchange_bytes=exchange_bytes,
        avg_window_ps=(window_total / len(epochs) if epochs else 0.0),
        lookahead_utilization=utilization,
        notes=notes,
    )


def analyze(metrics_path: Union[str, Path]) -> ImbalanceReport:
    """Load a run's metrics stream and diagnose its imbalance."""
    return analyze_artifacts(RunArtifacts(Path(metrics_path)))
