"""Event-loop profiler: where does the wall time of a run go?

:class:`HandlerProfiler` attaches to the engine's span-observer hook
(:meth:`Simulation.add_span_observer`) and attributes the measured
wall-clock duration of every handler invocation to a
``(component, handler, event type)`` triple.  The report answers the
question the end-of-run statistics cannot: which *simulated component*
(and which handler on it) the *simulator* spends its time in — the
"hot components" view that guides both model optimisation and
partitioning choices for parallel runs.

Overhead: two ``perf_counter()`` calls plus one dict update per event.
For long runs a ``sample_every=N`` stride times only every Nth matched
event and scales the reported wall time by the observed hit rate, while
event *counts* stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union

from ..core.event import CallbackEvent
from ..core.parallel import ParallelSimulation
from ..core.simulation import Simulation


def attribute_event(handler, event) -> Tuple[str, str]:
    """Resolve an executed event to ``(component name, handler label)``.

    Port deliveries attribute to the receiving component, clock ticks to
    the clock's owner, scheduled callbacks (which the engine runs
    through a module-level trampoline) to the component whose bound
    method was scheduled.
    """
    # Scheduled callbacks: the handler is the engine trampoline; the
    # real target is the callback captured in the event.
    if isinstance(event, CallbackEvent):
        return _owner_of(event.callback, "callback")
    return _owner_of(handler, "handler")


def _owner_of(fn, fallback_kind: str) -> Tuple[str, str]:
    if fn is None:
        return "<engine>", "<none>"
    owner = getattr(fn, "__self__", None)
    name = getattr(fn, "__name__", repr(fn))
    if owner is None:
        return f"<{fallback_kind}>", name
    type_name = type(owner).__name__
    if type_name == "Port":
        return owner.component.name, f"port:{owner.name}"
    if type_name == "Clock":
        # Clock names are "<component>.clock" by convention.
        return owner.name.split(".", 1)[0], f"clock:{owner.name}"
    if type_name == "ClockArbiter":
        # Normally unseen: the instrumented dispatch reports per-member
        # clock handlers.  Shows up only if an arbiter record is handed
        # to attribution directly (e.g. a raw queue inspection).
        return "<engine>", f"arbiter:{owner.name}"
    return getattr(owner, "name", type_name), name


@dataclass
class ProfileRow:
    """One aggregated profile bucket."""

    component: str
    handler: str
    event_type: str
    rank: int
    count: int
    wall_seconds: float

    @property
    def mean_us(self) -> float:
        return self.wall_seconds / self.count * 1e6 if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "handler": self.handler,
            "event_type": self.event_type,
            "rank": self.rank,
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "mean_us": self.mean_us,
        }


class HandlerProfiler:
    """Attribute per-event wall time to components/handlers/event types.

    Parameters
    ----------
    target:
        A :class:`Simulation` or :class:`ParallelSimulation` (attaches
        to every rank; rows carry the rank index).
    sample_every:
        Time every Nth event (1 = all).  Counts stay exact; wall time
        is scaled up by the stride so totals remain comparable.
    """

    def __init__(self, target: Union[Simulation, ParallelSimulation], *,
                 sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.target = target
        # (rank, component, handler, event_type) -> [count, timed, wall]
        self._buckets: Dict[Tuple[int, str, str, str], List[float]] = {}
        self._observers = []
        self._plan = None
        if isinstance(target, ParallelSimulation):
            sims = [target.rank_sim(r) for r in range(target.num_ranks)]
            # Register on the rank plan so a processes-backend run
            # rebuilds the buckets rank-locally and harvests them back
            # (the in-process observers below then never fire there).
            from .rank_stream import ensure_rank_plan
            self._plan = ensure_rank_plan(target)
            self._plan.register_profiler(self)
        else:
            sims = [target]
        for sim in sims:
            fn = self._make_observer(sim.rank)
            # Covered rank-locally in forked workers — don't warn on it.
            fn.__rank_local__ = "profile"
            self._observers.append((sim, fn))
            sim.add_span_observer(fn)

    def _make_observer(self, rank: int):
        buckets = self._buckets
        stride = self.sample_every
        tick = [0]

        def observe(time, handler, event, wall_seconds) -> None:
            component, label = attribute_event(handler, event)
            event_type = type(event).__name__ if event is not None else "-"
            key = (rank, component, label, event_type)
            bucket = buckets.get(key)
            if bucket is None:
                bucket = [0, 0, 0.0]
                buckets[key] = bucket
            bucket[0] += 1
            tick[0] += 1
            if tick[0] >= stride:
                tick[0] = 0
                bucket[1] += 1
                bucket[2] += wall_seconds

        return observe

    def detach(self) -> None:
        for sim, fn in self._observers:
            sim.remove_span_observer(fn)
        self._observers = []
        if self._plan is not None:
            self._plan.unregister_profiler(self)
            self._plan = None

    def absorb_remote_buckets(self, rank: int, buckets: Dict[Tuple[str, str, str],
                                                             List[float]]) -> None:
        """Merge a worker's rank-local ``(component, handler, event type)``
        buckets, harvested over the process boundary, into this profiler.

        Workers time every matched event (no sampling stride), so counts
        and timed counts arrive equal; merging keeps scaling correct.
        """
        for (component, label, event_type), (count, timed, wall) in \
                buckets.items():
            key = (rank, component, label, event_type)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = [0, 0, 0.0]
                self._buckets[key] = bucket
            bucket[0] += count
            bucket[1] += timed
            bucket[2] += wall

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def rows(self) -> List[ProfileRow]:
        """All buckets, hottest (most wall time) first."""
        rows = []
        for (rank, component, label, event_type), (count, timed, wall) in \
                self._buckets.items():
            scaled = wall * (count / timed) if timed else 0.0
            rows.append(ProfileRow(component=component, handler=label,
                                   event_type=event_type, rank=rank,
                                   count=int(count), wall_seconds=scaled))
        rows.sort(key=lambda r: r.wall_seconds, reverse=True)
        return rows

    def hot_components(self) -> List[Tuple[str, float, int]]:
        """``(component, wall_seconds, events)`` sorted hottest first."""
        agg: Dict[str, List[float]] = {}
        for row in self.rows():
            entry = agg.setdefault(row.component, [0.0, 0])
            entry[0] += row.wall_seconds
            entry[1] += row.count
        out = [(name, wall, int(count)) for name, (wall, count) in agg.items()]
        out.sort(key=lambda item: item[1], reverse=True)
        return out

    def hottest_component(self) -> str:
        hot = self.hot_components()
        return hot[0][0] if hot else "<idle>"

    def total_seconds(self) -> float:
        return sum(row.wall_seconds for row in self.rows())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sample_every": self.sample_every,
            "total_seconds": self.total_seconds(),
            "rows": [row.as_dict() for row in self.rows()],
            "hot_components": [
                {"component": c, "wall_seconds": w, "events": n}
                for c, w, n in self.hot_components()
            ],
        }

    def report(self, top: int = 15) -> str:
        """The sorted "hot components" table, ready to print."""
        rows = self.rows()
        total = sum(r.wall_seconds for r in rows) or 1.0
        lines = [
            f"{'component':<28} {'handler':<22} {'event':<16} "
            f"{'count':>9} {'wall ms':>9} {'mean us':>8} {'%':>6}"
        ]
        lines.append("-" * len(lines[0]))
        for row in rows[:top]:
            lines.append(
                f"{row.component:<28} {row.handler:<22} {row.event_type:<16} "
                f"{row.count:>9} {row.wall_seconds * 1e3:>9.2f} "
                f"{row.mean_us:>8.2f} {row.wall_seconds / total:>6.1%}"
            )
        if len(rows) > top:
            rest = sum(r.wall_seconds for r in rows[top:])
            lines.append(f"... {len(rows) - top} more buckets "
                         f"({rest * 1e3:.2f} ms, {rest / total:.1%})")
        return "\n".join(lines)

    def __enter__(self) -> "HandlerProfiler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()
