"""Run manifests: one machine-readable JSON document per engine run.

A manifest is the durable perf/provenance record of a simulation run —
what was simulated (config-graph hash, component/link counts, seed),
how (queue implementation, rank count, backend, partitioner, lookahead)
and what came out (stop reason, sim/wall time, events/sec, merged
sync metrics).  Every future optimization PR is measured against these
records, so the schema is versioned and append-only: add fields, never
repurpose them.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.parallel import ParallelSimulation
from ..core.simulation import Simulation

#: bump when a field changes meaning; adding fields does not bump it.
MANIFEST_SCHEMA = "repro-run-manifest/1"


def graph_hash(graph) -> str:
    """Stable short hash of a ConfigGraph's canonical JSON form.

    Two graphs hash equal iff their serialized descriptions match
    (component names/types/params, links, latencies, pins, weights) —
    the manifest's "what machine was this" fingerprint.
    """
    from ..config.serialize import to_dict

    blob = json.dumps(to_dict(graph), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def environment_info() -> Dict[str, Any]:
    """The execution environment block shared by manifests and bench records."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _collect_summaries(sims) -> Dict[str, Any]:
    """Domain summaries from components exposing ``manifest_summary()``.

    Duck-typed so model libraries (e.g. ``cluster.SLOStats``) can put
    workload-level roll-ups — SLO metrics, utilization — into the run
    record without the manifest layer importing them.  Keyed by
    component name; a summary that raises is skipped rather than
    poisoning the manifest.
    """
    out: Dict[str, Any] = {}
    for sim in sims:
        for name, comp in sim.components.items():
            hook = getattr(comp, "manifest_summary", None)
            if not callable(hook):
                continue
            try:
                out[name] = hook()
            except Exception:  # pragma: no cover - defensive
                continue
    return out


def build_manifest(target: Union[Simulation, ParallelSimulation], result,
                   *, graph=None, invocation: Any = None,
                   extra: Optional[Dict[str, Any]] = None,
                   telemetry: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the run manifest for a finished run.

    Parameters
    ----------
    target:
        The :class:`Simulation` or :class:`ParallelSimulation` that ran.
    result:
        The matching :class:`RunResult` / :class:`ParallelRunResult`.
    graph:
        Optional :class:`ConfigGraph` the run was built from; adds the
        config hash and graph identity.
    invocation:
        Free-form record of how the run was requested (a CLI-args dict,
        an argv list, sweep-point parameters, ...); stored verbatim.
    extra:
        Caller extras merged in under ``"extra"``.
    telemetry:
        The owning recorder's stream inventory (backend, rank count,
        per-rank shard paths, harvested rank summaries); stored under
        ``"telemetry"`` so post-hoc tools can locate every artifact of
        the run from the manifest alone.
    """
    parallel = isinstance(target, ParallelSimulation)
    if parallel:
        sims = [target.rank_sim(r) for r in range(target.num_ranks)]
        engine: Dict[str, Any] = {
            "mode": "parallel",
            "ranks": target.num_ranks,
            "backend": target.backend,
            "queue": target.queue_kind,
            "seed": target.seed,
            "partitioner": target.partition_strategy,
            "transport": target.transport,
            "lookahead_ps": target.lookahead,
            "cross_rank_links": target.cross_link_count,
            "sync": target.sync_strategy.describe(),
        }
        components = sum(len(sim.components) for sim in sims)
        links = sum(len(sim.links) for sim in sims) + target.cross_link_count
        sync = {name: stat.as_dict() for name, stat in target.sync_stats().items()}
    else:
        engine = {
            "mode": "sequential",
            "ranks": 1,
            "backend": None,
            "queue": target.queue_kind,
            "seed": target.seed,
            "partitioner": None,
            "lookahead_ps": None,
            "cross_rank_links": 0,
        }
        components = len(target.components)
        links = len(target.links)
        sync = {name: stat.as_dict() for name, stat in target.sync_stats().items()}

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": environment_info(),
        "engine": engine,
        "graph": {
            "name": graph.name if graph is not None else None,
            "hash": graph_hash(graph) if graph is not None else None,
            "components": components,
            "links": links,
        },
        "run": result.as_dict(),
        "sync": sync,
    }
    summary = _collect_summaries(sims if parallel else [target])
    if summary:
        manifest["summary"] = summary
    lineage = getattr(target, "checkpoint_lineage", None)
    written = [str(p) for p in getattr(target, "checkpoints_written", [])]
    if lineage or written:
        # Provenance of engine snapshots (repro.ckpt): where this run
        # was restored from, and which snapshots it produced.
        manifest["checkpoint"] = {
            "restored_from": dict(lineage) if lineage else None,
            "written": written,
        }
    if telemetry:
        manifest["telemetry"] = dict(telemetry)
    if invocation:
        manifest["invocation"] = (dict(invocation)
                                  if isinstance(invocation, dict)
                                  else list(invocation))
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(manifest: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a manifest as pretty JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def append_json_record(path: Union[str, Path], record: Dict[str, Any]) -> Path:
    """Append ``record`` to the JSON list stored at ``path``.

    The file holds a plain JSON array so it stays loadable with one
    ``json.load``; a corrupt or non-list file is preserved under
    ``<path>.corrupt`` rather than silently overwritten.
    """
    path = Path(path)
    records = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, list):
                records = loaded
            else:
                path.rename(path.with_suffix(path.suffix + ".corrupt"))
        except (ValueError, OSError):
            try:
                path.rename(path.with_suffix(path.suffix + ".corrupt"))
            except OSError:
                pass
    records.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    tmp.replace(path)
    return path
