"""Chrome trace-event exporter (Perfetto / chrome://tracing loadable).

Converts handler-execution spans and conservative-sync epochs into the
Trace Event JSON format: open the resulting ``trace.json`` at
https://ui.perfetto.dev (or ``chrome://tracing``) and scrub through the
run on a wall-clock timeline.

Mapping:

* **process (pid)** — parallel rank (0 for sequential runs);
* **thread (tid)**  — the simulated component the handler belongs to
  (one swim-lane per component), plus an ``[engine] epochs`` lane per
  rank for epoch windows;
* **complete events (ph "X")** — one span per handler invocation
  (``dur`` = measured wall time) and one per rank-epoch execution;
* **metadata (ph "M")** — process/thread naming.

Timestamps are wall-clock microseconds since the exporter attached.
Under the ``serial`` parallel backend rank epochs execute one after
another in the calling thread; their spans reflect that (they do not
overlap), which is itself a useful visual of the backend.
"""

from __future__ import annotations

import json
import time as _wall_time
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..core.parallel import EpochInfo, ParallelSimulation
from ..core.simulation import Simulation
from .profiler import attribute_event


def build_trace_dict(events: List[Dict[str, Any]], *,
                     dropped_events: int = 0,
                     exporter: str = "repro.obs.chrome_trace",
                     extra: Union[Dict[str, Any], None] = None) -> Dict[str, Any]:
    """Wrap trace events in the Trace Event JSON envelope.

    Shared by the live :class:`ChromeTraceExporter` and the post-hoc
    cross-rank merge (:mod:`repro.obs.merge`), so both produce files the
    Perfetto UI loads identically.
    """
    other: Dict[str, Any] = {
        "exporter": exporter,
        "dropped_events": dropped_events,
    }
    if extra:
        other.update(extra)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def flow_pair(*, flow_id: int, name: str, cat: str,
              src: Tuple[int, int, float],
              dest: Tuple[int, int, float]) -> List[Dict[str, Any]]:
    """One Perfetto flow arrow as its ("s", "f") trace-event pair.

    ``src``/``dest`` are ``(pid, tid, ts_us)`` triples; the timestamps
    must fall inside enclosing "X" slices on those lanes for the UI to
    bind the arrow.  Used by :mod:`repro.obs.merge` to draw cross-rank
    causal edges (``obs merge --flows``).
    """
    src_pid, src_tid, src_ts = src
    dest_pid, dest_tid, dest_ts = dest
    return [
        {"ph": "s", "id": flow_id, "name": name, "cat": cat,
         "ts": src_ts, "pid": src_pid, "tid": src_tid},
        {"ph": "f", "bp": "e", "id": flow_id, "name": name, "cat": cat,
         "ts": dest_ts, "pid": dest_pid, "tid": dest_tid},
    ]


class ChromeTraceExporter:
    """Collect handler/epoch spans and write a ``trace.json``.

    Parameters
    ----------
    path:
        Output file for :meth:`close` (``None`` keeps events in memory;
        use :meth:`trace_dict`).
    max_events:
        Hard cap on collected span events — busy simulations produce
        millions of spans and the JSON grows linearly.  Once hit, new
        spans are dropped and ``dropped_events`` counts them.
    min_duration_us:
        Skip spans shorter than this (0 = keep all); a cheap way to
        keep files small while preserving the expensive handlers.
    """

    def __init__(self, path: Union[str, Path, None] = None, *,
                 max_events: int = 1_000_000, min_duration_us: float = 0.0):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.path = Path(path) if path is not None else None
        self.max_events = max_events
        self.min_duration_us = min_duration_us
        self.events: List[Dict[str, Any]] = []
        self.dropped_events = 0
        self._span_count = 0  # "X" records only; metadata is uncapped
        self._t0 = _wall_time.perf_counter()
        self._observers: List[Tuple[Simulation, Any]] = []
        self._epoch_target: Union[ParallelSimulation, None] = None
        self._plan = None
        self._tids: Dict[Tuple[int, str], int] = {}
        self._named_pids: set = set()

    # ------------------------------------------------------------------
    # attach
    # ------------------------------------------------------------------
    def attach(self, target: Union[Simulation, ParallelSimulation]) -> "ChromeTraceExporter":
        self._t0 = _wall_time.perf_counter()
        if isinstance(target, ParallelSimulation):
            self._epoch_target = target
            target.add_epoch_observer(self._on_epoch)
            sims = [target.rank_sim(r) for r in range(target.num_ranks)]
            # Under the processes backend the in-process span observers
            # below never fire in the parent; ask the rank plan to write
            # span records rank-locally instead (shards, or pipe batches
            # routed back through add_remote_span).
            from .rank_stream import ensure_rank_plan
            self._plan = ensure_rank_plan(target)
            self._plan.register_exporter(self)
        else:
            sims = [target]
        for sim in sims:
            fn = self._make_span_observer(sim.rank)
            # Rank-local coverage exists only when the plan has a record
            # sink — checked at fork time by the processes backend.
            fn.__rank_local__ = "span"
            self._observers.append((sim, fn))
            sim.add_span_observer(fn)
        return self

    def detach(self) -> None:
        for sim, fn in self._observers:
            sim.remove_span_observer(fn)
        self._observers = []
        if self._epoch_target is not None:
            self._epoch_target.remove_epoch_observer(self._on_epoch)
            self._epoch_target = None
        if self._plan is not None:
            self._plan.unregister_exporter(self)
            self._plan = None

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _tid(self, pid: int, label: str) -> int:
        key = (pid, label)
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
            if pid not in self._named_pids:
                self._named_pids.add(pid)
                self.events.append({
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": f"rank {pid}"},
                })
            self.events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": label},
            })
        return tid

    def _make_span_observer(self, rank: int):
        perf = _wall_time.perf_counter

        def observe(time, handler, event, wall_seconds) -> None:
            dur_us = wall_seconds * 1e6
            if dur_us < self.min_duration_us:
                return
            if self._span_count >= self.max_events:
                self.dropped_events += 1
                return
            self._span_count += 1
            component, label = attribute_event(handler, event)
            event_type = type(event).__name__ if event is not None else "-"
            end_us = (perf() - self._t0) * 1e6
            self.events.append({
                "ph": "X",
                "name": f"{component}.{label}",
                "cat": event_type,
                "ts": end_us - dur_us,
                "dur": dur_us,
                "pid": rank,
                "tid": self._tid(rank, component),
                "args": {"sim_ps": time, "event": event_type},
            })

        return observe

    def _on_epoch(self, info: EpochInfo) -> None:
        now_us = (_wall_time.perf_counter() - self._t0) * 1e6
        batch_start = now_us - info.wall_seconds * 1e6
        offset = 0.0
        serial = (self._epoch_target is not None
                  and self._epoch_target.backend == "serial")
        for rank, wall in enumerate(info.per_rank_wall):
            if self._span_count >= self.max_events:
                self.dropped_events += 1
                continue
            self._span_count += 1
            self.events.append({
                "ph": "X",
                "name": f"epoch {info.index} [{info.window_start}-{info.window_end}ps]",
                "cat": "epoch",
                "ts": batch_start + offset,
                "dur": wall * 1e6,
                "pid": rank,
                "tid": self._tid(rank, "[engine] epochs"),
                "args": {
                    "events": info.per_rank_events[rank],
                    "exchanged": info.exchanged_events,
                    "barrier_wait_s": info.per_rank_barrier_wait[rank],
                },
            })
            if serial:
                offset += wall * 1e6

    def add_remote_span(self, record: Dict[str, Any]) -> None:
        """Convert one pipe-shipped rank-stream ``span`` record into a
        trace event.

        Rank workers stamp spans with raw ``perf_counter`` readings
        (``mono_s``) — CLOCK_MONOTONIC, system-wide on Linux — so
        subtracting this exporter's own ``_t0`` puts them on the same
        timeline as the parent's epoch spans.
        """
        dur_us = float(record.get("dur_us", 0.0))
        if dur_us < self.min_duration_us:
            return
        if self._span_count >= self.max_events:
            self.dropped_events += 1
            return
        self._span_count += 1
        rank = int(record.get("rank", 0))
        component = record.get("component", "<unknown>")
        event_type = record.get("event", "-")
        self.events.append({
            "ph": "X",
            "name": f"{component}.{record.get('handler', '?')}",
            "cat": event_type,
            "ts": (float(record["mono_s"]) - self._t0) * 1e6,
            "dur": dur_us,
            "pid": rank,
            "tid": self._tid(rank, component),
            "args": {"sim_ps": record.get("sim_ps"), "event": event_type},
        })

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def trace_dict(self) -> Dict[str, Any]:
        return build_trace_dict(list(self.events),
                                dropped_events=self.dropped_events)

    def close(self) -> Union[Path, None]:
        """Detach and write ``trace.json``; returns the path written."""
        self.detach()
        if self.path is None:
            return None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self.trace_dict()) + "\n",
                             encoding="utf-8")
        return self.path

    def __enter__(self) -> "ChromeTraceExporter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
