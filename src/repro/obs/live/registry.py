"""The metric registry: names, types and rendering for live metrics.

A :class:`MetricsRegistry` is the declarative layer between the raw
segment slots (:mod:`repro.obs.live.segment`) and everything that
serves or displays them: each :class:`MetricSpec` names one
counter/gauge/histogram, says which slot field feeds it and at which
scope (per rank or per run), and the registry renders a segment
snapshot either as OpenMetrics/Prometheus text (the ``/metrics``
endpoint) or as a JSON status document (the ``/status`` endpoint and
``dse.sweep`` fleet views).

The default registry is auto-populated from engine state — events
executed, queue depth, sim time, epoch index, barrier/exchange time,
heartbeat age — so a scraper gets the same vocabulary
``docs/OBSERVABILITY.md`` documents without any per-run configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .segment import HIST_BOUNDS

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """One named metric: where it comes from and how it is exposed."""

    name: str     #: OpenMetrics family name (``repro_...``)
    kind: str     #: "counter" | "gauge" | "histogram"
    help: str     #: one-line HELP text
    field: str    #: slot-dict field the value is read from
    scope: str    #: "rank" (one sample per rank) | "run"


#: per-rank metrics, fed from the rank slots.
RANK_METRICS = (
    MetricSpec("repro_rank_events", COUNTER,
               "Events executed on this rank", "events", "rank"),
    MetricSpec("repro_rank_queue_depth", GAUGE,
               "Pending events in this rank's queue", "queued", "rank"),
    MetricSpec("repro_rank_sim_time_picoseconds", GAUGE,
               "This rank's simulated-time high-water mark", "sim_ps",
               "rank"),
    MetricSpec("repro_rank_epochs", COUNTER,
               "Kernel windows (epochs) completed on this rank", "epoch",
               "rank"),
    MetricSpec("repro_rank_busy_seconds", COUNTER,
               "Wall time this rank spent executing kernel windows",
               "busy_s", "rank"),
    MetricSpec("repro_rank_heartbeat_age_seconds", GAUGE,
               "Seconds since this rank last published its slot", "age_s",
               "rank"),
    MetricSpec("repro_rank_state", GAUGE,
               "Rank state (0=init 1=running 2=waiting 3=done)", "state",
               "rank"),
    MetricSpec("repro_rank_step_seconds", HISTOGRAM,
               "Distribution of per-epoch kernel window wall time", "hist",
               "rank"),
    MetricSpec("repro_rank_barrier_seconds", COUNTER,
               "Wall time this rank spent waiting at the epoch barrier",
               "barrier_s", "rank"),
)

#: run-level metrics, fed from the parent's run slot.
RUN_METRICS = (
    MetricSpec("repro_run_epochs", COUNTER,
               "Conservative-sync epochs completed", "epoch", "run"),
    MetricSpec("repro_run_events", COUNTER,
               "Events executed across all ranks", "events", "run"),
    MetricSpec("repro_run_exchanged_events", COUNTER,
               "Events exchanged across rank boundaries", "exchanged",
               "run"),
    MetricSpec("repro_run_sim_time_picoseconds", GAUGE,
               "Global simulated-time high-water mark", "now_ps", "run"),
    MetricSpec("repro_run_exchange_seconds", COUNTER,
               "Wall time spent in cross-rank exchange", "exchange_s",
               "run"),
    MetricSpec("repro_run_exec_seconds", COUNTER,
               "Wall time spent executing epoch windows (all ranks)",
               "exec_s", "run"),
    MetricSpec("repro_run_state", GAUGE,
               "Run state (0=init 1=running 3=done)", "state", "run"),
)


class MetricsRegistry:
    """Render segment snapshots as OpenMetrics text or status JSON."""

    def __init__(self, specs: Optional[List[MetricSpec]] = None):
        self.specs: List[MetricSpec] = (
            list(specs) if specs is not None
            else list(RANK_METRICS) + list(RUN_METRICS))

    # ------------------------------------------------------------------
    # OpenMetrics / Prometheus exposition
    # ------------------------------------------------------------------
    def render_openmetrics(self, snapshot: Dict[str, Any]) -> str:
        ranks = [s for s in snapshot.get("ranks", []) if s is not None]
        run = snapshot.get("run") or {}
        barrier = run.get("barrier_s") or []
        lines: List[str] = []
        for spec in self.specs:
            suffix = "_total" if spec.kind == COUNTER else ""
            lines.append(f"# TYPE {spec.name} {spec.kind}")
            lines.append(f"# HELP {spec.name} {spec.help}")
            if spec.scope == "run":
                if run:
                    value = run.get(spec.field, 0)
                    lines.append(f"{spec.name}{suffix} {_num(value)}")
                continue
            for slot in ranks:
                rank = slot["rank"]
                label = f'{{rank="{rank}"}}'
                if spec.kind == HISTOGRAM:
                    lines.extend(self._render_hist(spec, slot))
                    continue
                if spec.field == "barrier_s":
                    # barrier wait is accounted parent-side (the run
                    # slot carries the per-rank array).
                    if rank < len(barrier):
                        lines.append(
                            f"{spec.name}{suffix}{label} "
                            f"{_num(barrier[rank])}")
                    continue
                value = slot.get(spec.field, 0)
                lines.append(f"{spec.name}{suffix}{label} {_num(value)}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_hist(spec: MetricSpec, slot: Dict[str, Any]) -> List[str]:
        rank = slot["rank"]
        hist = slot.get(spec.field) or []
        out: List[str] = []
        cumulative = 0
        bounds = [str(b) for b in HIST_BOUNDS] + ["+Inf"]
        for bucket, le in zip(hist, bounds):
            cumulative += bucket
            out.append(f'{spec.name}_bucket{{rank="{rank}",le="{le}"}} '
                       f"{cumulative}")
        out.append(f'{spec.name}_count{{rank="{rank}"}} {cumulative}')
        out.append(f'{spec.name}_sum{{rank="{rank}"}} '
                   f"{_num(slot.get('busy_s', 0.0))}")
        return out

    # ------------------------------------------------------------------
    # JSON status
    # ------------------------------------------------------------------
    def status(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """The ``/status`` JSON document for one snapshot."""
        header = snapshot.get("header", {})
        run = snapshot.get("run")
        ranks = [s for s in snapshot.get("ranks", []) if s is not None]
        doc: Dict[str, Any] = {
            "segment": snapshot.get("path"),
            "backend": header.get("backend"),
            "mode": header.get("mode"),
            "ranks": header.get("slots"),
            "created_unix": header.get("created_unix"),
            "per_rank": [
                {k: slot[k] for k in ("rank", "pid", "state_name", "events",
                                      "queued", "sim_ps", "epoch", "busy_s",
                                      "age_s") if k in slot}
                for slot in ranks
            ],
        }
        if run:
            doc["run"] = {k: run[k] for k in
                          ("state_name", "epoch", "events", "exchanged",
                           "now_ps", "limit_ps", "exchange_s", "exec_s",
                           "reason", "barrier_s") if k in run}
            eta = eta_seconds(run)
            if eta is not None:
                doc["run"]["eta_s"] = eta
        return doc


def eta_seconds(run: Dict[str, Any]) -> Optional[float]:
    """Wall-clock ETA from the run slot's sim-time progress, if bounded."""
    limit = run.get("limit_ps") or 0
    now_ps = run.get("now_ps") or 0
    start_mono = run.get("start_mono") or 0.0
    mono = run.get("mono_s") or 0.0
    if limit <= 0 or now_ps <= 0 or mono <= start_mono:
        return None
    rate = now_ps / (mono - start_mono)  # sim ps per wall second
    if rate <= 0:
        return None
    return max(0.0, (limit - now_ps) / rate)


def _num(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)
