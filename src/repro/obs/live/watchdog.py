"""Stall watchdog: detect hung ranks and extract their stacks.

A :class:`StallWatchdog` polls a live segment from a daemon thread and
flags ranks that stopped making progress.  Two independent signals:

* **progress age** — a rank in the *running* state whose
  ``(events, sim_ps, epoch)`` triple has not changed for
  ``threshold_s`` is stuck inside a kernel window (typically a handler
  spinning or blocked).  The slot itself keeps getting republished by
  the rank's sampler thread, which is precisely what distinguishes
  "hung handler, process alive" from "process dead";
* **publish age** — a slot whose publish stamp itself is older than the
  threshold belongs to a rank whose process (or sampler) died.

On a stall the watchdog grabs a stack dump from the owning process.
For ranks in *this* process it calls ``faulthandler.dump_traceback``
directly; for processes-backend workers it signals the worker's pid
with SIGUSR1, which the worker registered at startup via
:func:`enable_stack_dump_signal` (``faulthandler.register``) when the
run was started with watchdog dumps enabled.  The pipe command channel
is deliberately *not* used for this: a worker wedged inside a handler
never returns to the command loop, while the signal path dumps from
any state.  Each stall is reported to the diagnostics stream, recorded
as an ``obs.stall`` telemetry record (when a recorder is wired in) and
counted in the engine's ``obs.stalls`` statistic; ``abort=True``
additionally terminates the stalled worker, which surfaces as a
``SimulationError`` in the run loop.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time as _wall_time
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from ..format import fmt_age, fmt_count
from .segment import STATE_DONE, STATE_RUNNING, LiveView, SegmentError

#: open dump files keyed by path; faulthandler keeps writing into the
#: registered file object, so it must stay alive for the process.
_DUMP_FILES: Dict[str, IO[str]] = {}


def stack_dump_path(segment_path: Union[str, Path], rank: int) -> Path:
    """Where rank ``rank``'s stack dump lands: ``<segment>.stack.rank<k>``."""
    base = Path(segment_path)
    return base.with_name(f"{base.name}.stack.rank{rank}")


def enable_stack_dump_signal(path: Union[str, Path]) -> None:
    """Register SIGUSR1 -> faulthandler traceback into ``path``.

    Called inside each processes-backend worker at startup (see
    ``backends._worker_main``); after this, any process that knows the
    worker's pid can extract its stack with ``os.kill(pid, SIGUSR1)``
    even while the worker is wedged inside a handler.
    """
    import faulthandler

    path = str(path)
    fh = _DUMP_FILES.get(path)
    if fh is None:
        fh = open(path, "w", encoding="utf-8")
        _DUMP_FILES[path] = fh
    faulthandler.register(signal.SIGUSR1, file=fh, all_threads=True)


def request_stack_dump(pid: int, dump_path: Union[str, Path], *,
                       timeout_s: float = 2.0) -> Optional[str]:
    """Extract a stack dump from ``pid`` into ``dump_path``.

    Same-process requests dump directly via faulthandler; foreign pids
    are signalled with SIGUSR1 and the dump file is polled until it has
    content.  Returns the dump text, or None if nothing materialised.
    """
    import faulthandler

    dump_path = Path(dump_path)
    if pid == os.getpid():
        with open(dump_path, "w", encoding="utf-8") as fh:
            faulthandler.dump_traceback(file=fh, all_threads=True)
        return dump_path.read_text(encoding="utf-8")
    try:
        dump_path.parent.mkdir(parents=True, exist_ok=True)
        os.kill(pid, signal.SIGUSR1)
    except (ProcessLookupError, PermissionError):
        return None
    deadline = _wall_time.monotonic() + timeout_s
    while _wall_time.monotonic() < deadline:
        try:
            text = dump_path.read_text(encoding="utf-8")
        except OSError:
            text = ""
        if text.strip():
            return text
        _wall_time.sleep(0.05)
    return None


class StallWatchdog:
    """Poll a live segment and flag ranks whose heartbeat went stale.

    Parameters
    ----------
    segment_path:
        The run's live segment file.
    threshold_s:
        Progress/publish age beyond which a rank counts as stalled.
    poll_s:
        Poll period (default: a quarter of the threshold, >= 0.1s).
    abort:
        Terminate a stalled worker after dumping its stack (the run
        then fails with a descriptive ``SimulationError``); in-process
        stalls deliver ``KeyboardInterrupt`` to the main thread.
    telemetry:
        Optional :class:`TelemetryRecorder`; each stall is appended to
        its stream as an ``{"kind": "obs.stall", ...}`` record.
    target:
        Optional simulation the run belongs to; stalls increment its
        engine-level ``obs.stalls`` counter.
    stream:
        Where diagnostics go (default stderr).
    """

    def __init__(self, segment_path: Union[str, Path], *,
                 threshold_s: float = 10.0,
                 poll_s: Optional[float] = None,
                 abort: bool = False,
                 telemetry: Optional[Any] = None,
                 target: Optional[Any] = None,
                 on_stall: Optional[Any] = None,
                 stream: Optional[IO[str]] = None):
        self.segment_path = Path(segment_path)
        self.threshold_s = threshold_s
        self.poll_s = poll_s if poll_s is not None else max(0.1,
                                                            threshold_s / 4)
        self.abort = abort
        self.telemetry = telemetry
        self.on_stall = on_stall
        self.stream = stream if stream is not None else sys.stderr
        self.stalls: List[Dict[str, Any]] = []
        self._counter = None
        if target is not None:
            stats = getattr(target, "engine_stats", None)
            if stats is None and hasattr(target, "rank_sim"):
                stats = target.rank_sim(0).engine_stats
            if stats is not None:
                self._counter = stats.counter("obs.stalls")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: rank -> (progress triple, mono time it last changed)
        self._progress: Dict[int, Any] = {}
        #: ranks already reported for the current stall episode
        self._flagged: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    def start(self) -> "StallWatchdog":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-stall-watchdog", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _loop(self) -> None:
        # The segment may not exist for the first poll or two.
        while not self._stop.wait(self.poll_s):
            try:
                view = LiveView(self.segment_path)
            except SegmentError:
                continue
            try:
                snapshot = view.snapshot()
            finally:
                view.close()
            run = snapshot.get("run")
            if run is not None and run.get("state") == STATE_DONE:
                return
            self.check(snapshot)

    # ------------------------------------------------------------------
    def check(self, snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
        """One poll: classify every rank, report fresh stalls.

        Public so tests (and callers without the polling thread) can
        drive the detector with synthetic snapshots.
        """
        now = snapshot.get("mono_now", _wall_time.perf_counter())
        fresh: List[Dict[str, Any]] = []
        for slot in snapshot.get("ranks", []):
            if slot is None:
                continue
            rank = slot["rank"]
            triple = (slot["events"], slot["sim_ps"], slot["epoch"],
                      slot["state"])
            known = self._progress.get(rank)
            if known is None or known[0] != triple:
                self._progress[rank] = (triple, now)
                self._flagged.pop(rank, None)
                continue
            progress_age = now - known[1]
            publish_age = slot.get("age_s", 0.0)
            stalled_running = (slot["state"] == STATE_RUNNING
                               and progress_age > self.threshold_s)
            stalled_dead = (slot["state"] != STATE_DONE
                            and publish_age > self.threshold_s)
            if not (stalled_running or stalled_dead):
                continue
            if self._flagged.get(rank):
                continue
            self._flagged[rank] = True
            stall = self._report(slot, progress_age, publish_age,
                                 dead=stalled_dead and not stalled_running)
            self.stalls.append(stall)
            fresh.append(stall)
        return fresh

    def _report(self, slot: Dict[str, Any], progress_age: float,
                publish_age: float, *, dead: bool) -> Dict[str, Any]:
        rank = slot["rank"]
        pid = slot["pid"]
        dump_path = stack_dump_path(self.segment_path, rank)
        dump = None
        if not dead:
            dump = request_stack_dump(pid, dump_path)
        kind = ("worker process silent (died or hard-hung)" if dead
                else "no progress inside a running kernel window")
        print(f"[watchdog] rank {rank} STALLED: {kind} — pid {pid}, "
              f"state {slot['state_name']}, "
              f"{fmt_count(slot['events'])} events frozen for "
              f"{fmt_age(progress_age)} "
              f"(heartbeat age {fmt_age(publish_age)})",
              file=self.stream, flush=True)
        if dump:
            print(f"[watchdog] rank {rank} stack dump -> {dump_path}",
                  file=self.stream, flush=True)
        stall = {
            "kind": "obs.stall",
            "rank": rank,
            "pid": pid,
            "state": slot["state_name"],
            "events": slot["events"],
            "sim_ps": slot["sim_ps"],
            "progress_age_s": progress_age,
            "publish_age_s": publish_age,
            "worker_silent": dead,
            "stack_dump": str(dump_path) if dump else None,
            "mono_s": _wall_time.perf_counter(),
            "aborted": False,
        }
        if self._counter is not None:
            self._counter.add()
        if self.abort:
            stall["aborted"] = True
            self._abort(rank, pid)
        if self.telemetry is not None:
            try:
                self.telemetry.emit_record(stall)
            except Exception:  # recorder may already be finalized
                pass
        if self.on_stall is not None:
            try:
                self.on_stall(stall)
            except Exception:
                pass
        return stall

    def _abort(self, rank: int, pid: int) -> None:
        print(f"[watchdog] aborting: terminating stalled rank {rank} "
              f"(pid {pid})", file=self.stream, flush=True)
        if pid == os.getpid():
            import _thread

            _thread.interrupt_main()
            return
        try:
            os.kill(pid, signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            pass

    def __enter__(self) -> "StallWatchdog":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
