"""The stdlib HTTP endpoint serving live metrics.

A :class:`MetricsServer` runs a ``ThreadingHTTPServer`` on a daemon
thread and answers:

* ``GET /metrics``  — OpenMetrics/Prometheus text exposition;
* ``GET /`` or ``/status`` — the JSON status document.

The server is renderer-agnostic: it calls a ``render()`` callable per
request and gets back ``(status_dict, openmetrics_text)``, so the same
server fronts a run segment (:func:`make_run_render`) and a
``dse.sweep`` fleet (:func:`repro.obs.live.sweep.make_sweep_render`).
Every request re-reads the segment, so scrapes always see the latest
published slots without any coupling to the engine's threads.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from .registry import MetricsRegistry
from .segment import LiveView, SegmentError

#: a render callable: () -> (status_json_dict, openmetrics_text)
Render = Callable[[], Tuple[Dict[str, Any], str]]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")


def parse_address(text: str) -> Tuple[str, int]:
    """``":8080"`` / ``"8080"`` / ``"0.0.0.0:8080"`` -> (host, port)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"bad --serve-metrics address {text!r}; "
                         f"expected [HOST]:PORT") from None
    return (host or "127.0.0.1", port_num)


def make_run_render(path: Union[str, Path],
                    registry: Optional[MetricsRegistry] = None) -> Render:
    """Renderer over a run segment; tolerant of the file not existing
    yet (returns a placeholder until the run creates it)."""
    registry = registry if registry is not None else MetricsRegistry()
    path = Path(path)

    def render() -> Tuple[Dict[str, Any], str]:
        try:
            view = LiveView(path)
        except SegmentError as exc:
            return ({"state": "pending", "detail": str(exc)}, "# EOF\n")
        try:
            snapshot = view.snapshot()
        finally:
            view.close()
        return registry.status(snapshot), registry.render_openmetrics(snapshot)

    return render


class MetricsServer:
    """Serve a render callable over HTTP from a daemon thread."""

    def __init__(self, address: Union[str, Tuple[str, int]], render: Render):
        if isinstance(address, str):
            address = parse_address(address)
        self.render = render
        server = self  # closed over by the handler

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    status, text = server.render()
                except Exception as exc:  # render must not kill the server
                    self._reply(500, "text/plain; charset=utf-8",
                                f"render error: {exc}\n")
                    return
                if path == "/metrics":
                    self._reply(200, OPENMETRICS_CONTENT_TYPE, text)
                elif path in ("/", "/status", "/status.json"):
                    self._reply(200, "application/json",
                                json.dumps(status, indent=2) + "\n")
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                "try /metrics or /status\n")

            def _reply(self, code: int, ctype: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are not worth stderr noise

        self._httpd = ThreadingHTTPServer(address, _Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port is resolved when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-http", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
