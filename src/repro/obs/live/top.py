"""``python -m repro obs top`` — a refreshing console view of a live run.

Attaches read-only to a *running* simulation's segment (by segment
path, metrics path or run directory — :func:`resolve_segment`) and
redraws a per-rank table every interval: event rate (delta between
frames), queue depth, sim time, busy/barrier share and heartbeat age,
plus the current straggler.  Straggler attribution reuses the
:mod:`repro.obs.imbalance` rule online: the bounding rank of the most
recent window is the one with the largest busy-time delta, and the
run-level imbalance factor comes from the same
:class:`~repro.obs.imbalance.RankSummary` totals the post-hoc report
uses.
"""

from __future__ import annotations

import sys
import time as _wall_time
from typing import IO, Any, Dict, List, Optional

from ...core import units
from ..format import fmt_age, fmt_count, fmt_duration, fmt_rate
from ..imbalance import ImbalanceReport, RankSummary
from .registry import eta_seconds
from .segment import KIND_SWEEP, LiveView


def _summaries(snapshot: Dict[str, Any]) -> List[RankSummary]:
    """Cumulative per-rank totals in the post-hoc report's shape."""
    run = snapshot.get("run") or {}
    barrier = run.get("barrier_s") or []
    out = []
    for slot in snapshot.get("ranks", []):
        if slot is None:
            continue
        rank = slot["rank"]
        out.append(RankSummary(
            rank=rank, busy_s=slot["busy_s"],
            barrier_s=barrier[rank] if rank < len(barrier) else 0.0,
            events=slot["events"]))
    return out


def imbalance_factor(snapshot: Dict[str, Any]) -> float:
    """The run-so-far imbalance factor (max busy / mean busy)."""
    summaries = _summaries(snapshot)
    report = ImbalanceReport(backend=snapshot["header"].get("backend", "?"),
                             num_ranks=len(summaries),
                             epochs=0, sync={}, ranks=summaries,
                             attributions=[])
    return report.imbalance_factor


def straggler(snapshot: Dict[str, Any],
              prev: Optional[Dict[str, Any]]) -> Optional[int]:
    """The rank bounding the most recent window: argmax busy delta
    between frames (falling back to cumulative busy on the first)."""
    ranks = [s for s in snapshot.get("ranks", []) if s is not None]
    if not ranks:
        return None
    if prev is not None:
        prev_busy = {s["rank"]: s["busy_s"]
                     for s in prev.get("ranks", []) if s is not None}
        deltas = {s["rank"]: s["busy_s"] - prev_busy.get(s["rank"], 0.0)
                  for s in ranks}
        if any(d > 0 for d in deltas.values()):
            return max(deltas, key=lambda r: deltas[r])
    if not any(s["busy_s"] > 0 for s in ranks):
        return None
    return max(ranks, key=lambda s: s["busy_s"])["rank"]


def render_frame(snapshot: Dict[str, Any],
                 prev: Optional[Dict[str, Any]] = None) -> str:
    """One frame of the top view as plain text."""
    header = snapshot["header"]
    run = snapshot.get("run") or {}
    ranks = [s for s in snapshot.get("ranks", []) if s is not None]
    dt = (snapshot["mono_now"] - prev["mono_now"]
          if prev is not None else 0.0)
    prev_slots = {s["rank"]: s for s in (prev or {}).get("ranks", [])
                  if s is not None}
    lines: List[str] = []
    total_events = run.get("events") or sum(s["events"] for s in ranks)
    now_ps = run.get("now_ps") or max(
        (s["sim_ps"] for s in ranks), default=0)
    head = (f"run: backend={header.get('backend') or '?'} "
            f"ranks={header.get('slots')} "
            f"state={run.get('state_name', '?')} "
            f"epoch {run.get('epoch', 0)} | "
            f"sim {units.format_time(now_ps)} | "
            f"{fmt_count(total_events)} events")
    if run.get("reason"):
        head += f" | stopped: {run['reason']}"
    eta = eta_seconds(run) if run else None
    if eta is not None:
        head += f" | ETA {fmt_duration(eta)}"
    lines.append(head)
    if run.get("window_ps") or run.get("exchange_bytes"):
        sync_line = (f"sync: window {units.format_time(run['window_ps'])} "
                     f"| lookahead util {run.get('lookahead_util', 0.0):.0%} "
                     f"| exchanged {fmt_count(run.get('exchange_bytes', 0))}B")
        epochs = run.get("epoch") or 0
        if epochs:
            sync_line += (f" ({fmt_count(run.get('exchange_bytes', 0) / epochs)}"
                          f"B/epoch)")
        lines.append(sync_line)
    lines.append(f"{'rank':>4} {'state':>5} {'events':>9} {'ev/s':>9} "
                 f"{'queue':>7} {'sim time':>11} {'busy%':>6} "
                 f"{'barrier%':>8} {'hb age':>7}")
    barrier = run.get("barrier_s") or []
    for slot in ranks:
        rank = slot["rank"]
        before = prev_slots.get(rank)
        rate = ((slot["events"] - before["events"]) / dt
                if before is not None and dt > 0 else 0.0)
        busy = slot["busy_s"]
        wait = barrier[rank] if rank < len(barrier) else 0.0
        total = busy + wait
        lines.append(
            f"{rank:>4} {slot['state_name']:>5} "
            f"{fmt_count(slot['events']):>9} {fmt_count(rate):>9} "
            f"{fmt_count(slot['queued']):>7} "
            f"{units.format_time(slot['sim_ps']):>11} "
            f"{busy / total:>6.0%} {wait / total:>8.0%} "
            f"{fmt_age(slot['age_s']):>7}"
            if total > 0 else
            f"{rank:>4} {slot['state_name']:>5} "
            f"{fmt_count(slot['events']):>9} {fmt_count(rate):>9} "
            f"{fmt_count(slot['queued']):>7} "
            f"{units.format_time(slot['sim_ps']):>11} "
            f"{'-':>6} {'-':>8} {fmt_age(slot['age_s']):>7}")
    bound = straggler(snapshot, prev)
    if bound is not None and len(ranks) > 1:
        lines.append(f"straggler: rank {bound} "
                     f"(imbalance factor {imbalance_factor(snapshot):.3f})")
    return "\n".join(lines)


def render_sweep_frame(snapshot: Dict[str, Any]) -> str:
    """Frame for a ``dse.sweep`` fleet segment."""
    from .sweep import sweep_status

    status = sweep_status(snapshot)
    line = (f"sweep: {status['completed']}/{status['total']} points done, "
            f"{status['running']} running, {status['failed']} failed")
    if status.get("rate_per_s"):
        line += f" | {fmt_rate(status['rate_per_s'])}"
    if status.get("eta_s") is not None:
        line += f" | ETA {fmt_duration(status['eta_s'])}"
    return line


def run_top(target: str, *, interval_s: float = 2.0,
            frames: Optional[int] = None, once: bool = False,
            stream: Optional[IO[str]] = None, clear: bool = True) -> int:
    """Drive the refresh loop (the ``obs top`` entry point).

    ``once`` prints a single frame and exits (scripting/testing);
    otherwise refreshes until the run finishes, ``frames`` frames have
    been printed, or the user interrupts.
    """
    from .segment import resolve_segment

    stream = stream if stream is not None else sys.stdout
    path = resolve_segment(target)
    prev: Optional[Dict[str, Any]] = None
    printed = 0
    while True:
        view = LiveView(path)
        try:
            snapshot = view.snapshot()
        finally:
            view.close()
        if view.kind == KIND_SWEEP:
            frame = render_sweep_frame(snapshot)
        else:
            frame = render_frame(snapshot, prev)
        if clear and printed and not once:
            print("\x1b[2J\x1b[H", end="", file=stream)
        print(frame, file=stream, flush=True)
        printed += 1
        prev = snapshot
        run = snapshot.get("run")
        done = run is not None and run.get("state_name") == "done"
        if once or done or (frames is not None and printed >= frames):
            return 0
        try:
            _wall_time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
