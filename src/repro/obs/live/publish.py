"""Publishing engine state into a live segment while a run is in flight.

:class:`LiveMetrics` is the attach-side instrument (the live sibling of
:class:`~repro.obs.telemetry.TelemetryRecorder`): it creates the
segment, installs per-rank publishers wherever the rank kernels
actually execute, and keeps the run slot fresh from the epoch observer.
The publishing points are chosen so the bare-mode hot path stays
untouched — nothing here adds a per-event observer:

* **kernel boundaries** — every rank :class:`Simulation` carries a
  ``_live_publisher`` slot the kernel loop checks once per invocation
  (state flips to *running* at entry, *waiting* at exit);
* **epoch hook** — the parent's epoch observer republishes the run slot
  and, for in-process backends, folds per-rank window wall time into
  the rank slots;
* **sampler thread** — a daemon thread republishing each locally owned
  rank slot every ``interval_s`` seconds, which is what keeps event
  counts and queue depths moving *mid-window* (and what lets the
  watchdog see a hung handler: the sampler keeps stamping the slot
  while the event count stops advancing).

For the ``processes`` backend the parent only owns the run slot; each
forked worker re-opens the segment by path and owns its rank slot
(wired through :class:`~repro.obs.rank_stream.RankStreamPlan`).
"""

from __future__ import annotations

import threading
import time as _wall_time
from pathlib import Path
from typing import Any, List, Optional, Union

from .segment import (KIND_RUN, RANK_SLOT_SIZE, STATE_DONE, STATE_RUNNING,
                      LiveSegment, RankSlotWriter, run_slot_size)


class SlotSampler:
    """Daemon thread republishing a set of rank slots periodically."""

    def __init__(self, publishers: List[RankSlotWriter], interval_s: float,
                 extra_tick: Optional[Any] = None):
        self._publishers = publishers
        self._interval = max(0.02, interval_s)
        self._extra_tick = extra_tick
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-sampler", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            for pub in self._publishers:
                try:
                    pub.publish()
                except Exception:  # never let sampling kill anything
                    return
            if self._extra_tick is not None:
                try:
                    self._extra_tick()
                except Exception:
                    return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class LiveMetrics:
    """Publish one run's engine state into a live segment.

    Parameters
    ----------
    path:
        Segment file location (``default_segment_path(metrics)`` is the
        CLI convention: ``<metrics>.live``).
    interval_s:
        Sampler republish period (per locally owned rank slot).
    watchdog_dumps:
        Ask processes-backend workers to register the SIGUSR1
        ``faulthandler`` stack-dump handler at startup, so a watchdog
        can extract a stack from a hung worker
        (:mod:`repro.obs.live.watchdog`).
    limit_ps:
        The run's simulated-time budget, published into the run slot so
        readers can compute an ETA.
    """

    def __init__(self, path: Union[str, Path], *, interval_s: float = 0.25,
                 watchdog_dumps: bool = False, limit_ps: int = 0):
        self.path = Path(path)
        self.interval_s = interval_s
        self.watchdog_dumps = watchdog_dumps
        self.limit_ps = limit_ps
        self.segment: Optional[LiveSegment] = None
        self._target: Optional[Any] = None
        self._parallel = False
        self._publishers: List[RankSlotWriter] = []
        self._sampler: Optional[SlotSampler] = None
        self._run_mutex = threading.Lock()
        self._start_mono = 0.0
        self._exchanged = 0
        self._exchange_s = 0.0
        self._exec_s = 0.0
        self._exchange_bytes = 0
        self._window_ps = 0          # last epoch's window width
        self._window_total = 0       # cumulative window width (util denom)
        self._first_window: Optional[int] = None
        self._barrier: List[float] = []
        self._run_state = STATE_RUNNING
        self._reason = ""
        self._epoch = 0
        self._events = 0
        self._now_ps = 0

    # ------------------------------------------------------------------
    # attach / detach
    # ------------------------------------------------------------------
    def attach(self, target: Any) -> "LiveMetrics":
        """Create the segment and start publishing for ``target``
        (a :class:`Simulation` or :class:`ParallelSimulation`)."""
        from ...core.parallel import ParallelSimulation

        if self._target is not None:
            raise RuntimeError("LiveMetrics is already attached")
        self._target = target
        self._parallel = isinstance(target, ParallelSimulation)
        num_ranks = target.num_ranks if self._parallel else 1
        backend = target.backend if self._parallel else "serial"
        self._barrier = [0.0] * num_ranks
        self._start_mono = _wall_time.perf_counter()
        self.segment = LiveSegment.create(
            self.path, kind=KIND_RUN, slots=num_ranks,
            slot_size=RANK_SLOT_SIZE, run_size=run_slot_size(num_ranks),
            backend=backend,
            mode="parallel" if self._parallel else "sequential",
            limit_ps=self.limit_ps)
        if self._parallel:
            target.add_epoch_observer(self._on_epoch)
            target.live = self
            from ..rank_stream import ensure_rank_plan

            plan = ensure_rank_plan(target)
            plan.live_path = str(self.path)
            plan.live_interval_s = self.interval_s
            if self.watchdog_dumps:
                plan.live_dump_base = str(self.path)
            if backend != "processes":
                # In-process backends: the parent owns every rank slot.
                for rank, sim in enumerate(target._sims):
                    pub = RankSlotWriter(self.segment, rank, sim)
                    sim._live_publisher = pub
                    self._publishers.append(pub)
            # processes: workers open the segment by path and own their
            # slots (RankRecorder, via the plan fields set above).
        else:
            pub = RankSlotWriter(self.segment, 0, target)
            target._live_publisher = pub
            self._publishers.append(pub)
        self._publish_run()
        if self._publishers:
            self._sampler = SlotSampler(self._publishers, self.interval_s,
                                        extra_tick=self._sequential_tick
                                        if not self._parallel else None)
        return self

    def detach(self) -> None:
        target, self._target = self._target, None
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        if target is not None:
            if self._parallel:
                target.remove_epoch_observer(self._on_epoch)
                if getattr(target, "live", None) is self:
                    target.live = None
                sims = target._sims
            else:
                sims = [target]
            for sim in sims:
                if getattr(sim, "_live_publisher", None) in self._publishers:
                    sim._live_publisher = None
        for pub in self._publishers:
            pub.close()
        self._publishers = []
        if self.segment is not None:
            self.segment.close()
            self.segment = None

    def finalize(self, result: Any = None) -> None:
        """Publish the terminal run state and release the segment.

        The segment *file* stays on disk with the final counters, so
        ``obs top`` and post-mortems can still read where the run ended.
        """
        if result is not None:
            self._reason = getattr(result, "reason", "") or ""
            self._events = getattr(result, "events_executed", self._events)
        self._run_state = STATE_DONE
        if not self._parallel and self._target is not None:
            self._events = self._target.events_executed
            self._now_ps = self._target.now
        if self.segment is not None:
            self._publish_run()
        self.detach()

    # ------------------------------------------------------------------
    # publish points
    # ------------------------------------------------------------------
    def _on_epoch(self, info: Any) -> None:
        self._epoch = info.index + 1
        self._events = info.events_total
        self._now_ps = info.now
        self._exchanged += info.exchanged_events
        self._exchange_s += info.exchange_seconds
        self._exec_s += sum(info.per_rank_wall)
        self._exchange_bytes += getattr(info, "exchange_bytes", 0)
        width = info.window_end - info.window_start + 1
        self._window_ps = width
        self._window_total += width
        if self._first_window is None:
            self._first_window = info.window_start
        for rank, wait in enumerate(info.per_rank_barrier_wait):
            if rank < len(self._barrier):
                self._barrier[rank] += wait
        for rank, pub in enumerate(self._publishers):
            if rank < len(info.per_rank_wall):
                pub.record_step(info.per_rank_wall[rank])
                pub.publish()
        self._publish_run()

    def _sequential_tick(self) -> None:
        """Sampler extra tick for sequential runs: refresh the run slot."""
        sim = self._target
        if sim is None:
            return
        self._events = sim.events_executed
        self._now_ps = sim.now
        self._publish_run()

    def on_run_end(self, reason: str) -> None:
        """Epoch-loop exit hook (:meth:`ParallelSimulation.run`): record
        the stop reason even if the caller never calls finalize."""
        self._reason = reason or ""
        self._publish_run()

    def _publish_run(self) -> None:
        segment = self.segment
        if segment is None:
            return
        util = 0.0
        if self._window_total and self._first_window is not None:
            span = self._now_ps - self._first_window + 1
            util = min(1.0, span / self._window_total)
        with self._run_mutex:
            try:
                segment.write_run(
                    state=self._run_state, epoch=self._epoch,
                    events=self._events, exchanged=self._exchanged,
                    now_ps=self._now_ps, limit_ps=self.limit_ps,
                    window_ps=self._window_ps,
                    exchange_bytes=self._exchange_bytes,
                    lookahead_util=util,
                    mono_s=_wall_time.perf_counter(),
                    unix_s=_wall_time.time(),
                    start_mono=self._start_mono,
                    exchange_s=self._exchange_s, exec_s=self._exec_s,
                    reason=self._reason, barrier_s=self._barrier)
            except (ValueError, IndexError):  # segment already closed
                pass

    def __enter__(self) -> "LiveMetrics":
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._target is not None:
            self.detach()
