"""Live observability plane: shared-memory rank metrics for running sims.

Each rank publishes counters/gauges into a fixed-slot mmap segment
(:mod:`segment`); a :class:`MetricsRegistry` names and renders them
(:mod:`registry`); :class:`LiveMetrics` wires publication into a run
from the existing heartbeat/epoch hooks (:mod:`publish`); readers are
the OpenMetrics/JSON HTTP endpoint (:mod:`server`), the ``obs top``
console view (:mod:`top`) and the stall watchdog (:mod:`watchdog`).
``dse.sweep`` fleets get the same treatment in :mod:`sweep`.
"""

from .publish import LiveMetrics, SlotSampler
from .registry import MetricSpec, MetricsRegistry, eta_seconds
from .segment import (
    KIND_RUN,
    KIND_SWEEP,
    STATE_DONE,
    STATE_INIT,
    STATE_NAMES,
    STATE_RUNNING,
    STATE_WAITING,
    LiveSegment,
    LiveView,
    RankSlotWriter,
    SegmentError,
    default_segment_path,
    resolve_segment,
)
from .server import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsServer,
    make_run_render,
    parse_address,
)
from .sweep import SweepLive, make_sweep_render, sweep_status
from .top import render_frame, run_top, straggler
from .watchdog import (
    StallWatchdog,
    enable_stack_dump_signal,
    request_stack_dump,
    stack_dump_path,
)

__all__ = [
    "KIND_RUN",
    "KIND_SWEEP",
    "STATE_DONE",
    "STATE_INIT",
    "STATE_NAMES",
    "STATE_RUNNING",
    "STATE_WAITING",
    "OPENMETRICS_CONTENT_TYPE",
    "LiveMetrics",
    "LiveSegment",
    "LiveView",
    "MetricSpec",
    "MetricsRegistry",
    "MetricsServer",
    "RankSlotWriter",
    "SegmentError",
    "SlotSampler",
    "StallWatchdog",
    "SweepLive",
    "default_segment_path",
    "enable_stack_dump_signal",
    "eta_seconds",
    "make_run_render",
    "make_sweep_render",
    "parse_address",
    "render_frame",
    "request_stack_dump",
    "resolve_segment",
    "run_top",
    "stack_dump_path",
    "straggler",
    "sweep_status",
]
