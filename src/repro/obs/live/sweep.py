"""Fleet-wide live status for ``dse.sweep``: one slot per design point.

A sweep evaluates independent design points on a job pool; this module
gives the fleet the same live plane a single run gets.  The parent
creates a ``KIND_SWEEP`` segment with one fixed slot per point; each
pool worker (same process for serial/threads pools, forked process for
the processes pool — every slot still has exactly one writer, the
worker evaluating that point) marks its slot *running* at pickup and
*done*/*failed* with the evaluation wall time at completion.  Readers
— the ``--serve-metrics`` endpoint and ``obs top`` — derive completed
counts, completion rate and the fleet ETA.
"""

from __future__ import annotations

import os
import struct
import time as _wall_time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .segment import _HEADER_SIZE, KIND_SWEEP, LiveSegment, LiveView

POINT_PENDING = 0
POINT_RUNNING = 1
POINT_DONE = 2
POINT_FAILED = 3

_POINT_BODY_FMT = "<2Q2d"  # pid, state, start_mono, wall_s
POINT_SLOT_SIZE = 48

#: per-process cache of opened sweep segments (forked pool workers open
#: the file once, then mark every point they evaluate through it).
_OPEN: Dict[str, "SweepLive"] = {}


class SweepLive:
    """Writer-side handle on a sweep fleet segment."""

    def __init__(self, segment: LiveSegment):
        self.segment = segment
        self.path = segment.path

    @classmethod
    def create(cls, path: Union[str, Path], total_points: int) -> "SweepLive":
        return cls(LiveSegment.create(
            Path(path), kind=KIND_SWEEP, slots=total_points,
            slot_size=POINT_SLOT_SIZE, run_size=0, backend="jobpool",
            mode="sweep"))

    @classmethod
    def open(cls, path: Union[str, Path]) -> "SweepLive":
        """Per-process cached open (workers mark many points)."""
        key = str(path)
        live = _OPEN.get(key)
        if live is None or os.getpid() != live._pid:
            live = cls(LiveSegment.open(path))
            live._pid = os.getpid()
            _OPEN[key] = live
        return live

    _pid = 0

    def mark(self, index: int, state: int, *, start_mono: float = 0.0,
             wall_s: float = 0.0) -> None:
        try:
            self.segment.write_slot(index, _POINT_BODY_FMT, os.getpid(),
                                    state, start_mono, wall_s)
        except (IndexError, ValueError, struct.error):
            pass  # fleet status must never fail an evaluation

    def mark_running(self, index: int) -> float:
        start = _wall_time.perf_counter()
        self.mark(index, POINT_RUNNING, start_mono=start)
        return start

    def mark_done(self, index: int, start_mono: float,
                  failed: bool = False) -> None:
        self.mark(index, POINT_FAILED if failed else POINT_DONE,
                  start_mono=start_mono,
                  wall_s=_wall_time.perf_counter() - start_mono)

    def close(self) -> None:
        self.segment.close()


def read_points(view: LiveView) -> List[Optional[Dict[str, Any]]]:
    points = []
    for i in range(view.header["slots"]):
        off = _HEADER_SIZE + i * view.header["slot_size"]
        body = view._read_slot(off, _POINT_BODY_FMT)
        if body is None:
            points.append(None)
            continue
        pid, state, start_mono, wall_s = body
        points.append({"index": i, "pid": pid, "state": state,
                       "start_mono": start_mono, "wall_s": wall_s})
    return points


def sweep_status(snapshot_or_view: Any) -> Dict[str, Any]:
    """Fleet status: counts, completion rate and ETA.

    Accepts a :class:`LiveView` or a dict snapshot carrying ``view``.
    """
    view = snapshot_or_view
    if isinstance(snapshot_or_view, dict):
        view = LiveView(snapshot_or_view["path"])
        try:
            return sweep_status(view)
        finally:
            view.close()
    points = [p for p in read_points(view) if p is not None]
    total = view.header["slots"]
    done = [p for p in points if p["state"] == POINT_DONE]
    failed = [p for p in points if p["state"] == POINT_FAILED]
    running = [p for p in points if p["state"] == POINT_RUNNING]
    status: Dict[str, Any] = {
        "total": total,
        "completed": len(done),
        "failed": len(failed),
        "running": len(running),
        "pending": total - len(done) - len(failed) - len(running),
        "point_seconds_sum": sum(p["wall_s"] for p in done),
    }
    starts = [p["start_mono"] for p in points if p["start_mono"] > 0]
    finished = len(done) + len(failed)
    if starts and finished:
        elapsed = max(0.0, _wall_time.perf_counter() - min(starts))
        if elapsed > 0:
            rate = finished / elapsed
            status["rate_per_s"] = rate
            remaining = total - finished
            status["eta_s"] = remaining / rate if rate > 0 else None
    return status


def render_sweep_openmetrics(view: LiveView) -> str:
    status = sweep_status(view)
    lines = [
        "# TYPE repro_sweep_points gauge",
        "# HELP repro_sweep_points Design points by state",
    ]
    for state in ("pending", "running", "completed", "failed"):
        lines.append(f'repro_sweep_points{{state="{state}"}} {status[state]}')
    lines += [
        "# TYPE repro_sweep_point_seconds summary",
        "# HELP repro_sweep_point_seconds Per-point evaluation wall time",
        f"repro_sweep_point_seconds_sum {status['point_seconds_sum']!r}",
        f"repro_sweep_point_seconds_count {status['completed']}",
    ]
    if status.get("eta_s") is not None:
        lines += [
            "# TYPE repro_sweep_eta_seconds gauge",
            "# HELP repro_sweep_eta_seconds Estimated seconds to completion",
            f"repro_sweep_eta_seconds {status['eta_s']!r}",
        ]
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def make_sweep_render(path: Union[str, Path],
                      keys: Optional[List[Tuple[str, int, str]]] = None):
    """Renderer for :class:`~repro.obs.live.server.MetricsServer`.

    ``keys`` (the sweep's point grid, in slot order) enriches the JSON
    status with named in-flight points.
    """
    path = Path(path)

    def render() -> Tuple[Dict[str, Any], str]:
        from .segment import SegmentError

        try:
            view = LiveView(path)
        except SegmentError as exc:
            return ({"state": "pending", "detail": str(exc)}, "# EOF\n")
        try:
            status = sweep_status(view)
            text = render_sweep_openmetrics(view)
            if keys:
                points = read_points(view)
                status["in_flight"] = [
                    "/".join(str(part) for part in keys[p["index"]])
                    for p in points
                    if p is not None and p["state"] == POINT_RUNNING
                    and p["index"] < len(keys)
                ]
        finally:
            view.close()
        return status, text

    return render
