"""The live metrics segment: a file-backed mmap of fixed seqlock slots.

One segment file per run (``<metrics>.live`` by default) holds a small
header, one fixed-size slot per rank and one run-level slot written by
the parent's epoch loop.  Every slot is single-writer — the process
that executes the rank's kernel owns the rank slot, the parent owns the
run slot — and guarded by a per-slot sequence counter (seqlock): the
writer bumps the counter to an odd value, rewrites the slot body, then
bumps it even; readers retry while the counter is odd or changed
underneath them.  Readers (:class:`LiveView`) therefore never block a
writer and never tear a slot, with no locks and no dependencies beyond
``mmap``/``struct``.

A file-backed mapping (rather than anonymous ``multiprocessing``
shared memory) is deliberate: the segment is *discoverable* — ``python
-m repro obs top run.metrics.live`` and external scrapers attach to a
path, forked rank workers re-open the same path after the fork, and a
crashed run leaves its last published state on disk for post-mortems.

The same framing carries two segment kinds: ``KIND_RUN`` (rank slots +
run slot, written by the engine) and ``KIND_SWEEP`` (one slot per
design point, written by ``dse.sweep`` workers — see
:mod:`repro.obs.live.sweep`).
"""

from __future__ import annotations

import mmap
import struct
import threading
import time as _wall_time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

MAGIC = b"RPLIVE1\x00"
VERSION = 2

KIND_RUN = 0
KIND_SWEEP = 1

#: rank / run states published in the ``state`` slot field.
STATE_INIT = 0
STATE_RUNNING = 1
STATE_WAITING = 2
STATE_DONE = 3

STATE_NAMES = {STATE_INIT: "init", STATE_RUNNING: "run",
               STATE_WAITING: "wait", STATE_DONE: "done"}

#: step-wall-time histogram bucket upper bounds (seconds); the last
#: bucket is +Inf.  Eight buckets keep the slot fixed-size.
HIST_BOUNDS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)
HIST_BUCKETS = len(HIST_BOUNDS) + 1

# header: magic, version, kind, slots, slot_size, run_off, run_size,
# parent_pid, reserved, created_unix, limit_ps, backend, mode
_HEADER_FMT = "<8sIIIIIIIIdQ16s16s"
_HEADER_SIZE = 128  # struct.calcsize(_HEADER_FMT) == 88, padded

_SEQ_FMT = "<Q"

# rank slot body (after the 8-byte seq): pid, state, events, queued,
# sim_ps, epoch, hist[8], mono_s, unix_s, busy_s, reserved
_RANK_BODY_FMT = "<6Q8Q4d"
RANK_SLOT_SIZE = 176  # 8 + struct.calcsize(_RANK_BODY_FMT) == 168, padded

# run slot body (after the seq): state, epoch, events, exchanged,
# now_ps, limit_ps, window_ps (current epoch window width),
# exchange_bytes (cumulative); mono_s, unix_s, start_mono, exchange_s,
# exec_s, lookahead_util; reason; then per-rank barrier_s doubles.
# (V2: grew window_ps + exchange_bytes, repurposed the reserved double
# as lookahead_util.)
_RUN_BODY_FMT = "<8Q6d16s"
_RUN_FIXED = 8 + struct.calcsize(_RUN_BODY_FMT)


def _pad16(n: int) -> int:
    return (n + 15) // 16 * 16


def run_slot_size(num_ranks: int) -> int:
    return _pad16(_RUN_FIXED + 8 * num_ranks)


def default_segment_path(metrics_path: Union[str, Path]) -> Path:
    """Where the live segment lands for a ``--metrics`` stream."""
    base = Path(metrics_path)
    return base.with_name(base.name + ".live")


class SegmentError(RuntimeError):
    """The file is not (or no longer) a readable live segment."""


class LiveSegment:
    """Writer-side handle on a segment file (creates or re-opens it)."""

    def __init__(self, path: Union[str, Path], mm: mmap.mmap,
                 header: Dict[str, Any]):
        self.path = Path(path)
        self._mm = mm
        self.header = header
        self.kind = header["kind"]
        self.slots = header["slots"]
        self.slot_size = header["slot_size"]
        self.run_off = header["run_off"]

    # ------------------------------------------------------------------
    # creation / attachment
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: Union[str, Path], *, kind: int, slots: int,
               slot_size: int, run_size: int = 0, backend: str = "",
               mode: str = "", limit_ps: int = 0,
               parent_pid: Optional[int] = None) -> "LiveSegment":
        """Create (truncating) a zeroed segment file and map it."""
        import os

        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        run_off = _HEADER_SIZE + slots * slot_size
        total = run_off + run_size
        header = {
            "kind": kind, "slots": slots, "slot_size": slot_size,
            "run_off": run_off, "run_size": run_size,
            "parent_pid": parent_pid if parent_pid is not None else os.getpid(),
            "created_unix": _wall_time.time(), "limit_ps": limit_ps,
            "backend": backend, "mode": mode,
        }
        with open(path, "wb") as fh:
            fh.write(b"\x00" * total)
        fh = open(path, "r+b")
        mm = mmap.mmap(fh.fileno(), total)
        fh.close()
        struct.pack_into(
            _HEADER_FMT, mm, 0, MAGIC, VERSION, kind, slots, slot_size,
            run_off, run_size, header["parent_pid"], 0,
            header["created_unix"], limit_ps,
            backend.encode("utf-8")[:16], mode.encode("utf-8")[:16])
        return cls(path, mm, header)

    @classmethod
    def open(cls, path: Union[str, Path], *,
             writable: bool = True) -> "LiveSegment":
        """Map an existing segment (workers re-open after the fork)."""
        path = Path(path)
        try:
            fh = open(path, "r+b" if writable else "rb")
        except OSError as exc:
            raise SegmentError(f"cannot open live segment {path}: {exc}")
        try:
            access = mmap.ACCESS_WRITE if writable else mmap.ACCESS_READ
            mm = mmap.mmap(fh.fileno(), 0, access=access)
        except ValueError as exc:
            fh.close()
            raise SegmentError(f"{path} is not a live segment: {exc}")
        fh.close()
        header = read_header(mm, path)
        return cls(path, mm, header)

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except (BufferError, ValueError):  # pragma: no cover
                pass
            self._mm = None

    # ------------------------------------------------------------------
    # slot writing (seqlock protocol)
    # ------------------------------------------------------------------
    def _slot_off(self, index: int) -> int:
        if not 0 <= index < self.slots:
            raise IndexError(f"slot {index} out of range 0..{self.slots - 1}")
        return _HEADER_SIZE + index * self.slot_size

    def write_slot(self, index: int, body_fmt: str, *values: Any) -> None:
        """Seqlock-write one slot body (values follow ``body_fmt``)."""
        mm = self._mm
        off = self._slot_off(index)
        seq = struct.unpack_from(_SEQ_FMT, mm, off)[0]
        struct.pack_into(_SEQ_FMT, mm, off, seq + 1)      # odd: in progress
        struct.pack_into(body_fmt, mm, off + 8, *values)
        struct.pack_into(_SEQ_FMT, mm, off, seq + 2)      # even: published

    def write_run(self, *, state: int, epoch: int, events: int,
                  exchanged: int, now_ps: int, limit_ps: int,
                  mono_s: float, unix_s: float, start_mono: float,
                  exchange_s: float, exec_s: float, reason: str,
                  window_ps: int = 0, exchange_bytes: int = 0,
                  lookahead_util: float = 0.0,
                  barrier_s: Optional[List[float]] = None) -> None:
        """Seqlock-write the run slot (parent epoch loop only)."""
        mm = self._mm
        off = self.run_off
        seq = struct.unpack_from(_SEQ_FMT, mm, off)[0]
        struct.pack_into(_SEQ_FMT, mm, off, seq + 1)
        struct.pack_into(
            _RUN_BODY_FMT, mm, off + 8, state, epoch, events, exchanged,
            now_ps, limit_ps, window_ps, exchange_bytes,
            mono_s, unix_s, start_mono, exchange_s,
            exec_s, lookahead_util, reason.encode("utf-8")[:16])
        if barrier_s:
            struct.pack_into(f"<{len(barrier_s)}d", mm, off + _RUN_FIXED,
                             *barrier_s)
        struct.pack_into(_SEQ_FMT, mm, off, seq + 2)


def read_header(mm, path) -> Dict[str, Any]:
    if len(mm) < _HEADER_SIZE:
        raise SegmentError(f"{path} is too small to be a live segment")
    (magic, version, kind, slots, slot_size, run_off, run_size,
     parent_pid, _pad, created_unix, limit_ps, backend,
     mode) = struct.unpack_from(_HEADER_FMT, mm, 0)
    if magic != MAGIC:
        raise SegmentError(f"{path} is not a live metrics segment "
                           f"(bad magic)")
    if version != VERSION:
        raise SegmentError(f"{path}: unsupported segment version {version}")
    return {
        "kind": kind, "slots": slots, "slot_size": slot_size,
        "run_off": run_off, "run_size": run_size, "parent_pid": parent_pid,
        "created_unix": created_unix, "limit_ps": limit_ps,
        "backend": backend.rstrip(b"\x00").decode("utf-8", "replace"),
        "mode": mode.rstrip(b"\x00").decode("utf-8", "replace"),
    }


class RankSlotWriter:
    """One rank's publisher into its segment slot (single writer).

    Owned by whichever process runs the rank's kernel: the parent for
    sequential / in-process-backend runs, the forked worker for the
    processes backend.  Accumulates the cumulative fields (busy time,
    step-wall histogram, epoch count) locally and republishes the whole
    slot on every :meth:`publish`.
    """

    def __init__(self, segment: LiveSegment, rank: int, sim: Any):
        import os

        self.segment = segment
        self.rank = rank
        self.sim = sim
        self.pid = os.getpid()
        self.state = STATE_INIT
        self.busy_s = 0.0
        self.epoch = 0
        self.hist = [0] * HIST_BUCKETS
        # Cross-process the slot is single-writer by construction; this
        # lock serialises the writers *within* one process (the sampler
        # thread vs the kernel-boundary hook / epoch observer).
        self._lock = threading.Lock()
        self.publish()

    def record_step(self, wall_s: float) -> None:
        """Fold one completed kernel window into the cumulative fields."""
        self.busy_s += wall_s
        self.epoch += 1
        for i, bound in enumerate(HIST_BOUNDS):
            if wall_s <= bound:
                self.hist[i] += 1
                break
        else:
            self.hist[-1] += 1

    def publish(self, state: Optional[int] = None) -> None:
        if state is not None:
            self.state = state
        sim = self.sim
        with self._lock:
            self.segment.write_slot(
                self.rank, _RANK_BODY_FMT,
                self.pid, self.state, sim._events_executed,
                len(sim._queue), sim.now, self.epoch,
                *self.hist,
                _wall_time.perf_counter(), _wall_time.time(),
                self.busy_s, 0.0)

    # Kernel-boundary hooks: the loop calls these once per invocation
    # through the duck-typed ``sim._live_publisher`` slot; publishing
    # must never be able to kill a run.
    def on_kernel_enter(self) -> None:
        try:
            self.publish(STATE_RUNNING)
        except Exception:
            pass

    def on_kernel_exit(self) -> None:
        try:
            self.publish(STATE_WAITING)
        except Exception:
            pass

    def close(self, state: int = STATE_DONE) -> None:
        try:
            self.publish(state)
        except (ValueError, IndexError, struct.error):  # segment closed
            pass


class LiveView:
    """Read-only attachment to a segment (``obs top``, HTTP endpoint,
    watchdog).  Snapshots retry torn slots per the seqlock protocol."""

    RETRIES = 8

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if not self.path.is_file():
            raise SegmentError(f"no live segment at {self.path}")
        fh = open(self.path, "rb")
        try:
            self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:
            raise SegmentError(f"{self.path} is not a live segment: {exc}")
        finally:
            fh.close()
        self.header = read_header(self._mm, self.path)
        self.kind = self.header["kind"]

    def close(self) -> None:
        try:
            self._mm.close()
        except (BufferError, ValueError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    def _read_slot(self, off: int, body_fmt: str) -> Optional[tuple]:
        mm = self._mm
        for _ in range(self.RETRIES):
            seq1 = struct.unpack_from(_SEQ_FMT, mm, off)[0]
            if seq1 & 1:
                continue
            body = struct.unpack_from(body_fmt, mm, off + 8)
            seq2 = struct.unpack_from(_SEQ_FMT, mm, off)[0]
            if seq1 == seq2:
                return body
        return None  # writer mid-update across every retry: skip this frame

    def read_rank(self, rank: int) -> Optional[Dict[str, Any]]:
        off = _HEADER_SIZE + rank * self.header["slot_size"]
        body = self._read_slot(off, _RANK_BODY_FMT)
        if body is None:
            return None
        (pid, state, events, queued, sim_ps, epoch, *rest) = body
        hist = list(rest[:HIST_BUCKETS])
        mono_s, unix_s, busy_s, _ = rest[HIST_BUCKETS:]
        return {
            "rank": rank, "pid": pid, "state": state,
            "state_name": STATE_NAMES.get(state, str(state)),
            "events": events, "queued": queued, "sim_ps": sim_ps,
            "epoch": epoch, "hist": hist, "mono_s": mono_s,
            "unix_s": unix_s, "busy_s": busy_s,
        }

    def read_run(self) -> Optional[Dict[str, Any]]:
        if self.header["run_size"] <= 0:
            return None
        off = self.header["run_off"]
        n = self.header["slots"]
        fmt = _RUN_BODY_FMT[1:]  # strip the "<"
        body = self._read_slot(off, f"<{fmt}{n}d")
        if body is None:
            return None
        (state, epoch, events, exchanged, now_ps, limit_ps, window_ps,
         exchange_bytes, mono_s, unix_s, start_mono, exchange_s, exec_s,
         lookahead_util, reason) = body[:15]
        return {
            "state": state,
            "state_name": STATE_NAMES.get(state, str(state)),
            "epoch": epoch, "events": events, "exchanged": exchanged,
            "now_ps": now_ps, "limit_ps": limit_ps,
            "window_ps": window_ps, "exchange_bytes": exchange_bytes,
            "mono_s": mono_s,
            "unix_s": unix_s, "start_mono": start_mono,
            "exchange_s": exchange_s, "exec_s": exec_s,
            "lookahead_util": lookahead_util,
            "reason": reason.rstrip(b"\x00").decode("utf-8", "replace"),
            "barrier_s": list(body[15:15 + n]),
        }

    def snapshot(self) -> Dict[str, Any]:
        """One coherent-enough view of the whole segment.

        Per-rank ``age_s`` (heartbeat age: now minus the slot's last
        publish stamp) is computed here, reader-side, against the same
        CLOCK_MONOTONIC the writers stamp with.
        """
        now = _wall_time.perf_counter()
        ranks: List[Optional[Dict[str, Any]]] = []
        if self.kind == KIND_RUN:
            # Sweep segments carry point slots in a different layout;
            # their readers go through repro.obs.live.sweep instead.
            for r in range(self.header["slots"]):
                slot = self.read_rank(r)
                if slot is not None:
                    slot["age_s"] = max(0.0, now - slot["mono_s"])
                ranks.append(slot)
        return {
            "path": str(self.path),
            "header": dict(self.header),
            "mono_now": now,
            "ranks": ranks,
            "run": self.read_run(),
        }


def resolve_segment(target: Union[str, Path]) -> Path:
    """Find the live segment for a CLI argument.

    Accepts the segment file itself, the run's metrics path (the
    segment lives next to it as ``<metrics>.live``), or a directory
    (the newest ``*.live`` file inside it).
    """
    path = Path(target)
    if path.is_dir():
        candidates = sorted(path.glob("*.live"),
                            key=lambda p: p.stat().st_mtime, reverse=True)
        if not candidates:
            raise SegmentError(f"no *.live segment found in {path}")
        return candidates[0]
    if path.suffix == ".live" or _looks_like_segment(path):
        return path
    sibling = default_segment_path(path)
    if sibling.is_file():
        return sibling
    if path.is_file():
        return path  # let LiveView produce the precise error
    raise SegmentError(
        f"no live segment at {path} (nor {sibling}); pass the "
        f"<metrics>.live file of a run started with --live-segment or "
        f"--serve-metrics")


def _looks_like_segment(path: Path) -> bool:
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
