"""Causal event tracing: opt-in provenance capture for the engine.

Every dispatched event gets a *node id* ``(rank, seq)`` — the queue's
insertion sequence is already part of the determinism contract (see
``tests/unit/test_determinism.py``), which makes the id stable across
backends.  While a handler runs, every event it schedules is stamped
with the running event's seq in the :class:`~repro.core.event.EventRecord`
``cause`` slot; cross-rank link sends are recorded with their
``(src_rank, send_seq)`` identity so the receiving rank can stitch the
edge back together at analysis time.  The result is a causality DAG on
disk — per-rank JSONL shards next to the metrics stream — that
:mod:`repro.obs.critpath` walks backward to produce the simulated
critical path.

Capture is **off by default** and rides the *instrumented* dispatch
path (:meth:`Simulation._rebuild_instr`): the bare hot loop is
untouched, and the only hot-path cost when tracing is an interned-table
lookup plus a list append per event (see ``benchmarks/bench_engine_causal.py``,
ENG-6).

Shard layout (schema ``repro-causal/1``), one file per rank at
``<base>.causal.rank<k>``:

* ``causal_start`` — rank identity plus the cross-rank link table.
* ``causal_nodes`` — batched rows ``[seq, time_ps, priority, cause,
  comp, evt]`` (``comp``/``evt`` index the tables in ``causal_end``).
* ``causal_send`` — batched rows ``[cause, link_id, send_seq,
  deliver_ps, priority]`` for cross-rank sends leaving this rank.
* ``causal_recv`` — batched rows ``[seq, link_id, send_seq,
  deliver_ps, priority]`` for cross-rank arrivals (``seq`` is the
  local node the arrival became).
* ``causal_end`` — totals plus the interned ``components``
  (``[name, class]`` pairs) and ``events`` (class names) tables.

Attachment paths:

* a plain :class:`Simulation` — :class:`CausalCapture` wraps it
  directly (rank 0 shard);
* a :class:`ParallelSimulation` on the serial/threads backends — one
  in-process tracer per rank;
* the processes backend — the capture request travels on the
  :class:`~repro.obs.rank_stream.RankStreamPlan` (``causal_base``) and
  each forked worker's :class:`~repro.obs.rank_stream.RankRecorder`
  owns its rank's tracer.

Setup-time cross-rank sends (a component's ``setup()`` emitting before
any event has dispatched) are causal *roots*: they have no dispatching
event, so their ``cause`` is ``None``.  Under the processes backend the
parent performs them pre-fork, so no send row is written at all — the
receiving rank's join then finds nothing and treats the arrival as a
root, which is the same conclusion the serial backend's ``cause=None``
send row leads to.  Critical paths are therefore identical across
backends even though the shard contents differ by those rows.
"""

from __future__ import annotations

import glob
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.event import CallbackEvent
from ..core.parallel import ParallelSimulation
from ..core.simulation import Simulation
from .profiler import attribute_event

#: schema tag stamped on every causal shard's start record
CAUSAL_SCHEMA = "repro-causal/1"

#: rows buffered before a batch record is written
_FLUSH_ROWS = 4096


def causal_shard_path(base: Union[str, Path], rank: int) -> Path:
    """Per-rank causal shard path: ``<base>.causal.rank<k>``."""
    base = Path(base)
    return base.with_name(f"{base.name}.causal.rank{rank}")


def find_causal_shards(base: Union[str, Path]) -> Dict[int, Path]:
    """All ``<base>.causal.rank*`` shards, keyed by rank."""
    base = Path(base)
    shards: Dict[int, Path] = {}
    for match in glob.glob(str(base.with_name(base.name + ".causal.rank")) + "*"):
        suffix = match.rsplit(".rank", 1)[-1]
        try:
            shards[int(suffix)] = Path(match)
        except ValueError:
            continue
    return shards


class _TracedQueue:
    """Provenance-stamping proxy over the rank's pending-event set.

    The concrete queues use ``__slots__`` (hot-path layout), so the
    tracer cannot monkeypatch ``push``; instead the tracer swaps
    ``sim._queue`` for this proxy.  ``pop``/``peek_time`` are re-bound
    from the inner queue as instance attributes, so the kernel loops —
    which hoist those bound methods — pay nothing extra; only ``push``
    (schedule-time, not dispatch-time) takes the detour to stamp
    ``record.cause`` from the tracer's one-slot cause cell.
    """

    __slots__ = ("_inner", "_cell", "pop", "peek_time")

    def __init__(self, inner, cell: List[Optional[int]]):
        self._inner = inner
        self._cell = cell
        self.pop = inner.pop
        self.peek_time = inner.peek_time

    def push(self, time, priority, handler, event):
        record = self._inner.push(time, priority, handler, event)
        record.cause = self._cell[0]
        return record

    def push_record(self, record) -> None:
        self._inner.push_record(record)

    @property
    def seq(self) -> int:
        return self._inner.seq

    def snapshot_records(self):
        return self._inner.snapshot_records()

    def restore_records(self, records, seq) -> None:
        self._inner.restore_records(records, seq)

    def __len__(self) -> int:
        return len(self._inner)

    def __bool__(self) -> bool:
        return len(self._inner) > 0


class CausalTracer:
    """Per-rank capture: node rows, cross-rank send/recv rows, shard IO.

    Duck-typed against :attr:`Simulation._causal` — the instrumented
    dispatcher calls :meth:`on_dispatch` before each handler and resets
    :attr:`cell` after it; :func:`repro.core.backends.deliver_cross_rank`
    calls :meth:`on_cross_recv` for stitched arrivals.
    """

    def __init__(self, sim: Simulation, base: Union[str, Path], *,
                 psim: Optional[ParallelSimulation] = None):
        self.sim = sim
        self.rank = sim.rank
        self.path = causal_shard_path(base, self.rank)
        #: one-slot cell holding the seq of the event being dispatched
        #: (None between events) — read by the queue proxy on every push.
        self.cell: List[Optional[int]] = [None]
        self._nodes: List[list] = []
        self._sends: List[list] = []
        self._recvs: List[list] = []
        self._counts = {"nodes": 0, "sends": 0, "recvs": 0}
        # Interned attribution tables.  The per-dispatch cache is keyed
        # by the *owner object's* id (bound-method objects are created
        # fresh per push, so their own ids recycle); owners are pinned
        # in _pins so a cached id can never be reused by a new object.
        self._comp_cache: Dict[int, int] = {}
        self._comp_index: Dict[Tuple[str, str], int] = {}
        self._comps: List[Tuple[str, str]] = []
        self._evt_cache: Dict[type, int] = {}
        self._evts: List[str] = []
        self._pins: List[Any] = []
        self._wrapped: List[tuple] = []
        self._closed = False

        links: Dict[str, Dict[str, Any]] = {}
        if psim is not None:
            for link_id, xlink in psim._cross_links.items():
                links[str(link_id)] = {
                    "name": xlink.name,
                    "latency_ps": xlink.latency,
                    "rank_a": xlink.rank_a,
                    "rank_b": xlink.rank_b,
                }
        self._file = open(self.path, "w", encoding="utf-8")
        self._write({
            "schema": CAUSAL_SCHEMA,
            "kind": "causal_start",
            "rank": self.rank,
            "ranks": sim.num_ranks,
            "queue": sim.queue_kind,
            "links": links,
        })

        # Splice into the engine: queue proxy + instrumented dispatch.
        self._inner_queue = sim._queue
        sim._queue = _TracedQueue(self._inner_queue, self.cell)
        sim._causal = self
        sim._rebuild_instr()
        if psim is not None:
            self._wrap_cross_endpoints(psim)

    # -- capture hooks -------------------------------------------------
    def on_dispatch(self, record) -> None:
        """Record the node for ``record`` and arm the cause cell."""
        seq = record.seq
        handler = record.handler
        event = record.event
        # Attribution: cache by the handler's owner object when there is
        # one; CallbackEvents attribute through their callback's owner.
        fn = event.callback if type(event) is CallbackEvent else handler
        owner = getattr(fn, "__self__", None)
        if owner is not None:
            key = id(owner)
            comp_idx = self._comp_cache.get(key)
            if comp_idx is None:
                comp_idx = self._intern_component(handler, event)
                self._comp_cache[key] = comp_idx
                self._pins.append(owner)
        else:
            comp_idx = self._intern_component(handler, event)
        etype = type(event)
        evt_idx = self._evt_cache.get(etype)
        if evt_idx is None:
            evt_idx = len(self._evts)
            self._evts.append(etype.__name__)
            self._evt_cache[etype] = evt_idx
        self._nodes.append([seq, record.time, record.priority,
                            getattr(record, "cause", None), comp_idx, evt_idx])
        self.cell[0] = seq
        if len(self._nodes) >= _FLUSH_ROWS:
            self.flush()

    def on_cross_recv(self, seq: int, link_id: int, send_seq: int,
                      when, priority: int) -> None:
        """Record a cross-rank arrival that became local node ``seq``."""
        self._recvs.append([seq, link_id, send_seq, when, priority])
        if len(self._recvs) >= _FLUSH_ROWS:
            self.flush()

    def _intern_component(self, handler, event) -> int:
        name, _label = attribute_event(handler, event)
        comp = self.sim._components.get(name)
        cls = type(comp).__name__ if comp is not None else name
        key = (name, cls)
        idx = self._comp_index.get(key)
        if idx is None:
            idx = len(self._comps)
            self._comps.append(key)
            self._comp_index[key] = idx
        return idx

    # -- cross-rank send capture ---------------------------------------
    def _wrap_cross_endpoints(self, psim: ParallelSimulation) -> None:
        """Interpose on this rank's outbound cross-rank senders.

        The wrapper reads the rank's send-seq cell *before* delegating —
        that is exactly the ``send_seq`` the original sender assigns —
        so the recorded row joins with the receiver's ``causal_recv``.
        """
        rank = self.rank
        seq_cell = psim._send_seq[rank]
        cell = self.cell
        sends = self._sends
        for link_id, _xlink, endpoint in psim.cross_endpoints(rank):
            original = endpoint._remote_send
            if original is None:
                continue

            def traced(when, priority, event, *, _orig=original,
                       _link_id=link_id):
                sends.append([cell[0], _link_id, seq_cell[0],
                              when, priority])
                _orig(when, priority, event)

            endpoint.set_remote(traced)
            self._wrapped.append((endpoint, original))

    # -- shard IO ------------------------------------------------------
    def _write(self, record: Dict[str, Any]) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        """Drain buffered rows into batch records on the shard.

        Buffers are cleared *in place* — the endpoint send wrappers hold
        a reference to the send buffer, so rebinding would orphan it.
        """
        for kind, key, rows in (("causal_nodes", "nodes", self._nodes),
                                ("causal_send", "sends", self._sends),
                                ("causal_recv", "recvs", self._recvs)):
            if rows:
                self._write({"kind": kind, "rank": self.rank, "rows": rows})
                self._counts[key] += len(rows)
                del rows[:]
        self._file.flush()

    def close(self) -> None:
        """Finalize the shard and detach from the engine."""
        if self._closed:
            return
        self._closed = True
        self.flush()
        self._write({
            "kind": "causal_end",
            "rank": self.rank,
            "nodes": self._counts["nodes"],
            "sends": self._counts["sends"],
            "recvs": self._counts["recvs"],
            "components": [list(pair) for pair in self._comps],
            "events": list(self._evts),
        })
        self._file.close()
        # Detach: restore the bare queue and dispatch path.
        sim = self.sim
        if getattr(sim._queue, "_inner", None) is self._inner_queue:
            sim._queue = self._inner_queue
        if sim._causal is self:
            sim._causal = None
            sim._rebuild_instr()
        for endpoint, original in self._wrapped:
            endpoint.set_remote(original)
        self._wrapped = []


class CausalCapture:
    """Attach causal tracing to any simulation shape.

    Usage mirrors the other observability instruments::

        capture = CausalCapture(base).attach(target)
        result = target.run(...)
        capture.close()

    ``base`` is typically the metrics path (the shards then sit next to
    the rank-stream shards); any path works.  On the processes backend
    the request rides the rank plan and forked workers write their own
    shards — :meth:`close` then only clears the plan flag.
    """

    def __init__(self, base: Union[str, Path]):
        self.base = Path(base)
        self._tracers: List[CausalTracer] = []
        self._plan = None

    def attach(self, target: Union[Simulation, ParallelSimulation]) -> "CausalCapture":
        if isinstance(target, ParallelSimulation):
            if target.backend == "processes":
                from .rank_stream import ensure_rank_plan

                plan = ensure_rank_plan(target)
                plan.causal_base = str(self.base)
                self._plan = plan
            else:
                for rank_sim in target._sims:
                    self._tracers.append(
                        CausalTracer(rank_sim, self.base, psim=target))
        else:
            self._tracers.append(CausalTracer(target, self.base))
        return self

    def close(self) -> "CausalCapture":
        for tracer in self._tracers:
            tracer.close()
        self._tracers = []
        if self._plan is not None:
            self._plan.causal_base = None
            self._plan = None
        return self

    def shard_paths(self) -> List[Path]:
        """The causal shards written for this base (post-run)."""
        return [path for _rank, path in sorted(find_causal_shards(self.base).items())]
