"""Progress/heartbeat reporting for long simulation runs.

A :class:`ProgressReporter` prints a periodic one-line status while a
run is in flight — events executed, current sim time, engine
throughput, sim-time rate and (when a ``max_time`` budget is known) an
ETA — so a multi-minute design-space point is no longer a silent
process.  Sequential runs feed it through the engine heartbeat hook;
parallel runs through the epoch observer.
"""

from __future__ import annotations

import sys
import time as _wall_time
from typing import IO, Any, Optional, Union

from ..core import units
from ..core.parallel import EpochInfo, ParallelSimulation
from ..core.simulation import Simulation
from .format import fmt_count, fmt_duration, fmt_rate

#: backward-compat alias (the helper moved to repro.obs.format so the
#: live `obs top` renderer shares it).
_fmt_count = fmt_count


class ProgressReporter:
    """Emit periodic progress lines for a running simulation.

    Parameters
    ----------
    stream:
        Where lines go (default ``sys.stderr``).
    interval_s:
        Minimum wall-clock spacing between lines.
    max_time:
        The run's simulated-time budget (same forms ``run()`` accepts);
        enables the ETA estimate.
    every_events:
        Sequential runs: heartbeat stride in executed events (the
        wall-clock throttle still applies on top).
    """

    def __init__(self, *, stream: Optional[IO[str]] = None,
                 interval_s: float = 2.0,
                 max_time: Union[str, int, None] = None,
                 every_events: int = 5_000):
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.limit_ps: Optional[int] = (
            units.parse_time(max_time, default_unit="ps")
            if max_time is not None else None
        )
        self.every_events = every_events
        self.lines_emitted = 0
        self._target: Union[Simulation, ParallelSimulation, None] = None
        self._t0 = 0.0
        self._last_emit = 0.0
        self._last_events = 0
        self._last_sim = 0
        self._events_seen = 0

    def attach(self, target: Union[Simulation, ParallelSimulation]) -> "ProgressReporter":
        if self._target is not None:
            raise RuntimeError("ProgressReporter is already attached")
        self._target = target
        self._t0 = _wall_time.perf_counter()
        self._last_emit = 0.0
        if isinstance(target, ParallelSimulation):
            target.add_epoch_observer(self._on_epoch)
        else:
            target.add_heartbeat(self._on_heartbeat,
                                 every_events=self.every_events)
        return self

    def detach(self) -> None:
        target = self._target
        self._target = None
        if isinstance(target, ParallelSimulation):
            target.remove_epoch_observer(self._on_epoch)
        elif isinstance(target, Simulation):
            target.remove_heartbeat(self._on_heartbeat)
        if target is not None:
            wall = _wall_time.perf_counter() - self._t0
            # ParallelSimulation carries no cumulative counter; fall
            # back to the last epoch total the observer saw.
            events = getattr(target, "events_executed", self._events_seen)
            mean = events / wall if wall > 0 else 0.0
            print(f"[progress] done: {fmt_count(events)} events in "
                  f"{fmt_duration(wall)} ({fmt_rate(mean)} mean)",
                  file=self.stream, flush=True)
            self.lines_emitted += 1

    # ------------------------------------------------------------------
    def _on_heartbeat(self, sim: Simulation) -> None:
        self._maybe_emit(sim.events_executed, sim.now, extra="")

    def _on_epoch(self, info: EpochInfo) -> None:
        self._maybe_emit(info.events_total, info.now,
                         extra=f" | epoch {info.index}")

    def _maybe_emit(self, events: int, sim_ps: int, *, extra: str) -> None:
        self._events_seen = events
        wall = _wall_time.perf_counter() - self._t0
        if wall - self._last_emit < self.interval_s:
            return
        d_wall = wall - self._last_emit
        rate = (events - self._last_events) / d_wall if d_wall > 0 else 0.0
        sim_rate = (sim_ps - self._last_sim) / d_wall if d_wall > 0 else 0.0
        line = (f"[progress] {fmt_count(events)} events | "
                f"sim {units.format_time(sim_ps)} | "
                f"{fmt_count(rate)} ev/s | "
                f"sim-rate {units.format_time(int(sim_rate))}/s{extra}")
        if self.limit_ps is not None:
            # A window that executed nothing (warm-up, an idle epoch, a
            # zero-length wall delta) has no sim-rate to extrapolate
            # from; show a placeholder rather than dividing by zero.
            remaining = max(0, self.limit_ps - sim_ps)
            if sim_rate > 0:
                line += f" | ETA {remaining / sim_rate:.0f}s"
            else:
                line += " | ETA --"
        print(line, file=self.stream, flush=True)
        self.lines_emitted += 1
        self._last_emit = wall
        self._last_events = events
        self._last_sim = sim_ps

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()
