"""repro.obs — the observability layer over the PDES engine.

Cross-cutting instrumentation for the simulator itself (as opposed to
the *simulated machine*, which the statistics system covers):

* :class:`TelemetryRecorder` — JSONL metrics stream + run-manifest JSON
  for every :meth:`Simulation.run` / :meth:`ParallelSimulation.run`;
* :class:`HandlerProfiler` — per component/handler/event-type wall-time
  attribution with a sorted "hot components" report;
* :class:`ChromeTraceExporter` — handler spans and rank epochs as a
  Perfetto-loadable ``trace.json``;
* :class:`ProgressReporter` — periodic events/sec, sim-rate and ETA
  lines for long runs;
* :func:`build_manifest` / :func:`graph_hash` / :func:`append_json_record`
  — the machine-readable perf-record plumbing (also used by the
  benchmark harness for ``BENCH_<exp>.json`` records);
* :class:`RankStreamPlan` / :class:`RankRecorder`
  (:mod:`repro.obs.rank_stream`) — per-rank telemetry that survives the
  process boundary of the ``processes`` execution backend, writing one
  JSONL shard per rank (``<metrics>.rank<k>``);
* :func:`merge_trace` / :func:`merge_to_file` (:mod:`repro.obs.merge`)
  — stitch per-rank streams into one Perfetto trace with one lane per
  rank plus a sync lane;
* :func:`analyze` (:mod:`repro.obs.imbalance`) — post-hoc sync/load
  diagnostics: straggler attribution, busy-vs-barrier wall time,
  events-per-rank skew (``python -m repro obs imbalance``);
* :func:`advise` (:mod:`repro.obs.advise`) — feedback-driven
  repartitioning: fold the imbalance report and the cut-edge traffic
  into a :class:`~repro.core.partition.PartitionProfile` and emit an
  advised assignment (``python -m repro obs partition-advise``),
  consumable by ``ckpt resume --assignment``;
* :class:`CausalCapture` / :class:`CriticalPath`
  (:mod:`repro.obs.causal`, :mod:`repro.obs.critpath`) — opt-in event
  provenance capture and the backward critical-path walk with
  component-class latency attribution and the cross-rank cut-edge
  report (``run --trace-causal``, ``python -m repro obs critpath``);
* :mod:`repro.obs.live` — the *live* plane: per-rank metrics published
  into a shared-memory segment while the run is in flight, an
  OpenMetrics/JSON HTTP endpoint (``run --serve-metrics``), the
  ``obs top`` console view and the stall watchdog.

Everything attaches through the engine's observer dispatch
(:meth:`Simulation.add_trace_observer` / ``add_span_observer`` /
``add_heartbeat`` and :meth:`ParallelSimulation.add_epoch_observer`),
which costs a single ``is None`` check per event when nothing is
installed.  See ``docs/OBSERVABILITY.md`` for the schemas and usage.
"""

from ..core.backends import RankObservabilityWarning
from .advise import (AdviseError, PartitionAdvice, advise, advise_to_file,
                     build_profile)
from .causal import (CAUSAL_SCHEMA, CausalCapture, CausalTracer,
                     causal_shard_path, find_causal_shards)
from .chrome_trace import ChromeTraceExporter, build_trace_dict, flow_pair
from .critpath import (CausalAnalysisError, CausalGraph, CriticalPath,
                       critical_path, cut_edge_report, load_causal)
from .critpath import analyze as analyze_critical_path
from .format import fmt_age, fmt_count, fmt_duration, fmt_rate
from .imbalance import ImbalanceReport, RankSummary, analyze
from .live import (LiveMetrics, LiveSegment, LiveView, MetricsRegistry,
                   MetricsServer, StallWatchdog, default_segment_path,
                   resolve_segment, run_top)
from .manifest import (MANIFEST_SCHEMA, append_json_record, build_manifest,
                       environment_info, graph_hash, write_manifest)
from .merge import RunArtifacts, find_rank_shards, merge_to_file, merge_trace
from .profiler import HandlerProfiler, ProfileRow, attribute_event
from .progress import ProgressReporter
from .rank_stream import (RANK_STREAM_SCHEMA, RankRecorder, RankStreamPlan,
                          ensure_rank_plan, rank_shard_path)
from .telemetry import METRICS_SCHEMA, TelemetryRecorder

__all__ = [
    "AdviseError",
    "CAUSAL_SCHEMA",
    "CausalAnalysisError",
    "CausalCapture",
    "CausalGraph",
    "CausalTracer",
    "ChromeTraceExporter",
    "CriticalPath",
    "HandlerProfiler",
    "ImbalanceReport",
    "LiveMetrics",
    "LiveSegment",
    "LiveView",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MetricsServer",
    "PartitionAdvice",
    "ProfileRow",
    "ProgressReporter",
    "RANK_STREAM_SCHEMA",
    "RankObservabilityWarning",
    "RankRecorder",
    "RankStreamPlan",
    "RankSummary",
    "RunArtifacts",
    "StallWatchdog",
    "TelemetryRecorder",
    "advise",
    "advise_to_file",
    "analyze",
    "analyze_critical_path",
    "append_json_record",
    "attribute_event",
    "build_manifest",
    "build_profile",
    "build_trace_dict",
    "causal_shard_path",
    "critical_path",
    "cut_edge_report",
    "default_segment_path",
    "ensure_rank_plan",
    "environment_info",
    "find_causal_shards",
    "find_rank_shards",
    "flow_pair",
    "load_causal",
    "fmt_age",
    "fmt_count",
    "fmt_duration",
    "fmt_rate",
    "graph_hash",
    "merge_to_file",
    "merge_trace",
    "rank_shard_path",
    "resolve_segment",
    "run_top",
    "write_manifest",
]
